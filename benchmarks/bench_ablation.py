"""Ablation studies for the design choices documented in DESIGN.md.

1. **Homomorphism procedure vs. small model.**  For semirings with both
   an exact homomorphism characterization *and* a decidable polynomial
   order (B, Lin[X], Sorp[X]) the two independent procedures must agree;
   the benchmark quantifies how much cheaper the syntactic check is —
   the reason Table 1 matters at all.
2. **Oracle search strategy.**  The paper's completeness proofs place
   counterexample witnesses on canonical instances of ``⟨Q1⟩``; the
   benchmark compares witness discovery of canonical-only vs.
   random-only search, justifying the oracle's default ordering.
3. **The universal no-homomorphism fast path.**  Plain-hom necessity
   (Sec. 3.3) prunes most non-containments before any class-specific
   work; measured by disabling it.
"""

from __future__ import annotations

import random

import pytest

from repro.core import decide_cq_containment, small_model_contained
from repro.homomorphisms import HomKind, has_homomorphism
from repro.oracle.brute_force import (_canonical_search, _random_search,
                                      find_counterexample)
from repro.queries.generators import random_cq
from repro.queries.ucq import as_ucq
from repro.semirings import B, LIN, N, NX, SORP

PROBLEMS = [
    (random_cq(random.Random(seed), max_atoms=3, max_vars=3),
     random_cq(random.Random(seed + 1000), max_atoms=3, max_vars=3))
    for seed in range(20)
]


@pytest.mark.parametrize("semiring", [B, LIN, SORP], ids=lambda s: s.name)
def test_ablation_hom_procedure(benchmark, semiring):
    """The Table-1 syntactic check (fast side of the ablation)."""
    def syntactic():
        return [decide_cq_containment(q1, q2, semiring).result
                for q1, q2 in PROBLEMS]
    results = benchmark(syntactic)
    expected = [small_model_contained(q1, q2, semiring)
                for q1, q2 in PROBLEMS]
    assert results == expected


@pytest.mark.parametrize("semiring", [B, LIN, SORP], ids=lambda s: s.name)
def test_ablation_small_model(benchmark, semiring):
    """The same decisions through Thm. 4.17 (slow side)."""
    def semantic():
        return [small_model_contained(q1, q2, semiring)
                for q1, q2 in PROBLEMS]
    results = benchmark(semantic)
    expected = [decide_cq_containment(q1, q2, semiring).result
                for q1, q2 in PROBLEMS]
    assert results == expected


def _noncontainments():
    out = []
    for q1, q2 in PROBLEMS:
        if decide_cq_containment(q1, q2, NX).result is False:
            out.append((as_ucq(q1), as_ucq(q2)))
    return out


def test_ablation_oracle_canonical_search(benchmark):
    """Canonical-instance search finds every N[X] witness (the paper's
    completeness argument made operational)."""
    problems = _noncontainments()
    assert problems

    def canonical_only():
        rng = random.Random(5)
        pool = NX.sample_pool(rng, 4)
        return [
            _canonical_search(q1, q2, NX, pool, rng, budget=300) is not None
            for q1, q2 in problems
        ]

    found = benchmark(canonical_only)
    assert all(found), "canonical search must witness every refutation"


def test_ablation_oracle_random_search(benchmark):
    """Random-instance search alone misses witnesses that the canonical
    family finds (or pays far more to find them)."""
    problems = _noncontainments()

    def random_only():
        rng = random.Random(5)
        return [
            _random_search(q1, q2, NX, rng, rounds=15, domain_size=2)
            is not None
            for q1, q2 in problems
        ]

    found = benchmark(random_only)
    assert len(found) == len(problems)  # soundness only; hit rate varies


def test_ablation_fast_path_effect(benchmark):
    """How often the universal no-hom check decides by itself: on this
    workload it must fire for every pair with no plain homomorphism."""
    def with_fast_path():
        refuted = 0
        for q1, q2 in PROBLEMS:
            if not has_homomorphism(q2, q1, HomKind.PLAIN):
                refuted += 1
        return refuted

    refuted = benchmark(with_fast_path)
    expected = sum(
        1 for q1, q2 in PROBLEMS
        if decide_cq_containment(q1, q2, N).result is False
        and not has_homomorphism(q2, q1, HomKind.PLAIN)
    )
    assert refuted >= expected
