"""Benchmarks for the axiom falsifier and the relational-algebra layer.

The axiom benches time how quickly membership claims are refuted or
survive the bounded probes; the algebra benches time annotated
evaluation against compile-then-evaluate, asserting they agree — the
compilation overhead is the price of a containment-checkable plan.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra import check_rewrite, table
from repro.core import (admissible_probe_polynomials, falsify_nhcov,
                        falsify_nin, falsify_nk_hcov, probe_polynomials)
from repro.data import Instance
from repro.queries import evaluate_all
from repro.semirings import B, LIN, N, N2_SATURATING, NX, SORP, TPLUS

PROBES = probe_polynomials(random.Random(3), 40)
ADMISSIBLE = admissible_probe_polynomials(random.Random(4), 20)


def test_axiom_nhcov_refutation(benchmark):
    violation = benchmark(falsify_nhcov, N2_SATURATING)
    assert violation is not None


def test_axiom_nhcov_survival(benchmark):
    from repro.semirings import TMINUS
    violation = benchmark(falsify_nhcov, TMINUS)
    assert violation is None


def test_axiom_nin_refutation(benchmark):
    violation = benchmark(falsify_nin, TPLUS, ADMISSIBLE)
    assert violation is not None


def test_axiom_nin_survival(benchmark):
    violation = benchmark(falsify_nin, SORP, ADMISSIBLE)
    assert violation is None


def test_axiom_nk_hcov_sweep(benchmark):
    def sweep():
        return (falsify_nk_hcov(LIN, 1, PROBES),
                falsify_nk_hcov(LIN, 2, PROBES))
    survived, violated = benchmark(sweep)
    assert survived is None and violated is not None


# --- algebra -----------------------------------------------------------------

ORDERS = table("Orders", "cust", "item")
ITEMS = table("Items", "item", "cat")
PLAN = ORDERS.join(ITEMS).select("cat", "furniture").project("cust")


def _instance():
    rng = random.Random(8)
    orders = {}
    for customer in range(6):
        for item in range(6):
            if rng.random() < 0.5:
                orders[(f"c{customer}", f"i{item}")] = rng.randint(1, 3)
    items = {(f"i{item}", "furniture" if item % 2 else "tools"): 1
             for item in range(6)}
    return Instance(N, {"Orders": orders, "Items": items})


def test_algebra_direct_evaluation(benchmark):
    instance = _instance()
    result = benchmark(PLAN.evaluate, instance)
    assert result


def test_algebra_compiled_evaluation(benchmark):
    instance = _instance()
    ucq = PLAN.to_ucq()

    result = benchmark(evaluate_all, ucq, instance)
    assert result == PLAN.evaluate(instance)


def test_algebra_rewrite_certification(benchmark):
    doubled = ORDERS.join(ORDERS.rename({"item": "item2"})).project("cust")
    single = ORDERS.project("cust")

    def certify():
        return (check_rewrite(doubled, single, B).equivalent,
                check_rewrite(doubled, single, NX).equivalent,
                check_rewrite(doubled, single, LIN).equivalent)

    results = benchmark(certify)
    assert results == (True, False, True)
