"""The refinement-based canonical labeling layer: scale, agreement, warmth.

PR 5 replaced the factorial canonical-key/renaming/automorphism
machinery (minimize a serialization over all permutations of the
existential variables — non-terminating past ~10) with the
individualization-refinement engine of
:mod:`repro.homomorphisms.canonical`.  This benchmark pins its three
claims:

* **scale** — 20-existential complete CCQs, including the fully
  symmetric worst case (``|Aut| = 20!``), get ``canonical_key`` +
  ``canonical_rename`` + ``automorphism_count`` in **< 100 ms** each
  (the old implementation does not terminate above ~10 existentials);
* **agreement** — on reference-tractable sizes the new keys induce
  exactly the isomorphism classes of the preserved factorial reference
  (:mod:`repro.homomorphisms._reference_iso`), and automorphism counts
  match it on every query of the sweep;
* **warm recall** — the counting-condition workload (``→֒∞``/``→֒k``
  over ``N[X]``/``N_2[X]``/``N_3[X]``) replayed through a snapshot-
  warmed engine recomputes **zero** canonical forms, stays
  byte-identical to the cold run, and the ``canonical`` layer reports a
  perfect hit ratio.

``REPRO_BENCH_SMOKE=1`` (the CI default) keeps every equality and
cache-routing assertion but skips the machine-speed-sensitive timing
thresholds.
"""

from __future__ import annotations

import math
import os
import random
import time

from repro.api import ContainmentEngine
from repro.homomorphisms._reference_iso import (reference_automorphism_count,
                                                reference_canonical_key)
from repro.homomorphisms.canonical import compute_canonical_form
from repro.homomorphisms.isomorphism import (automorphism_count,
                                             canonical_key, canonical_rename)
from repro.queries import CQWithInequalities
from repro.queries.atoms import Atom, Var
from repro.queries.generators import random_cq
from repro.service import load_snapshot, save_snapshot

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def complete_ccq(atoms, head=()):
    """All-pairs-unequal CCQ over the atoms' existential variables."""
    existential = sorted(
        {v for atom in atoms for v in atom.variables()} - set(head))
    pairs = [(x, y) for i, x in enumerate(existential)
             for y in existential[i + 1:]]
    return CQWithInequalities(head, atoms, pairs)


def large_ccqs() -> list[tuple[str, CQWithInequalities, int]]:
    """The 20-existential shapes, worst case (full symmetry) first."""
    return [
        ("symmetric-20",
         complete_ccq([Atom("S", (Var(f"x{i:02d}"),)) for i in range(20)]),
         math.factorial(20)),
        ("chain-20",
         complete_ccq([Atom("R", (Var(f"x{i:02d}"), Var(f"x{i + 1:02d}")))
                       for i in range(19)]),
         1),
        ("two-blocks-10",
         complete_ccq([Atom("S", (Var(f"x{i:02d}"),)) for i in range(10)]
                      + [Atom("T", (Var(f"y{i:02d}"),)) for i in range(10)]),
         math.factorial(10) ** 2),
        ("matching-10-pairs",
         complete_ccq([Atom("R", (Var(f"a{i:02d}"), Var(f"b{i:02d}")))
                       for i in range(10)]),
         math.factorial(10)),
    ]


def test_large_ccq_canonicalization_under_100ms():
    """Key + renaming + |Aut| for every 20-existential shape, < 100 ms
    each (the acceptance bar; the factorial scheme needed ~20! ≈ 2.4e18
    serializations for the symmetric case)."""
    for name, query, expected_aut in large_ccqs():
        start = time.perf_counter()
        form = compute_canonical_form(query)
        renamed = query.substitute(form.renaming_map())
        elapsed_ms = (time.perf_counter() - start) * 1e3
        assert form.automorphisms == expected_aut, name
        assert len(renamed.existential_vars()) == 20, name
        assert renamed.head == query.head, name
        # renaming invariance: shuffled variable names, same key
        rng = random.Random(7)
        shuffled = query.substitute({
            var: Var(f"q{rng.randrange(10 ** 9)}_{i}")
            for i, var in enumerate(query.existential_vars())
        })
        assert compute_canonical_form(shuffled).key == form.key, name
        print(f"\n  {name}: {elapsed_ms:7.1f} ms, |Aut| = "
              f"{form.automorphisms}")
        if not SMOKE:
            assert elapsed_ms < 100.0, (
                f"{name}: canonicalization took {elapsed_ms:.1f} ms, "
                "the acceptance bar is < 100 ms")


def test_agreement_with_factorial_reference():
    """New vs old on a random sweep: same isomorphism classes, same
    automorphism counts (old keys are only tractable at small sizes)."""
    rng = random.Random(424242)
    count = 40 if SMOKE else 120
    queries = [random_cq(rng, max_atoms=4, max_vars=4,
                         head_arity=rng.choice([0, 1]))
               for _ in range(count)]
    start = time.perf_counter()
    new_keys = [canonical_key(query) for query in queries]
    new_seconds = time.perf_counter() - start
    start = time.perf_counter()
    old_keys = [reference_canonical_key(query) for query in queries]
    old_seconds = time.perf_counter() - start
    mismatches = 0
    for i in range(len(queries)):
        assert (automorphism_count(queries[i])
                == reference_automorphism_count(queries[i])), queries[i]
        for j in range(i + 1, len(queries)):
            if ((new_keys[i] == new_keys[j])
                    != (old_keys[i] == old_keys[j])):
                mismatches += 1
    assert mismatches == 0
    print(f"\n  {count} queries: refinement {new_seconds * 1e3:.1f} ms, "
          f"factorial reference {old_seconds * 1e3:.1f} ms")


def counting_workload() -> list[dict]:
    """Requests decided by the counting conditions ``→֒∞``/``→֒k``."""
    unions = [
        (["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"],
         ["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"]),  # Ex. 5.7
        (["Q() :- R(u, u)", "Q() :- R(u, u)"], ["Q() :- R(u, u)"]),
        (["Q() :- R(u, u)"], ["Q() :- R(u, u)", "Q() :- R(u, u)"]),
        (["Q() :- R(v), S(v)"],
         ["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"]),              # Ex. 5.4
        (["Q() :- R(u, v), R(v, w)"], ["Q() :- R(u, v), R(v, u)"]),
        (["Q() :- R(u, v), R(v, u)"], ["Q() :- R(u, v), R(v, w)"]),
    ]
    requests = []
    for semiring in ("N[X]", "N_2[X]", "N_3[X]"):
        for q1, q2 in unions:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
    for index, request in enumerate(requests):
        request["id"] = f"canon-{index}"
    return requests


def test_warm_canonical_recalls_through_engine(tmp_path):
    requests = counting_workload()
    cold = ContainmentEngine()
    start = time.perf_counter()
    cold_docs = [doc.to_dict() for doc in cold.decide_many(requests)]
    cold_seconds = time.perf_counter() - start
    assert cold.stats.canon_calls > 0, \
        "the counting workload must exercise the canonical layer"
    report = cold.cache_stats()["layers"]["canonical"]
    assert report["entries"] > 0 and report["calls"] > 0
    snapshot = tmp_path / "canonical.snap"
    save_snapshot(cold, snapshot, include_verdicts=False)

    warm = ContainmentEngine()
    counts = load_snapshot(warm, snapshot)
    assert counts["canonical"] == cold.cache_info()["canon_entries"]
    start = time.perf_counter()
    warm_docs = [doc.to_dict() for doc in warm.decide_many(requests)]
    warm_seconds = time.perf_counter() - start

    assert warm_docs == cold_docs, \
        "warm counting verdicts must be byte-identical to the cold run"
    assert warm.stats.canon_calls == 0, (
        "a warmed run must recall every canonical form, computed "
        f"{warm.stats.canon_calls} fresh")
    assert warm.stats.canon_hits > 0
    assert warm.cache_stats()["layers"]["canonical"]["hit_ratio"] == 1.0
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print(f"\n  {len(requests)} counting decisions: cold "
          f"{cold_seconds * 1e3:8.1f} ms, warm {warm_seconds * 1e3:8.1f} ms "
          f"({speedup:.1f}x)")
