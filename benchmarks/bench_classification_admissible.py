"""Classification matrix and CQ-admissibility benchmarks.

``test_classification_matrix`` regenerates the paper's central artifact
— which named semiring sits in which Table-1 class — and asserts every
membership claim from Secs. 3–5.
"""

from __future__ import annotations

import pytest

from repro.core import classify
from repro.polynomials import Polynomial, is_cq_admissible
from repro.semirings import ALL_SEMIRINGS, get_semiring

#: name → (CQ procedure class, UCQ procedure class, small-model?)
EXPECTED = {
    "B": ("Chom", "Chom", True),
    "PosBool[X]": ("Chom", "Chom", True),
    "P[Ω(3)]": ("Chom", "Chom", True),
    "F": ("Chom", "Chom", True),
    "A": ("Chom", "Chom", True),
    "Lin[X]": ("Chcov", "C1hcov", True),
    "Sorp[X]": ("Cin", "C1in", True),
    "T+": (None, None, True),
    "V": (None, None, True),
    "L": (None, None, False),
    "Why[X]": ("Csur", "C1sur", True),
    "Trio[X]": ("Csur", None, False),
    "Ssur[X]": ("Csur", "C∞sur", False),
    "T-": (None, None, True),
    "N": (None, None, False),
    "N_2": (None, None, False),
    "N_3": (None, None, False),
    "Lin[X]×N_2": (None, "C2hcov", False),
    "N[X]": ("Cbi", "C∞bi", False),
    "B[X]": ("Cbi", "C1bi", True),
    "N_2[X]": ("Cbi", "Ckbi", False),
    "N_3[X]": ("Cbi", "Ckbi", False),
    "R+": (None, None, False),
}


def _matrix():
    return {
        semiring.name: (
            classify(semiring).cq_exact_class(),
            classify(semiring).ucq_exact_class(),
            classify(semiring).small_model,
        )
        for semiring in ALL_SEMIRINGS
    }


def test_classification_matrix(benchmark):
    matrix = benchmark(_matrix)
    assert matrix == EXPECTED


ADMISSIBLE_CASES = [
    ("x^2", [(1, "xx")], True),
    ("2xy", [(2, "xy")], True),
    ("x+y", [(1, "x"), (1, "y")], True),
    ("(x+y)^2", [(1, "xx"), (2, "xy"), (1, "yy")], True),
    ("2x", [(2, "x")], False),
    ("x^2+y", [(1, "xx"), (1, "y")], False),
    ("x^2+xy+y^2", [(1, "xx"), (1, "xy"), (1, "yy")], False),
]


@pytest.mark.parametrize("name,terms,expected",
                         ADMISSIBLE_CASES, ids=[c[0] for c in ADMISSIBLE_CASES])
def test_admissibility(benchmark, name, terms, expected):
    poly = Polynomial.parse_terms(terms)
    result = benchmark(is_cq_admissible, poly)
    assert result == expected


def test_admissibility_larger_power(benchmark):
    """(x + y + z)³: the canonical admissible polynomial of degree 3."""
    sum_poly = (Polynomial.variable("x") + Polynomial.variable("y")
                + Polynomial.variable("z"))
    poly = sum_poly.power(3)
    result = benchmark(is_cq_admissible, poly)
    assert result is True
