"""Complexity-shape sweeps for the core combinatorial engines.

Table 1's complexity column is asymptotic (NP-c, Πp2, coNP^#P,
EXPTIME); on a simulator we reproduce its *shape*:

* homomorphism search cost grows with query size (chains into cliques —
  the classic NP-hard family);
* complete descriptions grow with the Bell numbers of the existential
  variable count;
* the ``։∞`` Hall matching grows with the product of description sizes.
"""

from __future__ import annotations

import pytest

from repro.homomorphisms import HomKind, has_homomorphism, sur_infty
from repro.queries import UCQ, complete_description

from conftest import chain_query, clique_query

CHAIN_SIZES = [2, 4, 6]
CLIQUE = clique_query(4)


@pytest.mark.parametrize("length", CHAIN_SIZES)
def test_hom_search_chain_into_clique(benchmark, length):
    """Chains map homomorphically into cliques (many ways: the search
    space is |clique|^vars)."""
    chain = chain_query(length)
    result = benchmark(has_homomorphism, chain, CLIQUE, HomKind.PLAIN)
    assert result is True


@pytest.mark.parametrize("length", CHAIN_SIZES)
def test_hom_search_negative_instance(benchmark, length):
    """No hom from a clique into a chain: full backtracking exhaustion."""
    chain = chain_query(length)
    result = benchmark(has_homomorphism, CLIQUE, chain, HomKind.PLAIN)
    assert result is False


@pytest.mark.parametrize("vars_", [2, 3, 4, 5])
def test_complete_description_bell_growth(benchmark, vars_):
    query = chain_query(vars_ - 1)
    description = benchmark(complete_description, query)
    bell = {2: 2, 3: 5, 4: 15, 5: 52}[vars_]
    assert len(description) == bell


@pytest.mark.parametrize("length", [1, 2, 3])
def test_sur_infty_matching_growth(benchmark, length):
    q1 = UCQ((chain_query(length),))
    q2 = UCQ((chain_query(length), chain_query(length, fan=2)))
    result = benchmark(sur_infty, q2, q1)
    assert result is True


@pytest.mark.parametrize("kind", [HomKind.PLAIN, HomKind.INJECTIVE,
                                  HomKind.SURJECTIVE, HomKind.BIJECTIVE],
                         ids=lambda kind: kind.value)
def test_hom_kinds_comparable_cost(benchmark, kind):
    """All four kinds are the same NP-style search with different
    pruning (Cor. 3.4 / 4.4 / 4.9 / 4.15)."""
    source = chain_query(4, fan=2)
    target = chain_query(4, fan=2)
    result = benchmark(has_homomorphism, source, target, kind)
    assert result is True
