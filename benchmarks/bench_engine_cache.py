"""Cache effectiveness of the :class:`repro.api.ContainmentEngine` facade.

The repeated-workload microbenchmark of the API redesign: run the
Table-1 CQ matrix (every built-in semiring × the curated CQ pairs)
twice through ONE engine.  The first pass pays for parsing,
classification and the homomorphism searches; the second pass must be
served entirely from the verdict cache and come out measurably faster.
"""

from __future__ import annotations

import time

from repro.api import ContainmentEngine
from repro.semirings import ALL_SEMIRINGS

from conftest import curated_cq_pairs

MATRIX = [(semiring, q1, q2)
          for semiring in ALL_SEMIRINGS
          for q1, q2 in curated_cq_pairs()]


def _full_pass(engine: ContainmentEngine):
    return [engine.decide(q1, q2, semiring).result
            for semiring, q1, q2 in MATRIX]


def test_second_pass_is_all_cache_hits():
    engine = ContainmentEngine()
    start = time.perf_counter()
    cold = _full_pass(engine)
    after_cold = time.perf_counter()
    warm = _full_pass(engine)
    after_warm = time.perf_counter()

    assert warm == cold
    stats = engine.stats
    # Every warm decision was a verdict-cache hit...
    assert stats.verdict_hits == len(MATRIX)
    # ...and each semiring was classified exactly once, in the cold pass.
    assert stats.classify_calls == len(ALL_SEMIRINGS)
    # The warm pass skips every homomorphism search.
    assert stats.hom_calls <= len(MATRIX) * 2

    cold_ms = (after_cold - start) * 1e3
    warm_ms = (after_warm - after_cold) * 1e3
    print(f"\ncold pass: {cold_ms:8.2f} ms for {len(MATRIX)} decisions")
    print(f"warm pass: {warm_ms:8.2f} ms ({cold_ms / max(warm_ms, 1e-9):.0f}x"
          " faster via caches)")
    assert warm_ms < cold_ms


def test_warm_engine_throughput(benchmark):
    engine = ContainmentEngine()
    expected = _full_pass(engine)  # prime every cache layer
    results = benchmark(_full_pass, engine)
    assert results == expected


def test_cold_engine_throughput(benchmark):
    def cold_pass():
        return _full_pass(ContainmentEngine())

    results = benchmark(cold_pass)
    assert results == _full_pass(ContainmentEngine())
