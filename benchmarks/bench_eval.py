"""The columnar evaluation engine vs the tuple-at-a-time reference.

The eval subsystem's reason to exist is throughput: K-annotated answer
relations over million-tuple instances, which the naive
valuation-enumerating :func:`repro.queries.evaluation.evaluate_all`
cannot touch.  This benchmark pins the subsystem's three claims on a
1M-tuple join workload (``Q(x) :- R(x, y), S(y)`` over ``T+``, the
paper's cost-annotation reading):

* **≥ 50× over tuple-at-a-time** — the columnar engine's throughput
  (facts/second) beats the reference evaluator by at least 50× on the
  same query shape.  The reference is measured on a subsampled
  instance (it is the toy; running it on the full million would take
  minutes) and compared by throughput, which favours the *reference* —
  small instances pay none of the columnar path's fixed setup costs.
* **byte-identical** — on the subsample both paths return exactly the
  same answer map, annotation types included.
* **warm plan-cache hits** — repeated evaluations of the workload
  query hit the engine's ``eval_plans`` layer, visible in
  ``cache_stats()``.

``REPRO_BENCH_SMOKE=1`` (the CI default) keeps the equality and
plan-cache assertions but skips the machine-speed-sensitive timing
thresholds, and shrinks the instance so the smoke run stays fast.
"""

from __future__ import annotations

import os
import random
import time

from repro.api import ContainmentEngine
from repro.data.instance import Instance
from repro.queries.evaluation import evaluate_all
from repro.queries.parser import parse_cq
from repro.queries.ucq import as_ucq
from repro.semirings import TPLUS

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Full-scale facts for the columnar side (1M) and the reference's
#: subsample; smoke runs shrink both but keep the comparison meaningful.
FULL_FACTS = 100_000 if SMOKE else 1_000_000
REFERENCE_FACTS = 2_000 if SMOKE else 10_000

QUERY_TEXT = "Q(x) :- R(x, y), S(y)"


def edge_instance(fact_count: int, seed: int = 7) -> Instance:
    """A cost-annotated graph: ~90% ``R`` edges, ~10% ``S`` vertices."""
    rng = random.Random(seed)
    domain = max(fact_count // 10, 10)
    r_facts = fact_count - fact_count // 10
    edges: dict[tuple, int] = {}
    while len(edges) < r_facts:
        row = (rng.randrange(domain), rng.randrange(domain))
        cost = rng.randrange(1, 100)
        edges[row] = min(edges.get(row, cost), cost)
    vertices = {(v,): rng.randrange(1, 10)
                for v in rng.sample(range(domain), fact_count // 10)}
    return Instance(TPLUS, {"R": edges, "S": vertices})


def test_columnar_throughput_and_plan_cache():
    query = as_ucq(parse_cq(QUERY_TEXT))
    engine = ContainmentEngine()

    # -- full-scale columnar run ---------------------------------------
    instance = edge_instance(FULL_FACTS)
    facts = instance.fact_count()
    start = time.perf_counter()
    table = engine.evaluate(query, instance)
    columnar_seconds = time.perf_counter() - start
    columnar_rate = facts / columnar_seconds
    print(f"\n  columnar : {facts:>9,} facts -> {len(table):>7,} answers "
          f"in {columnar_seconds * 1e3:8.1f} ms "
          f"({columnar_rate / 1e6:6.2f} M facts/s)")

    # -- reference run on the subsample it can handle ------------------
    small = edge_instance(REFERENCE_FACTS, seed=8)
    small_facts = small.fact_count()
    start = time.perf_counter()
    reference_answers = evaluate_all(query, small)
    reference_seconds = time.perf_counter() - start
    reference_rate = small_facts / reference_seconds
    print(f"  reference: {small_facts:>9,} facts -> "
          f"{len(reference_answers):>7,} answers "
          f"in {reference_seconds * 1e3:8.1f} ms "
          f"({reference_rate / 1e6:6.2f} M facts/s)")

    # -- byte-identity on the subsample --------------------------------
    columnar_small = engine.evaluate(query, small).to_dict()
    assert columnar_small == reference_answers, \
        "columnar answers must be byte-identical to the reference"
    for head, value in reference_answers.items():
        assert type(columnar_small[head]) is type(value), (head, value)
    print(f"  identical: {len(reference_answers):,} answers agree "
          f"(annotation types included)")

    # -- plan-cache warm hits ------------------------------------------
    plan_layer = engine.cache_stats()["layers"]["eval_plans"]
    assert plan_layer["entries"] == 1, plan_layer
    assert plan_layer["calls"] == 1, \
        "one plan build must serve every evaluation of the query"
    assert plan_layer["hits"] >= 1, \
        "repeated evaluations must hit the eval_plans layer"
    assert engine.stats.evaluations == 2
    print(f"  plan cache: {plan_layer['hits']} hit(s) / "
          f"{plan_layer['calls']} build "
          f"({plan_layer['entries']} entry)")

    speedup = columnar_rate / reference_rate
    print(f"  speedup  : {speedup:8.1f}x columnar over tuple-at-a-time")
    if not SMOKE:
        assert speedup >= 50.0, (
            f"the columnar engine must be >= 50x faster than "
            f"tuple-at-a-time, got {speedup:.1f}x")


if __name__ == "__main__":
    test_columnar_throughput_and_plan_cache()
