"""The paper's four worked examples as end-to-end benchmarks.

Each benchmark re-derives the example's published conclusion and
asserts it, so these double as the reproduction's acceptance tests.
"""

from __future__ import annotations

from repro.core import decide_cq_containment, decide_ucq_containment
from repro.data import canonical_instance
from repro.homomorphisms import HomKind, has_homomorphism, local_condition
from repro.polynomials import Polynomial
from repro.queries import complete_description, evaluate, parse_cq, parse_ucq
from repro.semirings import N2X, N3X, NX, TPLUS, LIN


def test_example_4_6(benchmark):
    """Q1 ⊆T+ Q2 without an injective homomorphism; ⟨Q1⟩ has five CCQs
    and Q1^⟦Q11⟧ = x1² + 2x1x2 + x2² =T+ x1² + x2² = Q2^⟦Q11⟧."""
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")

    def scenario():
        description = complete_description(q1)
        finest = max(description,
                     key=lambda ccq: len(ccq.existential_vars()))
        tagged = canonical_instance(finest)
        p1 = evaluate(q1, tagged.instance, (), NX)
        p2 = evaluate(q2, tagged.instance, (), NX)
        verdict = decide_cq_containment(q1, q2, TPLUS)
        return description, p1, p2, verdict

    description, p1, p2, verdict = benchmark(scenario)
    assert len(description) == 5
    assert p1 == Polynomial.parse_terms(
        [(1, ("z1", "z1")), (2, ("z1", "z2")), (1, ("z2", "z2"))])
    assert p2 == Polynomial.parse_terms(
        [(1, ("z1", "z1")), (1, ("z2", "z2"))])
    assert TPLUS.poly_leq(p1, p2) and TPLUS.poly_leq(p2, p1)
    assert verdict.result is True
    assert not has_homomorphism(q2, q1, HomKind.INJECTIVE)


def test_example_5_4(benchmark):
    """UCQ T+-containment with no member-wise containment."""
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"])

    def scenario():
        union = decide_ucq_containment(q1, q2, TPLUS)
        locals_ = [decide_cq_containment(q1.cqs[0], member, TPLUS).result
                   for member in q2]
        return union, locals_

    union, locals_ = benchmark(scenario)
    assert union.result is True
    assert locals_ == [False, False]


def test_example_5_7(benchmark):
    """N[X] union containment via →֒∞ counting, and the offset story of
    the continuation: the third loop copy is absorbed at offset 2,
    fatal at offset 3 and ∞."""
    q1 = parse_ucq(["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"])
    q2 = parse_ucq(["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"])
    q1_plus = q1.with_member(parse_cq("Q() :- R(u, u), R(u, u)"))

    def scenario():
        return (
            decide_ucq_containment(q1, q2, NX).result,
            decide_ucq_containment(q1_plus, q2, NX).result,
            decide_ucq_containment(q1_plus, q2, N2X).result,
            decide_ucq_containment(q1_plus, q2, N3X).result,
        )

    base, plus_nx, plus_n2x, plus_n3x = benchmark(scenario)
    assert base is True
    assert plus_nx is False
    assert plus_n2x is True
    assert plus_n3x is False


def test_example_5_20(benchmark):
    """Shcov union covering: two members jointly cover what neither
    covers alone."""
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v)", "Q() :- S(v)"])

    def scenario():
        union = decide_ucq_containment(q1, q2, LIN)
        pairwise = [
            decide_cq_containment(q1.cqs[0], member, LIN).result
            for member in q2
        ]
        return union, pairwise

    union, pairwise = benchmark(scenario)
    assert union.result is True
    assert union.method == "union-covering"
    assert pairwise == [False, False]
