"""Cold-path speed of the indexed, plan-driven homomorphism search.

Compares the rewritten matcher (:mod:`repro.homomorphisms.search`)
against the preserved pre-PR backtracker
(:mod:`repro.homomorphisms._reference`) on three workloads where
homomorphism search actually spends its time:

* **random patterns** — random single-relation CQ pairs at sizes where
  the search tree, not call setup, dominates (existence checks);
* **random enumeration** — full `homomorphisms()` sweeps, the primitive
  behind ``covered_atoms`` and the ``⇉``/``⇉1``/``⇉2`` conditions;
* **covering no-instances** — surjective/bijective searches that must
  *refute*, where the naive searcher explores exponentially many
  mappings the multiset-coverage prune cuts immediately.

Every benchmark first asserts answer equivalence (the rewrite is
bit-for-bit compatible on verdicts), then times both searchers cold.
The aggregate cold-path speedup must be ≥ 2×.

A second test asserts the PR's cache-routing goal: the covering, UCQ
and bag-semantics bounds paths now flow through the engine's LRUs
(``cache_info()`` recorded zero hom hits from those paths before).

Set ``REPRO_BENCH_SMOKE=1`` (the CI default) to shrink the workloads
and skip the wall-clock ratio assertion — machine-speed-sensitive
checks don't belong in shared CI, but the equivalence and cache-routing
assertions always run.
"""

from __future__ import annotations

import os
import random
import time

from repro.api import ContainmentEngine
from repro.homomorphisms import HomKind, has_homomorphism, homomorphisms
from repro.homomorphisms._reference import (reference_has_homomorphism,
                                            reference_homomorphisms)
from repro.queries import CQ, Atom, Var
from repro.queries.generators import random_cq

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE = 1 if SMOKE else 4

EDGE_SCHEMA = (("E", 2),)


def chain(length: int, fan: int = 1) -> CQ:
    atoms = []
    for i in range(length):
        for _ in range(fan):
            atoms.append(Atom("E", (Var(f"v{i}"), Var(f"v{i + 1}"))))
    return CQ((), atoms)


def random_patterns(seed: int, count: int, atoms: int, variables: int):
    rng = random.Random(seed)
    return [
        (random_cq(rng, EDGE_SCHEMA, max_atoms=atoms, max_vars=variables,
                   duplicate_bias=0.0),
         random_cq(rng, EDGE_SCHEMA, max_atoms=atoms,
                   max_vars=variables - 1, duplicate_bias=0.0))
        for _ in range(count)
    ]


def _existence_workload():
    pairs = random_patterns(3, 15 * SCALE, atoms=12, variables=6)
    return [(q1, q2, HomKind.PLAIN) for q1, q2 in pairs]


def _enumeration_workload():
    pairs = random_patterns(11, 8 * SCALE, atoms=9, variables=5)
    return [(q1, q2, kind) for q1, q2 in pairs
            for kind in (HomKind.PLAIN, HomKind.SURJECTIVE)]


def _covering_refutation_workload():
    cases = []
    for length in range(9, 11 + SCALE):
        cases.append((chain(length + 1), chain(length), HomKind.SURJECTIVE))
        cases.append((chain(length + 1), chain(length), HomKind.BIJECTIVE))
    return cases


def _run(workload, enumerate_all: bool):
    def new_pass():
        if enumerate_all:
            return [sorted(map(sorted, (h.items() for h in
                                        homomorphisms(q1, q2, kind))))
                    for q1, q2, kind in workload]
        return [has_homomorphism(q1, q2, kind) for q1, q2, kind in workload]

    def old_pass():
        if enumerate_all:
            return [sorted(map(sorted, (h.items() for h in
                                        reference_homomorphisms(q1, q2,
                                                                kind))))
                    for q1, q2, kind in workload]
        return [reference_has_homomorphism(q1, q2, kind)
                for q1, q2, kind in workload]

    start = time.perf_counter()
    new_answers = new_pass()
    new_seconds = time.perf_counter() - start
    start = time.perf_counter()
    old_answers = old_pass()
    old_seconds = time.perf_counter() - start
    assert new_answers == old_answers
    return new_seconds, old_seconds


def test_cold_path_speedup_over_reference_searcher():
    sections = [
        ("random existence (12 atoms)", _existence_workload(), False),
        ("random enumeration (9 atoms)", _enumeration_workload(), True),
        ("covering refutations (chains)", _covering_refutation_workload(),
         False),
    ]
    total_new = total_old = 0.0
    print()
    for label, workload, enumerate_all in sections:
        new_seconds, old_seconds = _run(workload, enumerate_all)
        total_new += new_seconds
        total_old += old_seconds
        print(f"  {label:32s} new {1e3 * new_seconds:8.1f} ms   "
              f"old {1e3 * old_seconds:8.1f} ms   "
              f"{old_seconds / max(new_seconds, 1e-9):5.1f}x")
    speedup = total_old / max(total_new, 1e-9)
    print(f"  {'aggregate cold path':32s} new {1e3 * total_new:8.1f} ms   "
          f"old {1e3 * total_old:8.1f} ms   {speedup:5.1f}x")
    if not SMOKE:
        assert speedup >= 2.0, (
            f"indexed search must be >= 2x the reference cold, "
            f"got {speedup:.2f}x")


def test_hom_cache_hits_from_covering_ucq_and_bounds_paths():
    """The PR-2 routing goal, asserted end to end.

    Before the context was threaded through `covers`, the UCQ
    conditions and `_bounded_verdict`, these decisions recorded zero
    hom/cover/description hits — every path recomputed its searches.
    """
    engine = ContainmentEngine()
    q1 = "Q() :- R(u, v), R(u, w)"
    q2 = "Q() :- R(u, v), R(u, v)"
    engine.decide(q1, q2, "Lin[X]")                      # Chcov covering
    engine.decide([q1], [q2, "Q() :- S(x)"], "N")        # bounds sweep
    engine.decide(
        ["Q() :- R(u, u)", "Q() :- R(v, w), R(w, v)"],
        ["Q() :- R(a, b)", "Q() :- R(c, c), R(c, c)"],
        "Ssur[X]")                                       # ։∞ matching
    info = engine.cache_info()
    print(f"\n  cache_info after covering/bounds/։∞ decisions: {info}")
    assert info["hom_hits"] > 0
    assert info["cover_calls"] > 0
    assert info["description_hits"] > 0
    # Warm repeat: the whole Table-1 surface is now served from LRUs.
    before = dict(info)
    engine.decide(q1, q2, "Lin[X]")
    engine.decide([q1], [q2, "Q() :- S(x)"], "N")
    after = engine.cache_info()
    assert after["verdict_hits"] == before["verdict_hits"] + 2
    assert after["hom_calls"] == before["hom_calls"]
    assert after["cover_calls"] == before["cover_calls"]
