"""Wall-clock budget for the interprocedural linter.

``python -m repro lint`` is a hard CI gate, so the whole-repo pass —
call-graph construction, per-function CFGs, the taint fixpoints of
RL101–RL104 on top of the original per-file rules — must stay cheap
enough to run on every push.  This benchmark lints the repository's
own package with ``--stats`` timing enabled and pins:

* the pass is clean (the same assertion the gate makes);
* every registered rule actually ran (a timing row per rule — a rule
  silently dropping out of the run would relax the gate);
* the full interprocedural pass finishes under a wall-clock budget.

``REPRO_BENCH_SMOKE=1`` (the CI default) keeps the cleanliness and
coverage assertions but skips the machine-speed budget.
"""

from __future__ import annotations

import os
import time

from repro.lint import run_lint
from repro.lint.model import RULES

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Seconds the full-repo pass (all rules, stats on) may take.  The
#: pass runs in well under 2 s on a developer laptop; 15 s leaves an
#: order of magnitude of headroom for slow CI machines while still
#: catching a quadratic regression in the call graph or the worklist.
FULL_PASS_BUDGET_S = 15.0


def test_full_repo_interprocedural_lint_under_budget():
    start = time.perf_counter()
    report = run_lint(with_stats=True)  # defaults to the repro package
    elapsed = time.perf_counter() - start

    assert report.clean, "\n".join(f.render() for f in report.findings)

    timed_rules = {rule for rule, _ in report.timings}
    registered = set(RULES)
    assert timed_rules == registered, (
        f"rules missing from the pass: {sorted(registered - timed_rules)}")
    flow_s = sum(seconds for rule, seconds in report.timings
                 if rule.startswith("RL1"))
    total_s = sum(seconds for _, seconds in report.timings)
    print(f"\nfull-repo lint: {elapsed * 1e3:8.1f} ms wall "
          f"({total_s * 1e3:.1f} ms in rules, {flow_s * 1e3:.1f} ms "
          f"in RL1xx) over {report.files} files")

    if SMOKE:
        return  # cleanliness + coverage only on slow shared runners
    assert elapsed < FULL_PASS_BUDGET_S, (
        f"interprocedural lint took {elapsed:.1f}s "
        f"(budget {FULL_PASS_BUDGET_S:.0f}s)")


def test_flow_rules_alone_are_not_the_bottleneck():
    """RL1xx must stay the same order of magnitude as the per-file
    rules — the interprocedural layer rides along with the gate, it
    does not own it."""
    report = run_lint(select=["RL1XX"], with_stats=True)
    assert report.clean, "\n".join(f.render() for f in report.findings)
    assert {rule for rule, _ in report.timings} \
        == {"RL101", "RL102", "RL103", "RL104"}
