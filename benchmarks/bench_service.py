"""Throughput of the decision service: worker pool + warm-start snapshots.

Claims of the service subsystem, asserted on a ≥400-decision
mixed-semiring workload (the shape of rewrite-auditing sweeps: many
independent Table-1 decisions over a fixed semiring set):

* **parallel** — a 4-worker :class:`repro.service.WorkerPool` must beat
  a sequential ``decide_many`` by ≥ 2× wall clock *and* produce a
  byte-identical verdict stream (certificates, explanations, request
  ids and ``cached`` flags included — deterministic sharding keeps the
  verdict-cache behavior aligned with the sequential engine's);
* **warm start** — a repeated CLI-style batch run restoring a
  structural snapshot must be ≥ 3× faster than its cold twin, again
  with byte-identical output (the structural layers carry no verdict
  documents, so ``cached`` stays ``false``);
* **self-healing** — a supervised pool with one worker SIGKILLed
  mid-stream must still produce the byte-identical verdict stream,
  with the respawn visible in the service metrics; and the asyncio
  gateway must shed load in-band under a wedged worker and serve
  normally once it resumes.

Verdict equality always runs.  The wall-clock ratios are asserted only
on capable machines: set ``REPRO_BENCH_SMOKE=1`` (the CI default) to
shrink the workload and skip them, and the parallel ratio additionally
requires ≥ 4 CPU cores — a 4-worker pool cannot beat sequential on a
single-core box, and machine-speed-sensitive checks don't belong in
shared CI.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time

from repro.api import ContainmentEngine
from repro.queries import CQ, Atom, Var
from repro.service import (AsyncGateway, SupervisedWorkerPool, WorkerPool,
                           load_snapshot, save_snapshot)

from conftest import curated_cq_pairs, curated_ucq_pairs

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
PARALLEL_WORKERS = 4
# The semiring spread deliberately skips the tropical pair (T+/T-):
# their decisions are dominated by the polynomial order checks, whose
# certificate memo has its own dedicated cold/warm benchmark
# (bench_tropical_order.py) — mixing them in here would only dilute
# the structural-cache ratios this benchmark pins.
SEMIRINGS = ["B", "N", "Lin[X]", "Why[X]", "Trio[X]", "F", "N[X]",
             "Ssur[X]", "PosBool[X]"]


def _chain(length: int, relation: str) -> str:
    """A length-``length`` chain over a private relation name.

    Distinct relation names make structurally-identical requests
    distinct cache keys, so the sweeps below are many independent
    medium-cost decisions — the shape that actually distributes across
    workers (one huge request cannot).
    """
    return repr(CQ((), [Atom(relation, (Var(f"v{i}"), Var(f"v{i + 1}")))
                        for i in range(length)]))


def _clique(size: int, relation: str) -> str:
    """All directed edges among ``size`` variables.

    The best compute-per-cache-key shape for the ``N`` bounds search:
    few existential variables (a small Bell-number expansion, so few
    structural keys) but dense 12–20-atom bodies whose homomorphism
    searches carry the real cost a warm snapshot elides.
    """
    return repr(CQ((), [Atom(relation, (Var(f"v{i}"), Var(f"v{j}")))
                        for i in range(size) for j in range(size)
                        if i != j]))


def service_workload() -> list[dict]:
    """≥ 400 mixed requests (small smoke subset in CI).

    Three blocks: the curated CQ/UCQ pairs across the semiring spread
    (many light decisions), a bag-semantics chain sweep over distinct
    relation names (medium-cost bounds searches, each with a
    Bell-number description expansion — the hot spot a warm snapshot
    elides), plus one duplicate block so verdict-cache behavior (the
    ``cached`` flag) is exercised end to end.  Chain lengths stay ≤ 4:
    the ``N`` bounds search is super-exponential in the existential
    variables and length 5 alone takes seconds.
    """
    cq_pairs = [(str(q1), str(q2)) for q1, q2 in curated_cq_pairs()]
    pairs: list[tuple] = list(cq_pairs)
    pairs += [(q2, q1) for q1, q2 in cq_pairs]
    pairs += [([str(cq) for cq in u1], [str(cq) for cq in u2])
              for u1, u2 in curated_ucq_pairs()]
    semirings = SEMIRINGS[:3] if SMOKE else SEMIRINGS
    requests = [
        {"semiring": semiring, "q1": q1, "q2": q2}
        for semiring in semirings
        for q1, q2 in pairs
    ]
    requests += [
        {"semiring": semiring, "q1": q1, "q2": q2, "equivalence": True}
        for semiring in semirings
        for q1, q2 in cq_pairs
    ]
    if SMOKE:
        for index in range(6):
            relation = f"E{index}"
            requests.append({"semiring": "N", "q1": _chain(3, relation),
                             "q2": _chain(2, relation)})
    else:
        for index in range(32):
            relation = f"E{index}"
            requests.append({"semiring": "N",
                             "q1": _clique(4, relation),
                             "q2": _clique(3, relation)})
        for index in range(24):
            relation = f"K{index}"
            requests.append({"semiring": "N",
                             "q1": _clique(5, relation),
                             "q2": _clique(4, relation)})
    requests += requests[:len(requests) // 4]  # duplicates → cache hits
    for index, request in enumerate(requests):
        request = dict(request)
        request["id"] = f"req-{index}"
        requests[index] = request
    return requests


def sequential_pass(requests) -> tuple[list[dict], float]:
    engine = ContainmentEngine()
    start = time.perf_counter()
    documents = [doc.to_dict() for doc in engine.decide_many(requests)]
    return documents, time.perf_counter() - start


def test_parallel_pool_matches_sequential_verdicts():
    requests = service_workload()
    if not SMOKE:
        assert len(requests) >= 400, len(requests)
    sequential, sequential_seconds = sequential_pass(requests)
    with WorkerPool(PARALLEL_WORKERS) as pool:
        start = time.perf_counter()
        parallel = [doc.to_dict() for doc in pool.decide_many(requests)]
        parallel_seconds = time.perf_counter() - start
    assert parallel == sequential, \
        "parallel verdict stream must be byte-identical to sequential"
    speedup = sequential_seconds / max(parallel_seconds, 1e-9)
    print(f"\n  {len(requests)} decisions: sequential "
          f"{sequential_seconds * 1e3:8.1f} ms, {PARALLEL_WORKERS} workers "
          f"{parallel_seconds * 1e3:8.1f} ms ({speedup:.2f}x, "
          f"{os.cpu_count()} cores)")
    cores = os.cpu_count() or 1
    if not SMOKE and cores >= PARALLEL_WORKERS:
        assert speedup >= 2.0, (
            f"4-worker pool must be >= 2x sequential on a {cores}-core "
            f"machine, got {speedup:.2f}x")


def test_warm_start_snapshot_speeds_up_repeated_batch(tmp_path):
    requests = service_workload()
    snapshot = tmp_path / "warm.snap"

    cold_engine = ContainmentEngine()
    start = time.perf_counter()
    cold = [doc.to_dict() for doc in cold_engine.decide_many(requests)]
    cold_seconds = time.perf_counter() - start
    # The CLI contract: structural layers only, so the warmed run's
    # documents (cached flags included) equal the cold run's.
    save_snapshot(cold_engine, snapshot, include_verdicts=False)

    warm_engine = ContainmentEngine()
    load_snapshot(warm_engine, snapshot)
    start = time.perf_counter()
    warm = [doc.to_dict() for doc in warm_engine.decide_many(requests)]
    warm_seconds = time.perf_counter() - start

    assert warm == cold, \
        "warm-start verdict stream must be byte-identical to the cold run"
    assert warm_engine.stats.hom_calls == 0
    assert warm_engine.stats.hom_enum_calls == 0
    assert warm_engine.stats.classify_calls == 0
    assert warm_engine.stats.parse_calls == 0
    assert warm_engine.stats.description_calls == 0
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print(f"\n  {len(requests)} decisions: cold "
          f"{cold_seconds * 1e3:8.1f} ms, warm-start "
          f"{warm_seconds * 1e3:8.1f} ms ({speedup:.2f}x)")
    if not SMOKE:
        assert speedup >= 3.0, (
            f"structural warm start must be >= 3x a cold run, "
            f"got {speedup:.2f}x")


def test_supervised_pool_survives_sigkill_byte_identically():
    """The elastic-serving claim: chaos changes wall clock, not bytes.

    The full service workload runs through a supervised 4-worker pool
    with one worker SIGKILLed mid-stream; the verdict stream must stay
    byte-identical to the sequential engine's and the respawn must show
    up in the service metrics.
    """
    requests = service_workload()
    if not SMOKE:
        assert len(requests) >= 400, len(requests)
    sequential, sequential_seconds = sequential_pass(requests)
    with SupervisedWorkerPool(PARALLEL_WORKERS) as pool:
        start = time.perf_counter()
        seqs = [pool.submit(pool.normalize(request))
                for request in requests]
        outcomes = [pool.result(seq, timeout=300) for seq in seqs[:20]]
        victim = next(pid for pid in pool.worker_pids() if pid)
        os.kill(victim, signal.SIGKILL)
        outcomes += [pool.result(seq, timeout=300) for seq in seqs[20:]]
        chaos_seconds = time.perf_counter() - start
        report = pool.metrics.as_dict()
    assert [outcome.to_dict() for outcome in outcomes] == sequential, \
        "a SIGKILL mid-stream must not change a single output byte"
    assert report["respawns"] >= 1
    assert sum(report["worker_restarts"]) >= 1
    print(f"\n  {len(requests)} decisions under SIGKILL chaos: sequential "
          f"{sequential_seconds * 1e3:8.1f} ms, supervised "
          f"{chaos_seconds * 1e3:8.1f} ms, {report['respawns']} respawns, "
          f"{report['redriven']} re-driven, {report['steals']} steals")


def test_gateway_sheds_load_in_band_and_recovers():
    """Backpressure smoke: a wedged worker trips shedding, then recovers.

    SIGSTOP makes the overload deterministic: with ``queue_limit=1``
    the first request holds the only seat until its deadline expires
    and the pipelined rest are shed in-band.  After SIGCONT the same
    gateway serves normally — shedding is a mode, not a death.
    """
    with SupervisedWorkerPool(1) as pool:
        gateway = AsyncGateway(pool, deadline=1.0, queue_limit=1)
        ready = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(
                gateway.serve("127.0.0.1", 0, ready=ready)),
            daemon=True)
        thread.start()
        assert ready.wait(timeout=10)

        def exchange(lines):
            with socket.create_connection(gateway.tcp_address,
                                          timeout=30) as client:
                with client.makefile("rw", encoding="utf-8",
                                     newline="\n") as stream:
                    for line in lines:
                        stream.write(line + "\n")
                    stream.flush()
                    client.shutdown(socket.SHUT_WR)
                    return [json.loads(line) for line in stream
                            if line.strip()]

        burst = [json.dumps({"semiring": "B",
                             "q1": f"Q() :- R(u, v), B{i}(u)",
                             "q2": "Q() :- R(u, v)", "id": f"b{i}"})
                 for i in range(4)]
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGSTOP)
        try:
            replies = exchange(burst)
        finally:
            os.kill(pid, signal.SIGCONT)
        assert replies[0].get("expired") is True
        assert all(reply.get("overloaded") for reply in replies[1:])
        recovered = exchange([burst[0]])
        assert recovered[0]["request_id"] == "b0"
        report = gateway.metrics.as_dict()
        assert report["shed"] == 3
        assert report["expired"] == 1
        exchange(['{"op": "shutdown"}'])
        thread.join(timeout=10)
        assert not thread.is_alive()
        print(f"\n  gateway shed {report['shed']} of {len(burst)} under a "
              f"wedged worker, expired {report['expired']}, recovered "
              f"after SIGCONT")


def test_warm_start_through_the_cli(tmp_path):
    """The end-to-end CLI contract: ``batch --snapshot`` twice.

    The second run restores the first run's snapshot and must produce
    the same bytes (the snapshot excludes verdicts by default exactly
    so this holds).
    """
    from repro.cli import main

    requests = service_workload()
    input_path = tmp_path / "requests.jsonl"
    input_path.write_text(
        "".join(json.dumps(request) + "\n" for request in requests),
        encoding="utf-8")
    snapshot = tmp_path / "cli.snap"
    outputs = []
    timings = []
    for run in ("cold", "warm"):
        output_path = tmp_path / f"{run}.jsonl"
        start = time.perf_counter()
        code = main(["batch", "--input", str(input_path),
                     "--output", str(output_path),
                     "--snapshot", str(snapshot)])
        timings.append(time.perf_counter() - start)
        assert code == 0
        outputs.append(output_path.read_text(encoding="utf-8"))
    assert outputs[1] == outputs[0]
    assert snapshot.exists()
    speedup = timings[0] / max(timings[1], 1e-9)
    print(f"\n  CLI batch: cold {timings[0] * 1e3:8.1f} ms, "
          f"warm {timings[1] * 1e3:8.1f} ms ({speedup:.2f}x)")
    if not SMOKE:
        assert speedup >= 3.0, (
            f"CLI warm-start batch must be >= 3x the cold run, "
            f"got {speedup:.2f}x")
