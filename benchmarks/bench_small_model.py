"""Scaling of the small-model procedure (Thm. 4.17, Prop. 4.19).

The dominant cost is the Bell-number growth of ``⟨Q1⟩`` in the number
of existential variables, times one LP-backed polynomial comparison per
CCQ.  The sweep pins that shape: Bell(2) = 2, Bell(3) = 5,
Bell(4) = 15 canonical instances.
"""

from __future__ import annotations

import pytest

from repro.core import small_model_contained, small_model_tests
from repro.queries import parse_cq
from repro.semirings import TMINUS, TPLUS

from conftest import chain_query


def _chain_pair(length: int):
    """Containment of a chain in its duplicated-edge variant: holds over
    T− (duplication only raises max-plus cost), fails over T+."""
    q1 = chain_query(length, fan=1)
    q2 = chain_query(length, fan=2)
    return q1, q2


@pytest.mark.parametrize("length", [1, 2, 3])
def test_small_model_chain_scaling_tplus(benchmark, length):
    q1, q2 = _chain_pair(length)
    expected_ccqs = {1: 2, 2: 5, 3: 15}[length]  # Bell(existentials)
    assert len(list(small_model_tests(q1))) == expected_ccqs
    result = benchmark(small_model_contained, q1, q2, TPLUS)
    # duplicated edges double the min-plus cost: not contained
    assert result is False


@pytest.mark.parametrize("length", [1, 2, 3])
def test_small_model_chain_scaling_tminus(benchmark, length):
    q1, q2 = _chain_pair(length)
    result = benchmark(small_model_contained, q1, q2, TMINUS)
    # duplicated edges only increase the max-plus value: contained
    assert result is True


def test_small_model_free_variable_targets(benchmark):
    """Free variables multiply the test tuples (|vars|^arity)."""
    q1 = parse_cq("Q(x) :- R(x, y), R(y, z)")
    q2 = parse_cq("Q(x) :- R(x, y), R(y, z), R(y, w)")
    result = benchmark(small_model_contained, q1, q2, TMINUS)
    assert result is True  # extra branch can only raise the max
