"""Table 1, CQ column: one benchmark per decidable class.

Each benchmark runs its class's decision procedure over the curated +
random CQ workload, asserting the expected characterization shape:

* Chom   (B):        containment ⟺ plain homomorphism   (Thm. 3.3)
* Chcov  (Lin[X]):   containment ⟺ homomorphic covering (Thm. 4.3)
* Cin    (Sorp[X]):  containment ⟺ injective hom        (Thm. 4.9)
* Csur   (Why[X]):   containment ⟺ surjective hom       (Thm. 4.14)
* Cbi    (N[X]):     containment ⟺ bijective hom        (Thm. 4.10)
* T+/T−: small-model procedure                          (Thm. 4.17)

Timing reproduces the complexity column's *shape*: every procedure is
an NP-style search that stays fast on these workloads.
"""

from __future__ import annotations

import pytest

from repro.api import ContainmentEngine
from repro.homomorphisms import HomKind, covers, has_homomorphism
from repro.semirings import B, LIN, NX, SORP, TMINUS, TPLUS, WHY

from conftest import curated_cq_pairs, random_cq_pairs

WORKLOAD = curated_cq_pairs() + random_cq_pairs(30)


def _run(semiring):
    # A fresh engine per round keeps the timing honest (no carry-over
    # verdict cache); the facade is still the code path users take.
    engine = ContainmentEngine()
    return [engine.decide(q1, q2, semiring).result
            for q1, q2 in WORKLOAD]


def test_chom_homomorphism(benchmark):
    results = benchmark(_run, B)
    expected = [has_homomorphism(q2, q1, HomKind.PLAIN)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_chcov_covering(benchmark):
    results = benchmark(_run, LIN)
    expected = [
        has_homomorphism(q2, q1, HomKind.PLAIN) and covers(q2, q1)
        for q1, q2 in WORKLOAD
    ]
    assert results == expected


def test_cin_injective(benchmark):
    results = benchmark(_run, SORP)
    expected = [has_homomorphism(q2, q1, HomKind.INJECTIVE)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_csur_surjective(benchmark):
    results = benchmark(_run, WHY)
    expected = [has_homomorphism(q2, q1, HomKind.SURJECTIVE)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_cbi_bijective(benchmark):
    results = benchmark(_run, NX)
    expected = [has_homomorphism(q2, q1, HomKind.BIJECTIVE)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_tropical_small_model(benchmark):
    results = benchmark(_run, TPLUS)
    # The small model refines the Sin bounds: between injective
    # (sufficient) and plain hom (necessary).
    for (q1, q2), result in zip(WORKLOAD, results):
        assert result is not None
        if has_homomorphism(q2, q1, HomKind.INJECTIVE):
            assert result is True
        if not has_homomorphism(q2, q1, HomKind.PLAIN):
            assert result is False
    # Ex. 4.6 shape: the first curated pair holds over T+ but not Cin.
    assert results[0] is True


def test_schedule_small_model(benchmark):
    results = benchmark(_run, TMINUS)
    for (q1, q2), result in zip(WORKLOAD, results):
        assert result is not None
        if has_homomorphism(q2, q1, HomKind.SURJECTIVE):
            assert result is True
        if not has_homomorphism(q2, q1, HomKind.PLAIN):
            assert result is False
