"""Table 1, UCQ column: one benchmark per decidable class.

* Chom   (B):         local hom check              (Thm. 5.2,  NP-c)
* C1in   (Sorp[X]):   local injective check        (Thm. 5.6,  NP-c)
* C1hcov (Lin[X]):    union covering ⇉1            (Thm. 5.24, NP-c)
* C2hcov (Lin×N₂):    ⟨⟩⇉2⟨⟩ on descriptions       (Thm. 5.24, Πp2)
* C1sur  (Why[X]):    local surjective ։1          (Cor. 5.18, NP-c)
* C∞sur  (Ssur[X]):   Hall matching ։∞             (Thm. 5.17, EXPTIME)
* C1bi   (B[X]):      local bijective →֒1           (Thm. 5.13, NP-c)
* Ckbi   (N₂[X]):     counting →֒k                  (Thm. 5.13, Πp2)
* C∞bi   (N[X]):      counting →֒∞                  (Prop. 5.9, coNP^#P)

The complexity column's shape shows up as the growing cost of the
description-based procedures relative to the local ones.
"""

from __future__ import annotations

import math

from repro.core import decide_ucq_containment
from repro.homomorphisms import (HomKind, bi_count_infty, bi_count_k,
                                 covering_2, covering_union,
                                 local_condition, sur_infty)
from repro.semirings import (B, BX, LIN, LIN_X_N2, N2X, NX, SORP, SSUR,
                             TPLUS, WHY)

from conftest import curated_ucq_pairs, random_ucq_pairs

WORKLOAD = curated_ucq_pairs() + random_ucq_pairs(20)


def _run(semiring):
    return [decide_ucq_containment(q1, q2, semiring).result
            for q1, q2 in WORKLOAD]


def _fastpath(q1, q2):
    return local_condition(q2, q1, HomKind.PLAIN)


def test_chom_local(benchmark):
    results = benchmark(_run, B)
    expected = [_fastpath(q1, q2) and local_condition(q2, q1, HomKind.PLAIN)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_c1in_local_injective(benchmark):
    results = benchmark(_run, SORP)
    expected = [
        _fastpath(q1, q2) and local_condition(q2, q1, HomKind.INJECTIVE)
        for q1, q2 in WORKLOAD
    ]
    assert results == expected


def test_c1hcov_union_covering(benchmark):
    results = benchmark(_run, LIN)
    expected = [_fastpath(q1, q2) and covering_union(q2, q1)
                for q1, q2 in WORKLOAD]
    assert results == expected
    # Ex. 5.20 (second curated pair) must hold via the union covering.
    assert results[1] is True


def test_c2hcov_description_covering(benchmark):
    results = benchmark(_run, LIN_X_N2)
    expected = [_fastpath(q1, q2) and covering_2(q2, q1)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_c1sur_local_surjective(benchmark):
    results = benchmark(_run, WHY)
    expected = [
        _fastpath(q1, q2) and local_condition(q2, q1, HomKind.SURJECTIVE)
        for q1, q2 in WORKLOAD
    ]
    assert results == expected


def test_cinf_sur_hall_matching(benchmark):
    results = benchmark(_run, SSUR)
    expected = [_fastpath(q1, q2) and sur_infty(q2, q1)
                for q1, q2 in WORKLOAD]
    assert results == expected
    # Ssur[X] needs the matching: duplicated member (4th pair) fails,
    # unlike Why's local check.
    assert results[3] is False


def test_c1bi_local_bijective(benchmark):
    results = benchmark(_run, BX)
    expected = [
        _fastpath(q1, q2) and local_condition(q2, q1, HomKind.BIJECTIVE)
        for q1, q2 in WORKLOAD
    ]
    assert results == expected


def test_ckbi_counting(benchmark):
    results = benchmark(_run, N2X)
    expected = [_fastpath(q1, q2) and bi_count_k(q2, q1, 2)
                for q1, q2 in WORKLOAD]
    assert results == expected


def test_cinf_bi_counting(benchmark):
    results = benchmark(_run, NX)
    expected = [_fastpath(q1, q2) and bi_count_infty(q2, q1)
                for q1, q2 in WORKLOAD]
    assert results == expected
    # Ex. 5.7 (third curated pair) holds exactly by the →֒∞ counting.
    assert results[2] is True


def test_tropical_ucq_small_model(benchmark):
    results = benchmark(_run, TPLUS)
    assert all(result is not None for result in results)
    # Ex. 5.4 (first curated pair) must hold although no local check does.
    assert results[0] is True
    assert not local_condition(WORKLOAD[0][1], WORKLOAD[0][0],
                               HomKind.INJECTIVE)
