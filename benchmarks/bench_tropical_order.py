"""The certificate-memoized tropical order layer: cold vs warm.

``T+``/``T−`` verdicts go through the small-model procedure
(Thm. 4.17), whose cost is almost entirely the LP-backed polynomial
order checks of Prop. 4.19.  Since the engine memoizes those decisions
as revalidated certificates keyed by canonical admissible pair — and
the snapshot layer persists them — a warmed run should never touch the
LP solver at all.  This benchmark pins the three claims of that layer
on the tropical slice of the Table-1 surface:

* **warm ≥ 10× cold** — restoring a structural snapshot (certificates
  included, verdicts excluded) makes the tropical slice at least an
  order of magnitude faster, with the mean warm verdict under ~1 ms;
* **byte-identical** — the warm run's verdict documents equal the cold
  run's exactly (``cached`` flags included), and the warm engine
  reports zero ``poly_calls`` (every order decision was a certificate
  recall, revalidated without an LP);
* **cross-validated** — every memoized dominance decision agrees with
  the bounded grid checker, and every certificate revalidates.

``REPRO_BENCH_SMOKE=1`` (the CI default) keeps the equality, stats and
cross-validation assertions but skips the machine-speed-sensitive
timing thresholds.
"""

from __future__ import annotations

import os
import time

from repro.api import ContainmentEngine
from repro.polynomials import certificate_valid, grid_violation
from repro.semirings import TMINUS, TPLUS
from repro.service import load_snapshot, save_snapshot

from conftest import curated_cq_pairs, curated_ucq_pairs

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The tropical slice: both orders plus Viterbi, which shares the
#: min-plus decisions (and therefore the certificate entries) of T+.
SEMIRINGS = ("T+", "T-", "V")


def tropical_workload() -> list[dict]:
    """Every curated CQ/UCQ pair under every tropical-order semiring."""
    pairs = [(str(q1), str(q2)) for q1, q2 in curated_cq_pairs()]
    pairs += [(q2, q1) for q1, q2 in list(pairs)]
    unions = [([str(cq) for cq in u1], [str(cq) for cq in u2])
              for u1, u2 in curated_ucq_pairs()]
    requests: list[dict] = []
    for semiring in SEMIRINGS:
        for q1, q2 in pairs:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
        for q1, q2 in unions:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
    for index, request in enumerate(requests):
        request["id"] = f"tropical-{index}"
    return requests


def timed(engine: ContainmentEngine, requests) -> tuple[list[dict], float]:
    start = time.perf_counter()
    documents = [doc.to_dict() for doc in engine.decide_many(requests)]
    return documents, time.perf_counter() - start


def test_warm_tropical_verdicts_are_certificate_recalls(tmp_path):
    requests = tropical_workload()
    snapshot = tmp_path / "tropical.snap"

    cold_engine = ContainmentEngine()
    cold_docs, cold_seconds = timed(cold_engine, requests)
    assert cold_engine.stats.poly_calls > 0, \
        "the tropical slice must exercise the poly_leq layer"
    # The layer is visible in cache_stats(), ratios zero-division-safe.
    report = cold_engine.cache_stats()["layers"]["poly_orders"]
    assert report["entries"] > 0 and report["calls"] > 0
    assert report["rejected"] == 0
    save_snapshot(cold_engine, snapshot, include_verdicts=False)

    warm_engine = ContainmentEngine()
    load_snapshot(warm_engine, snapshot)
    warm_docs, warm_seconds = timed(warm_engine, requests)

    assert warm_docs == cold_docs, \
        "warm tropical verdicts must be byte-identical to the cold run"
    assert warm_engine.stats.poly_calls == 0, (
        "a warmed run must decide every tropical order from certificates, "
        f"ran {warm_engine.stats.poly_calls} LPs")
    assert warm_engine.stats.poly_hits > 0
    assert warm_engine.stats.poly_rejected == 0
    warm_report = warm_engine.cache_stats()["layers"]["poly_orders"]
    assert warm_report["hit_ratio"] == 1.0

    per_verdict_ms = warm_seconds / len(requests) * 1e3
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    print(f"\n  {len(requests)} tropical decisions: cold "
          f"{cold_seconds * 1e3:8.1f} ms, warm {warm_seconds * 1e3:8.1f} ms "
          f"({speedup:.1f}x, {per_verdict_ms:.3f} ms/verdict warm)")
    if not SMOKE:
        assert speedup >= 10.0, (
            f"certificate recalls must make the tropical slice >= 10x "
            f"faster, got {speedup:.2f}x")
        assert per_verdict_ms < 1.0, (
            f"a warm tropical verdict must stay under ~1 ms, got "
            f"{per_verdict_ms:.3f} ms")


def test_memoized_decisions_match_the_grid_cross_validator(tmp_path):
    """Every certificate in the snapshot revalidates and agrees with the
    bounded grid checker (sound refutation: a dominance claim the grid
    can falsify would be a bug in either the LP or the memo layer)."""
    requests = tropical_workload()
    engine = ContainmentEngine()
    engine.decide_many(requests)
    snapshot = tmp_path / "tropical.snap"
    save_snapshot(engine, snapshot, include_verdicts=False)

    restored = ContainmentEngine()
    load_snapshot(restored, snapshot)
    entries = restored.export_caches()["poly_orders"]
    assert entries, "the tropical slice must have produced certificates"
    checked = 0
    for (kind, p1, p2), certificate in entries:
        assert certificate_valid(certificate, kind, p1, p2), \
            (kind, p1, p2)
        if certificate.holds:
            semiring = TPLUS if kind == "min-plus" else TMINUS
            assert grid_violation(p1, p2, semiring, bound=2) is None, \
                (kind, p1, p2)
        checked += 1
    print(f"\n  {checked} certificates revalidated against the grid")
