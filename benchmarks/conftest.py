"""Shared workload builders for the benchmark harness.

Every benchmark doubles as an integration check: it asserts the
expected verdicts (the *shape* of Table 1 — who wins, which condition
fires) and then times the decision procedure.
"""

from __future__ import annotations

import random

from repro.queries import CQ, UCQ, Atom, Var, parse_cq, parse_ucq
from repro.queries.generators import random_cq, random_ucq


def curated_cq_pairs() -> list[tuple[CQ, CQ]]:
    """The paper-derived CQ pairs exercising every homomorphism kind."""
    pairs = [
        ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"),   # Ex. 4.6
        ("Q() :- R(u, v), R(u, v)", "Q() :- R(u, v), R(u, w)"),
        ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)"),
        ("Q() :- R(u, v), S(u)", "Q() :- R(u, v)"),
        ("Q() :- R(u, u)", "Q() :- R(u, v)"),
        ("Q() :- R(u, v)", "Q() :- R(u, u)"),
        ("Q() :- E(x, y), E(y, z)", "Q() :- E(u, v), E(v, u)"),
        ("Q() :- E(u, v), E(v, u)", "Q() :- E(x, y), E(y, z)"),
        ("Q() :- R(x, y), R(y, z), R(x, z)", "Q() :- R(a, b), R(b, c)"),
        ("Q() :- R(x, y), R(x, y), S(x)", "Q() :- R(a, b), S(a)"),
    ]
    return [(parse_cq(a), parse_cq(b)) for a, b in pairs]


def random_cq_pairs(count: int, seed: int = 2024,
                    max_atoms: int = 3) -> list[tuple[CQ, CQ]]:
    rng = random.Random(seed)
    return [
        (random_cq(rng, max_atoms=max_atoms, max_vars=3),
         random_cq(rng, max_atoms=max_atoms, max_vars=3))
        for _ in range(count)
    ]


def curated_ucq_pairs() -> list[tuple[UCQ, UCQ]]:
    """UCQ pairs from the paper's Sec. 5 examples."""
    raw = [
        (["Q() :- R(v), S(v)"],
         ["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"]),            # Ex. 5.4
        (["Q() :- R(v), S(v)"],
         ["Q() :- R(v)", "Q() :- S(v)"]),                        # Ex. 5.20
        (["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"],
         ["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"]),  # Ex. 5.7
        (["Q() :- R(u, u)", "Q() :- R(u, u)"], ["Q() :- R(u, u)"]),
        (["Q() :- R(u, u)"], ["Q() :- R(u, u)", "Q() :- R(u, u)"]),
    ]
    return [(parse_ucq(a), parse_ucq(b)) for a, b in raw]


def random_ucq_pairs(count: int, seed: int = 4048) -> list[tuple[UCQ, UCQ]]:
    rng = random.Random(seed)
    return [
        (random_ucq(rng, max_members=2, max_atoms=2, max_vars=2),
         random_ucq(rng, max_members=2, max_atoms=2, max_vars=2))
        for _ in range(count)
    ]


def chain_query(length: int, fan: int = 1) -> CQ:
    """A length-``length`` relational chain with optional parallel
    duplicated atoms — the classic hard instance for hom search."""
    atoms = []
    for i in range(length):
        for _ in range(fan):
            atoms.append(Atom("E", (Var(f"v{i}"), Var(f"v{i + 1}"))))
    return CQ((), atoms)


def clique_query(size: int) -> CQ:
    """All directed edges among ``size`` variables."""
    atoms = [
        Atom("E", (Var(f"v{i}"), Var(f"v{j}")))
        for i in range(size) for j in range(size) if i != j
    ]
    return CQ((), atoms)
