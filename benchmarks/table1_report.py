"""Regenerate Table 1 of the paper from the implementation.

Run with::

    python benchmarks/table1_report.py

For every row of the paper's summary table this script reports:

* the class axioms (read off the representative's properties),
* the homomorphism-type condition used by the decision procedure,
* agreement statistics of that procedure against the brute-force
  semantic oracle on a randomized workload (soundness/completeness),
* and the measured median decision time.

The complexity column cannot be measured asymptotically on a laptop;
the timing column reproduces its *shape* (local NP checks are fastest,
description-based counting slower, matching/small-model slowest).
"""

from __future__ import annotations

import random
import statistics
import sys
import time

from repro.core import decide_cq_containment, decide_ucq_containment
from repro.oracle import find_counterexample
from repro.queries.generators import random_cq, random_ucq
from repro.semirings import (B, BX, LIN, LIN_X_N2, N2X, NX, SORP, SSUR,
                             WHY, TPLUS)

CQ_ROWS = [
    ("Chom", "⊗-idem + 1-annih", "Q2 → Q1 (usual)", "NP-c", B),
    ("Chcov", "⊗-idempotence", "Q2 ⇉ Q1 (hom. cov.)", "NP-c", LIN),
    ("Cin", "1-annihilation", "Q2 →֒ Q1 (injective)", "NP-c", SORP),
    ("Csur", "⊗-semi-idem.", "Q2 ։ Q1 (surjective)", "NP-c", WHY),
    ("Cbi", "—", "Q2 →֒→ Q1 (bijective)", "NP-c", NX),
    ("S¹+order", "⊕-idem + poly ≼", "small model (4.17)", "PSPACE", TPLUS),
]

UCQ_ROWS = [
    ("Chom", "—", "Q2 → Q1 locally", "NP-c", B),
    ("C1in", "—", "Q2 →֒ Q1 locally", "NP-c", SORP),
    ("C1hcov", "offset 1", "Q2 ⇉1 Q1", "NP-c", LIN),
    ("C2hcov", "offset 2", "⟨Q2⟩ ⇉2 ⟨Q1⟩", "Πp2", LIN_X_N2),
    ("C1sur", "offset 1", "Q2 ։1 Q1", "NP-c", WHY),
    ("C∞sur", "—", "⟨Q2⟩ ։∞ ⟨Q1⟩", "EXPTIME", SSUR),
    ("C1bi", "offset 1", "Q2 →֒1 Q1", "NP-c", BX),
    ("Ck>1bi", "offset k", "⟨Q2⟩ →֒k ⟨Q1⟩", "Πp2", N2X),
    ("C∞bi", "—", "⟨Q2⟩ →֒∞ ⟨Q1⟩", "coNP^#P", NX),
]


def _validate(semiring, problems, decide):
    """Return (decided, sound, witnessed, median_ms)."""
    decided = sound = witnessed = falses = 0
    timings = []
    for q1, q2 in problems:
        start = time.perf_counter()
        verdict = decide(q1, q2, semiring)
        timings.append((time.perf_counter() - start) * 1000)
        if verdict.result is None:
            continue
        decided += 1
        witness = find_counterexample(q1, q2, semiring,
                                      rng=random.Random(3), budget=400,
                                      random_rounds=5)
        if verdict.result:
            sound += witness is None
        else:
            falses += 1
            witnessed += witness is not None
    return decided, sound, witnessed, falses, statistics.median(timings)


def main() -> None:
    rng = random.Random(20120521)  # PODS'12 conference date
    cq_problems = [
        (random_cq(rng, max_atoms=3, max_vars=3),
         random_cq(rng, max_atoms=3, max_vars=3))
        for _ in range(25)
    ]
    ucq_problems = [
        (random_ucq(rng, max_members=2, max_atoms=2, max_vars=2),
         random_ucq(rng, max_members=2, max_atoms=2, max_vars=2))
        for _ in range(15)
    ]

    print("Reproduced Table 1 — K-containment of CQs")
    print(f"{'class':9s} {'key axioms':18s} {'condition':22s} "
          f"{'paper':8s} {'rep.':11s} {'oracle agreement':19s} {'median':>9s}")
    for name, axioms, condition, complexity, semiring in CQ_ROWS:
        decided, sound, witnessed, falses, ms = _validate(
            semiring, cq_problems, decide_cq_containment)
        trues = decided - falses
        agreement = (f"{sound}/{trues}✓ {witnessed}/{falses}✗")
        print(f"{name:9s} {axioms:18s} {condition:22s} {complexity:8s} "
              f"{semiring.name:11s} {agreement:19s} {ms:8.2f}ms")

    print()
    print("Reproduced Table 1 — K-containment of UCQs")
    print(f"{'class':9s} {'extra axiom':18s} {'condition':22s} "
          f"{'paper':8s} {'rep.':11s} {'oracle agreement':19s} {'median':>9s}")
    for name, axioms, condition, complexity, semiring in UCQ_ROWS:
        decided, sound, witnessed, falses, ms = _validate(
            semiring, ucq_problems, decide_ucq_containment)
        trues = decided - falses
        agreement = (f"{sound}/{trues}✓ {witnessed}/{falses}✗")
        print(f"{name:9s} {axioms:18s} {condition:22s} {complexity:8s} "
              f"{semiring.name:11s} {agreement:19s} {ms:8.2f}ms")

    print()
    print("✓ = procedure said contained, oracle found no counterexample")
    print("✗ = procedure refuted, oracle exhibited a witnessing instance")


if __name__ == "__main__":
    sys.exit(main())
