"""A provenance-aware rewrite checker for relational algebra plans.

Run with::

    python examples/algebra_rewriter.py

An optimizer proposes algebraic rewrites; whether they are *safe*
depends on what the annotations mean.  This example builds plans with
the positive relational algebra (`repro.algebra`), compiles them to
UCQs, and certifies three classic rewrites under five annotation
semantics — reproducing the paper's motivation end-to-end: the same
rewrite is safe for SELECT DISTINCT (set semantics), safe for lineage,
and wrong for bag semantics, provenance polynomials, or costs.
"""

from repro import B, LIN, N, NX, TPLUS, Instance, check_rewrite, table
from repro.queries import evaluate_all

SEMIRINGS = (B, LIN, TPLUS, NX, N)


def certify(name: str, original, rewritten) -> None:
    print(f"  rewrite: {name}")
    for semiring in SEMIRINGS:
        check = check_rewrite(original, rewritten, semiring)
        print(f"    {semiring.name:7s} {check.summary()}")
    print()


def main() -> None:
    orders = table("Orders", "cust", "item")
    items = table("Items", "item", "cat")

    print("== certifying optimizer rewrites across semantics ==\n")

    # 1. self-join elimination
    doubled = orders.join(orders.rename({"item": "item2"})).project("cust")
    single = orders.project("cust")
    certify("drop self-join branch", doubled, single)

    # 2. push projection through join (no column lost): always safe
    plan_a = orders.join(items).project("cust", "cat")
    plan_b = orders.join(items.project("item", "cat")).project("cust", "cat")
    certify("push projection", plan_a, plan_b)

    # 3. union deduplication
    once = orders.project("cust")
    twice = once.union(once)
    certify("deduplicate union branches", twice, once)

    # --- why it matters: run the plans over an annotated database -------
    print("== the plans differ on real annotated data ==")
    bag = Instance(N, {
        "Orders": {("ada", "chair"): 2, ("ada", "desk"): 1},
        "Items": {("chair", "furniture"): 1, ("desk", "furniture"): 1},
    })
    print("  bag counts, original self-join:",
          doubled.evaluate(bag))
    print("  bag counts, rewritten:        ",
          single.evaluate(bag))
    print("  -> (2+1)² = 9 ≠ 3: the rewrite corrupts SQL COUNT results,")
    print("     exactly as the N[X]/N verdicts above predict.")

    print()
    print("== compiled UCQs behind the certificates ==")
    print("  original:", doubled.to_ucq())
    print("  rewrite: ", single.to_ucq())


if __name__ == "__main__":
    main()
