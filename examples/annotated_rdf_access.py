"""Clearance-aware querying and Sin-semiring optimization.

Run with::

    python examples/annotated_rdf_access.py

Sec. 4.2 of the paper notes that the 1-annihilating semirings (``Sin``)
are exactly the annotation domains compatible with RDFS inference, and
that query optimization over them needs the injective-homomorphism
machinery.  This example uses two such domains:

* the clearance chain (a ``Chom`` lattice) for an access-controlled
  personnel directory, and
* the tropical/Łukasiewicz-style members of ``Sin`` where only the
  injective condition (Prop. 4.5) or the small model decides.
"""

from repro import (ACCESS, LUKASIEWICZ, SORP, TPLUS, HomKind, Instance,
                   decide_cq_containment, evaluate_all, has_homomorphism,
                   parse_cq)
from repro.data import personnel_db
from repro.semirings.access import LEVELS


def main() -> None:
    db = personnel_db()

    print("== who can see which (person, project) pairs? ==")
    q = parse_cq("Q(n, p) :- Employee(n, d), Project(d, p)")
    for answer, level in sorted(evaluate_all(q, db).items()):
        print(f"  {answer!s:30s} clearance needed: {LEVELS[level]}")

    print()
    print("== clearance semiring is Chom: set-style optimization is safe ==")
    wide = parse_cq("Q(n) :- Employee(n, d), Employee(n, e)")
    narrow = parse_cq("Q(n) :- Employee(n, d)")
    verdict = decide_cq_containment(wide, narrow, ACCESS)
    print(f"  self-join collapse valid over clearances: {verdict.result} "
          f"[{verdict.method}]")

    print()
    print("== Sin members beyond Chom: injectivity is the sufficient rule ==")
    q1 = parse_cq("Q(n) :- Employee(n, d), Project(d, p)")
    q2 = parse_cq("Q(n) :- Employee(n, d)")
    print(f"  injective hom q2 →֒ q1: "
          f"{has_homomorphism(q2, q1, HomKind.INJECTIVE)}")
    for semiring in (SORP, TPLUS, LUKASIEWICZ):
        verdict = decide_cq_containment(q1, q2, semiring)
        answer = {True: "YES", False: "no", None: "undecided"}[verdict.result]
        print(f"  q1 ⊆ q2 over {semiring.name:8s}: {answer:10s} "
              f"[{verdict.method}]")
    print("  -> Sorp[X] (free Sin) and T+ decide; Łukasiewicz has no")
    print("     characterization — the verdict honestly reports the")
    print("     injective *sufficient* bound only when it fires.")

    print()
    print("== where the Sin members disagree (Ex. 4.6 transfers) ==")
    q1 = parse_cq("Q() :- Employee(u, v), Employee(u, w)")
    q2 = parse_cq("Q() :- Employee(u, v), Employee(u, v)")
    for semiring in (SORP, TPLUS):
        verdict = decide_cq_containment(q1, q2, semiring)
        print(f"  collapse-pair over {semiring.name:8s}: {verdict.result} "
              f"[{verdict.method}]")
    print("  -> same class Sin, different containment relations: the")
    print("     paper's point that Cin ≠ Sin (Thm. 4.9 vs Prop. 4.5).")


if __name__ == "__main__":
    main()
