"""Auditing SQL (bag-semantics) rewrite rules at the decidability frontier.

Run with::

    python examples/bag_semantics_audit.py

CQ containment under bag semantics is a long-standing open problem and
UCQ containment is undecidable (Ioannidis–Ramakrishnan), so no tool can
decide every case.  What the paper provides — and this library
implements — is the tight *bounds*: surjective homomorphisms and
``⟨Q2⟩ ։∞ ⟨Q1⟩`` are sufficient (Cor. 5.16), homomorphic covering and
``⟨Q2⟩ ⇉2 ⟨Q1⟩`` are necessary (Cor. 5.23).  A rewrite auditor built on
these bounds certifies what it can and stays honest about the gap.
"""

from repro import ContainmentEngine, N, UCQ, parse_cq
from repro.oracle import find_counterexample

# One engine for the whole audit session: the repeated checks against
# the fixed bag semiring share its classification and hom-search caches.
ENGINE = ContainmentEngine()


def audit(name: str, q1, q2) -> None:
    document = ENGINE.decide(q1, q2, "bag")   # registry alias for N
    answer = {True: "SAFE", False: "WRONG",
              None: "UNPROVEN"}[document.result]
    print(f"  {name:34s} -> {answer:8s} [{document.method}]")
    if document.result is False:
        witness = find_counterexample(q1, q2, N)
        if witness is not None:
            print(f"      witness: {witness.instance!r}")
            print(f"      LHS count {witness.lhs} > RHS count {witness.rhs}")


def main() -> None:
    print("== auditing candidate SQL rewrites (is NEW ⊇ OLD, with ==")
    print("== multiplicities, on every database?)                ==")

    # 1. Padding with a surjective image: certified safe.
    audit("drop duplicate join branch",
          parse_cq("Q(x) :- R(x, y)"),
          parse_cq("Q(x) :- R(x, y), R(x, y)"))

    # 2. Removing a needed atom: certifiably wrong (covering fails).
    audit("drop the S-filter",
          parse_cq("Q(x) :- R(x, y), S(x)"),
          parse_cq("Q(x) :- R(x, y)") )

    # 3. The classical collapse pair: inside the open gap.
    audit("merge join branches",
          parse_cq("Q() :- R(u, v), R(u, w)"),
          parse_cq("Q() :- R(u, v), R(u, v)"))

    print()
    print("== union-level audits (Sec. 5) ==")
    # 4. Cor. 5.16: a Hall matching of surjective CCQ images certifies.
    loop = parse_cq("Q() :- R(u, u)")
    audit("duplicate a union branch",
          UCQ((loop,)), UCQ((loop, loop)))

    # 5. Cor. 5.23: ⇉2 failure refutes at the union level.
    audit("drop a union duplicate",
          UCQ((loop, loop)), UCQ((loop,)))

    # 6. Honest undecided verdict, with both bounds reported.  The
    #    document form is JSON-ready for audit logs.
    document = ENGINE.decide(["Q() :- R(u, v), R(u, w)"],
                             ["Q() :- R(x, y), R(x, y)"], "N")
    print(f"  merge branches (union level)       -> UNPROVEN")
    print(f"      necessary conditions hold: {document.necessary}")
    print(f"      sufficient conditions hold: {document.sufficient}")
    print("      — exactly the open-problem territory of the paper.")


if __name__ == "__main__":
    main()
