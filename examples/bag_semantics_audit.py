"""Auditing SQL (bag-semantics) rewrite rules at the decidability frontier.

Run with::

    python examples/bag_semantics_audit.py

CQ containment under bag semantics is a long-standing open problem and
UCQ containment is undecidable (Ioannidis–Ramakrishnan), so no tool can
decide every case.  What the paper provides — and this library
implements — is the tight *bounds*: surjective homomorphisms and
``⟨Q2⟩ ։∞ ⟨Q1⟩`` are sufficient (Cor. 5.16), homomorphic covering and
``⟨Q2⟩ ⇉2 ⟨Q1⟩`` are necessary (Cor. 5.23).  A rewrite auditor built on
these bounds certifies what it can and stays honest about the gap.
"""

from repro import N, UCQ, decide_cq_containment, decide_ucq_containment, \
    parse_cq, parse_ucq
from repro.oracle import find_counterexample


def audit(name: str, q1, q2) -> None:
    decide = (decide_cq_containment
              if not isinstance(q1, UCQ) else decide_ucq_containment)
    verdict = decide(q1, q2, N)
    answer = {True: "SAFE", False: "WRONG", None: "UNPROVEN"}[verdict.result]
    print(f"  {name:34s} -> {answer:8s} [{verdict.method}]")
    if verdict.result is False:
        witness = find_counterexample(q1, q2, N)
        if witness is not None:
            print(f"      witness: {witness.instance!r}")
            print(f"      LHS count {witness.lhs} > RHS count {witness.rhs}")


def main() -> None:
    print("== auditing candidate SQL rewrites (is NEW ⊇ OLD, with ==")
    print("== multiplicities, on every database?)                ==")

    # 1. Padding with a surjective image: certified safe.
    audit("drop duplicate join branch",
          parse_cq("Q(x) :- R(x, y)"),
          parse_cq("Q(x) :- R(x, y), R(x, y)"))

    # 2. Removing a needed atom: certifiably wrong (covering fails).
    audit("drop the S-filter",
          parse_cq("Q(x) :- R(x, y), S(x)"),
          parse_cq("Q(x) :- R(x, y)") )

    # 3. The classical collapse pair: inside the open gap.
    audit("merge join branches",
          parse_cq("Q() :- R(u, v), R(u, w)"),
          parse_cq("Q() :- R(u, v), R(u, v)"))

    print()
    print("== union-level audits (Sec. 5) ==")
    # 4. Cor. 5.16: a Hall matching of surjective CCQ images certifies.
    loop = parse_cq("Q() :- R(u, u)")
    audit("duplicate a union branch",
          UCQ((loop,)), UCQ((loop, loop)))

    # 5. Cor. 5.23: ⇉2 failure refutes at the union level.
    audit("drop a union duplicate",
          UCQ((loop, loop)), UCQ((loop,)))

    # 6. Honest undecided verdict, with both bounds reported.
    verdict = decide_ucq_containment(
        parse_ucq(["Q() :- R(u, v), R(u, w)"]),
        parse_ucq(["Q() :- R(x, y), R(x, y)"]), N)
    print(f"  merge branches (union level)       -> UNPROVEN")
    print(f"      necessary conditions hold: {verdict.necessary}")
    print(f"      sufficient conditions hold: {verdict.sufficient}")
    print("      — exactly the open-problem territory of the paper.")


if __name__ == "__main__":
    main()
