"""Provenance-aware query optimization on a film database.

Run with::

    python examples/provenance_optimization.py

Scenario: a curated film database annotates every fact with a
provenance token (``N[X]``).  The optimizer wants to rewrite queries —
but rewritings that are valid under set semantics destroy provenance.
This example walks the whole spectrum of Table 1: minimization under
``B`` vs ``Lin[X]`` vs ``Why[X]`` vs ``N[X]``, UCQ redundancy at
different offsets (Ex. 5.7 of the paper), and shows the provenance
polynomials before and after.
"""

from repro import (B, BX, LIN, NX, WHY, UCQ, decide_ucq_containment,
                   evaluate_all, parse_cq, parse_ucq)
from repro.data import movie_provenance_db
from repro.optimize import eliminate_redundant_members, minimize_cq


def main() -> None:
    db = movie_provenance_db()

    # Directors whose film has *some* genre, joined twice by a sloppy
    # query generator:
    sloppy = parse_cq(
        "Q(d) :- Directed(d, f), Genre(f, g), Genre(f, h)")

    print("== minimization depends on the annotation semiring ==")
    for semiring in (B, LIN, WHY, NX):
        result = minimize_cq(sloppy, semiring)
        print(f"  over {semiring.name:7s}: {len(result.query.atoms)} atoms "
              f"(removed {result.removed})")

    print()
    print("== and it matters: the provenance of the answers ==")
    minimized_b = minimize_cq(sloppy, B).query
    for name, query in (("original", sloppy), ("B-minimized", minimized_b)):
        answers = evaluate_all(query, db)
        polynomial = answers.get(("kurosawa",))
        print(f"  {name:12s} provenance of kurosawa: {polynomial}")
    print("  -> the set-semantics rewrite loses the squared genre factor:")
    print("     safe over B, WRONG over N[X] (Thm. 4.10: only bijective")
    print("     homomorphisms preserve provenance).")

    # --- UCQ redundancy and offsets (Ex. 5.7) ---------------------------
    print()
    print("== union redundancy at different offsets (Ex. 5.7) ==")
    union = parse_ucq([
        "Q() :- Directed(d, f), Directed(d, d2)",
        "Q() :- Directed(d, f), Directed(d, d2)",
    ])
    for semiring in (B, BX, NX):
        result = eliminate_redundant_members(union, semiring)
        print(f"  over {semiring.name:5s}: {len(result.query)} member(s) "
              f"left of {len(union)}")
    print("  -> ⊕-idempotent semirings drop the duplicate, N[X] must not")
    print("     (Prop. 5.10 counts isomorphic CCQs with multiplicity).")

    # --- the paper's Ex. 5.7 verbatim ------------------------------------
    print()
    print("== Ex. 5.7: a union containment no pairwise check can see ==")
    q1 = parse_ucq(["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"])
    q2 = parse_ucq(["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"])
    verdict = decide_ucq_containment(q1, q2, NX)
    print(f"  Q1 ⊆N[X] Q2: {verdict.result} via {verdict.method}")
    q1_plus = q1.with_member(parse_cq("Q() :- R(u, u), R(u, u)"))
    verdict = decide_ucq_containment(q1_plus, q2, NX)
    print(f"  after adding a third loop copy: {verdict.result} "
          f"(the counting breaks, Prop. 5.9)")


if __name__ == "__main__":
    main()
