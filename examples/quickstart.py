"""Quickstart: annotated databases and semiring-aware containment.

Run with::

    python examples/quickstart.py

Builds one small database, evaluates the same query under four
annotation semirings, and shows the paper's headline phenomenon: the
same pair of queries is equivalent under set semantics but not under
provenance — and the library knows which decision procedure applies to
each semiring (Table 1 of Kostylev–Reutter–Salamon, PODS 2012).
"""

from repro import (B, LIN, N, NX, TPLUS, ContainmentEngine, Instance,
                   evaluate, parse_cq)


def main() -> None:
    # A tiny route database: R(src, dst).
    facts = {
        "R": {
            ("a", "b"): 2,   # two parallel roads a → b
            ("a", "c"): 1,
            ("c", "b"): 3,
        },
    }

    two_hop = parse_cq("Q(x, z) :- R(x, y), R(y, z)")

    print("== one query, four annotation semantics ==")
    bag = Instance(N, facts)
    print("bag multiplicity of (a,b) two-hop paths:",
          evaluate(two_hop, bag, ("a", "b")))

    boolean = bag.map_annotations(B, lambda count: count > 0)
    print("set semantics (does a two-hop path exist?):",
          evaluate(two_hop, boolean, ("a", "b")))

    costs = bag.map_annotations(TPLUS, lambda count: 4 - count)
    print("tropical cheapest two-hop cost:",
          evaluate(two_hop, costs, ("a", "b")))

    tagged = Instance(NX, {
        "R": {row: NX.var(f"t{i}")
              for i, row in enumerate(sorted(facts["R"]), start=1)},
    })
    print("provenance polynomial:",
          evaluate(two_hop, tagged, ("a", "b")))

    # --- containment is semiring-sensitive ------------------------------
    # One ContainmentEngine is the canonical entry point: it interns the
    # parsed queries, classifies each semiring once, and caches the
    # homomorphism searches shared between the five checks below.
    engine = ContainmentEngine()
    print()
    print("== containment depends on the semiring ==")
    q1 = "Q() :- R(u, v), R(u, w)"   # Ex. 4.6 of the paper
    q2 = "Q() :- R(u, v), R(u, v)"
    for semiring in (B, LIN, TPLUS, NX, N):
        document = engine.decide(q1, q2, semiring)
        answer = {True: "YES", False: "no",
                  None: "undecided"}[document.result]
        print(f"  Q1 ⊆ Q2 over {semiring.name:6s} -> {answer:9s} "
              f"[{document.method}]")

    # --- the classification drives the dispatch -------------------------
    print()
    print("== where each semiring sits in Table 1 ==")
    for semiring in (B, LIN, TPLUS, NX, N):
        cls = engine.classification(semiring)
        print(f"  {semiring.name:6s} CQ: {cls.cq_exact_class() or '-':6s} "
              f"UCQ: {cls.ucq_exact_class() or '-':6s} "
              f"small-model: {cls.small_model}")
    stats = engine.stats
    print(f"  (engine cache: {stats.hom_hits} hom-search hits, "
          f"{stats.classify_hits} classification recalls)")


if __name__ == "__main__":
    main()
