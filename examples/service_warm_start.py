"""Warm-starting batch runs — and sharding them across workers.

The scenario: a rewrite-auditing pipeline re-checks the same family of
containment questions every few minutes (new candidate rewritings, same
schema and semirings).  Each run is a short-lived process, so without
help it re-pays for parsing, classification, homomorphism searches and
complete descriptions every single time.

This walkthrough shows the two service-layer answers:

1. a **snapshot** (`repro.service.snapshot`) persists the engine's
   cache layers between processes, so run N+1 starts where run N ended
   — including the tropical `poly_leq` *certificates*, so even the
   LP-backed `T+`/`T-` verdicts go warm (the report prints their
   before/after per-verdict cost separately);
2. a **worker pool** (`repro.service.pool`) shards one run's requests
   across engine processes while keeping the output stream identical
   to the sequential one.

Run it::

    PYTHONPATH=src python examples/service_warm_start.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.api import ContainmentEngine
from repro.service import WorkerPool, load_snapshot, save_snapshot


def clique(size: int, relation: str) -> str:
    """All directed edges among ``size`` variables, as Datalog text."""
    atoms = ", ".join(f"{relation}(v{i}, v{j})"
                      for i in range(size) for j in range(size) if i != j)
    return f"Q() :- {atoms}"


def audit_workload() -> list[dict]:
    """A miniature audit: CQ and UCQ checks over a semiring spread,
    plus a bag-semantics sweep over dense patterns — the kind of check
    whose cost is almost entirely homomorphism searches and complete
    descriptions, i.e. exactly what a snapshot carries over."""
    pairs = [
        ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"),
        ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)"),
        ("Q() :- E(x, y), E(y, z)", "Q() :- E(u, v), E(v, u)"),
        ("Q() :- R(x, y), R(y, z), R(x, z)", "Q() :- R(a, b), R(b, c)"),
    ]
    unions = [
        (["Q() :- R(v), S(v)"], ["Q() :- R(v)", "Q() :- S(v)"]),
        (["Q() :- R(v), S(v)"],
         ["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"]),
    ]
    requests = []
    for semiring in ("B", "N", "Lin[X]", "Why[X]", "N[X]"):
        for q1, q2 in pairs:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
        for q1, q2 in unions:
            requests.append({"semiring": semiring, "q1": q1, "q2": q2})
    for index in range(8):
        requests.append({"semiring": "N",
                         "q1": clique(4, f"Rel{index}"),
                         "q2": clique(3, f"Rel{index}")})
    for index, request in enumerate(requests):
        request["id"] = f"audit-{index}"
    return requests


def tropical_workload() -> list[dict]:
    """The tropical slice: `T+`/`T-` verdicts run the small-model
    procedure, whose cost is the LP-backed polynomial order checks —
    historically the one part of the decision surface no cache layer
    covered.  The engine now memoizes those decisions as revalidated
    certificates, and the snapshot carries them."""
    pairs = [
        ("Q() :- R(u, v), R(u, w)", "Q() :- R(u, v), R(u, v)"),
        ("Q() :- R(u, v)", "Q() :- R(u, v), R(u, v)"),
        ("Q() :- R(u, u)", "Q() :- R(u, v)"),
        ("Q() :- E(x, y), E(y, z)", "Q() :- E(u, v), E(v, u)"),
    ]
    requests = [{"semiring": semiring, "q1": q1, "q2": q2}
                for semiring in ("T+", "T-") for q1, q2 in pairs]
    for index, request in enumerate(requests):
        request["id"] = f"tropical-{index}"
    return requests


def timed_run(engine: ContainmentEngine, requests) -> tuple[list, float]:
    start = time.perf_counter()
    documents = [doc.to_dict() for doc in engine.decide_many(requests)]
    return documents, time.perf_counter() - start


def main() -> None:
    requests = audit_workload()
    tropical = tropical_workload()
    snapshot_path = os.path.join(tempfile.mkdtemp(prefix="repro-warm-"),
                                 "audit.snap")

    print(f"== run 1: cold engine ({len(requests)} decisions "
          f"+ {len(tropical)} tropical)")
    cold_engine = ContainmentEngine()
    cold_docs, cold_seconds = timed_run(cold_engine, requests)
    cold_tropical, cold_tropical_seconds = timed_run(cold_engine, tropical)
    info = cold_engine.cache_info()
    print(f"   {cold_seconds * 1e3:7.1f} ms — hom searches: "
          f"{info['hom_calls']}, descriptions: "
          f"{info['description_calls']}, parses: {info['parse_calls']}")
    print(f"   {cold_tropical_seconds * 1e3:7.1f} ms tropical — "
          f"{info['poly_calls']} LP-backed order decisions "
          f"({cold_tropical_seconds / len(tropical) * 1e3:.2f} ms/verdict)")

    # Persist the *structural* layers (homomorphisms, covered atoms,
    # descriptions, parse interning, classifications).  Leaving the
    # verdict layer out keeps run 2's output byte-identical to run 1's
    # — same documents, same `cached: false` — which is what the CLI's
    # `batch --snapshot` does by default.  Opt in to verdict snapshots
    # (`include_verdicts=True`) for a pure lookup service.
    layers = save_snapshot(cold_engine, snapshot_path,
                           include_verdicts=False)
    print(f"== snapshot written: {snapshot_path}")
    print(f"   layers: { {k: v for k, v in layers.items() if v} }")

    print("== run 2: fresh process, warm-started from the snapshot")
    warm_engine = ContainmentEngine()   # as if a new CLI invocation
    load_snapshot(warm_engine, snapshot_path)
    warm_docs, warm_seconds = timed_run(warm_engine, requests)
    warm_tropical, warm_tropical_seconds = timed_run(warm_engine, tropical)
    info = warm_engine.cache_info()
    print(f"   {warm_seconds * 1e3:7.1f} ms — hom searches: "
          f"{info['hom_calls']}, descriptions: "
          f"{info['description_calls']}, parses: {info['parse_calls']}")
    print(f"   {warm_tropical_seconds * 1e3:7.1f} ms tropical — "
          f"{info['poly_calls']} LPs run, {info['poly_hits']} certificate "
          f"recalls ({warm_tropical_seconds / len(tropical) * 1e3:.2f} "
          f"ms/verdict)")
    assert warm_docs == cold_docs, "warm run must reproduce the cold run"
    assert warm_tropical == cold_tropical, \
        "warm tropical verdicts must reproduce the cold ones"
    assert info["poly_calls"] == 0, \
        "a warmed run should decide every tropical order from certificates"
    print(f"   identical verdict stream, "
          f"{cold_seconds / max(warm_seconds, 1e-9):.1f}x faster "
          f"({cold_tropical_seconds / max(warm_tropical_seconds, 1e-9):.1f}x "
          f"on the tropical slice)")

    print("== run 3: the same workload across 2 worker processes")
    with WorkerPool(2, snapshot_path=snapshot_path) as pool:
        start = time.perf_counter()
        pooled_docs = [doc.to_dict() for doc in pool.decide_many(requests)]
        pooled_seconds = time.perf_counter() - start
        per_worker = [info["decisions"] for info in pool.stats()]
    assert pooled_docs == cold_docs, "sharded run must match too"
    print(f"   {pooled_seconds * 1e3:7.1f} ms — decisions per worker: "
          f"{per_worker} (deterministic sharding), identical output")

    print("== equivalent CLI invocations")
    print("   python -m repro batch --snapshot audit.snap "
          "--input requests.jsonl")
    print("   python -m repro batch --workers 4 --snapshot audit.snap "
          "--input requests.jsonl")
    print("   python -m repro serve --snapshot audit.snap "
          "--flush-every 200")


if __name__ == "__main__":
    main()
