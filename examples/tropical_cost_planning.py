"""Cheapest-itinerary planning over the tropical semiring ``T+``.

Run with::

    python examples/tropical_cost_planning.py

The tropical semiring has *no* homomorphism characterization of
containment (it sits in ``Sin`` but outside ``Nin`` — Ex. 4.6 of the
paper), so the library decides containment with the small-model
procedure of Thm. 4.17: compare CQ-admissible polynomials on the
canonical instances of the complete description.  This example shows
both the planning queries and the paper's exact worked examples.
"""

from repro import (TPLUS, canonical_instance, complete_description,
                   decide_cq_containment, decide_ucq_containment, evaluate,
                   evaluate_all, parse_cq, parse_ucq, NX)
from repro.data import travel_costs_db


def main() -> None:
    db = travel_costs_db()

    print("== cheapest itineraries (min-plus evaluation) ==")
    direct = parse_cq("Q(x, z) :- Flight(x, z)")
    one_stop = parse_cq("Q(x, z) :- Flight(x, y), Flight(y, z)")
    any_route = parse_ucq(["Q(x, z) :- Flight(x, z)",
                           "Q(x, z) :- Flight(x, y), Flight(y, z)"])
    trip = ("edinburgh", "paris")
    print(f"  direct {trip}: {evaluate(direct, db, trip)}")
    print(f"  one stop:      {evaluate(one_stop, db, trip)}")
    print(f"  best of both:  {evaluate(any_route, db, trip)}")
    print(f"  all reachable one-stop destinations: "
          f"{sorted(evaluate_all(one_stop, db))}")

    # --- Ex. 4.6: containment without an injective homomorphism ---------
    print()
    print("== Ex. 4.6: T+ containment beyond homomorphisms ==")
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    print(f"  ⟨Q1⟩ has {len(complete_description(q1))} CCQs:")
    for ccq in complete_description(q1):
        print(f"    {ccq}")
    finest = [c for c in complete_description(q1)
              if len(c.existential_vars()) == 3][0]
    tagged = canonical_instance(finest)
    p1 = evaluate(q1, tagged.instance, (), NX)
    p2 = evaluate(q2, tagged.instance, (), NX)
    print(f"  Q1^[[Q11]] = {p1}")
    print(f"  Q2^[[Q11]] = {p2}")
    print(f"  P1 ≼T+ P2: {TPLUS.poly_leq(p1, p2)}   "
          f"P2 ≼T+ P1: {TPLUS.poly_leq(p2, p1)}")
    verdict = decide_cq_containment(q1, q2, TPLUS)
    print(f"  => Q1 ⊆T+ Q2: {verdict.result} via {verdict.method}")
    print("     (no injective homomorphism Q2 →֒ Q1 exists!)")

    # --- Ex. 5.4: unions need the non-local test ------------------------
    print()
    print("== Ex. 5.4: union containment that no local check sees ==")
    u1 = parse_ucq(["Q() :- R(v), S(v)"])
    u2 = parse_ucq(["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"])
    print(f"  Q11 ⊆T+ Q21: "
          f"{decide_cq_containment(u1.cqs[0], u2.cqs[0], TPLUS).result}")
    print(f"  Q11 ⊆T+ Q22: "
          f"{decide_cq_containment(u1.cqs[0], u2.cqs[1], TPLUS).result}")
    verdict = decide_ucq_containment(u1, u2, TPLUS)
    print(f"  but Q1 ⊆T+ Q2 as unions: {verdict.result} "
          f"via {verdict.method}")

    # --- planning payoff: certified rewrite ------------------------------
    print()
    print("== certified cost-safe rewriting ==")
    padded = parse_cq("Q(x, z) :- Flight(x, y), Flight(y, z), Flight(y, z)")
    verdict = decide_cq_containment(one_stop, padded, TPLUS)
    print(f"  one_stop ⊆T+ padded: {verdict.result} — the padded plan")
    print("  double-charges the second leg, so it can only cost more;")
    reverse = decide_cq_containment(padded, one_stop, TPLUS)
    print(f"  padded ⊆T+ one_stop: {reverse.result} "
          f"(cheaper plans are not contained)")


if __name__ == "__main__":
    main()
