"""CI smoke: the async serving stack survives a SIGKILLed worker.

Boots ``python -m repro serve --tcp --async`` as a real subprocess,
drives it over two pipelined TCP connections, SIGKILLs one worker
process mid-run, and asserts that the service recovers (respawn
visible in the ``stats`` op, every later request answered) and shuts
down cleanly with exit code 0.

Run from the repository root::

    PYTHONPATH=src python scripts/serve_chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading


def request_line(index: int, *, prefix: str) -> str:
    return json.dumps({"semiring": "B",
                       "q1": f"Q() :- R(u, v), C{index}(u)",
                       "q2": "Q() :- R(u, v)",
                       "id": f"{prefix}{index}"})


def exchange(address, lines, timeout=60.0):
    """One pipelined conversation: write everything, then read replies."""
    with socket.create_connection(address, timeout=timeout) as client:
        with client.makefile("rw", encoding="utf-8",
                             newline="\n") as stream:
            for line in lines:
                stream.write(line + "\n")
            stream.flush()
            client.shutdown(socket.SHUT_WR)
            return [json.loads(line) for line in stream if line.strip()]


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--tcp", "127.0.0.1:0",
         "--async", "--workers", "2", "--deadline", "30", "--stats"],
        stderr=subprocess.PIPE, env=env, text=True)
    try:
        announce = proc.stderr.readline().strip()
        assert "serving on" in announce, announce
        host, _, port = announce.rsplit(" ", 1)[-1].rpartition(":")
        address = (host, int(port))

        # Two pipelined connections, concurrently.
        replies: dict[str, list[dict]] = {}

        def client(prefix: str) -> None:
            lines = [request_line(i, prefix=prefix) for i in range(20)]
            replies[prefix] = exchange(address, lines)

        threads = [threading.Thread(target=client, args=(prefix,))
                   for prefix in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        for prefix in ("a", "b"):
            got = [reply["request_id"] for reply in replies[prefix]]
            assert got == [f"{prefix}{i}" for i in range(20)], got

        # SIGKILL one worker; the supervisor must respawn it.
        stats = exchange(address, ['{"op": "stats"}'])[0]
        victims = [pid for pid in stats["service"]["worker_pids"] if pid]
        assert len(victims) == 2, stats["service"]
        os.kill(victims[0], signal.SIGKILL)

        after = exchange(address, [request_line(i, prefix="k")
                                   for i in range(40)])
        assert all("result" in reply for reply in after), \
            [reply for reply in after if "result" not in reply]

        stats = exchange(address, ['{"op": "stats"}'])[0]
        assert stats["service"]["respawns"] >= 1, stats["service"]
        assert stats["service"]["shed"] == 0, stats["service"]

        shutdown = exchange(address, ['{"op": "shutdown"}'])
        assert shutdown == [{"op": "shutdown", "ok": True}], shutdown
        code = proc.wait(timeout=60)
        assert code == 0, f"serve exited with {code}"
        print(f"serve-chaos smoke OK: 80 pipelined requests, "
              f"{stats['service']['respawns']} respawn(s), "
              f"{stats['service']['redriven']} re-driven, clean shutdown")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stderr.close()


if __name__ == "__main__":
    sys.exit(main())
