"""repro — a full reproduction of *Classification of Annotation Semirings
over Query Containment* (Kostylev, Reutter, Salamon; PODS 2012).

The library implements annotated databases (K-relations) over
commutative positive semirings, conjunctive queries and unions thereof,
the homomorphism taxonomy (plain / covering / injective / surjective /
bijective), complete descriptions, CQ-admissible polynomials, the
tropical small-model procedure, and the Table-1 decision procedures for
query containment — plus a brute-force semantic oracle used to validate
every procedure.

Quickstart — the cached facade (recommended)::

    from repro import ContainmentEngine

    engine = ContainmentEngine()
    engine.decide("Q() :- R(u, v), R(u, w)",
                  "Q() :- R(u, v), R(u, v)", "B").result     # True
    engine.decide("Q() :- R(u, v), R(u, w)",
                  "Q() :- R(u, v), R(u, v)", "N[X]").result  # False

or the loose functions::

    from repro import B, NX, parse_cq, decide_cq_containment

    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    decide_cq_containment(q1, q2, B).unwrap()    # True  (set semantics)
    decide_cq_containment(q1, q2, NX).unwrap()   # False (provenance)
"""

from .algebra import RewriteCheck, check_rewrite, table
from .api import (ContainmentEngine, ContainmentRequest, EngineStats,
                  VerdictDocument)
from .core import (Classification, Undecided, Verdict, classify,
                   decide_cq_containment, decide_ucq_containment, explain,
                   k_equivalent, small_model_contained)
from .data import CanonicalInstance, Instance, canonical_instance
from .homomorphisms import (CanonicalForm, HomKind, are_isomorphic,
                            automorphism_count, bi_count_infty, bi_count_k,
                            canonical_form, canonical_key, canonical_rename,
                            covering_2, covering_union, covers,
                            endomorphisms, find_homomorphism,
                            has_homomorphism, homomorphisms,
                            is_automorphism, isomorphism_classes,
                            local_condition, sur_infty)
from .polynomials import (Monomial, Polynomial, is_cq_admissible,
                          max_plus_poly_leq, min_plus_poly_leq)
from .queries import (CQ, UCQ, Atom, CQWithInequalities, Var, as_ucq,
                      complete_description, complete_description_ucq,
                      evaluate, evaluate_all, parse_cq, parse_ucq,
                      valuations)
from .semirings import (ACCESS, ALL_SEMIRINGS, B, BX, DEFAULT_REGISTRY,
                        EVENTS, FUZZY, LIN, LUKASIEWICZ, N, N2X,
                        N2_SATURATING, N3X, N3_SATURATING, NX, POSBOOL,
                        RPLUS, SORP, TMINUS, TPLUS, TRIO, VITERBI, WHY,
                        Semiring, SemiringProperties, SemiringRegistry,
                        get_semiring)
from .oracle import Counterexample, find_counterexample, refutes

__version__ = "1.0.0"

__all__ = [
    "ACCESS", "ALL_SEMIRINGS", "Atom", "B", "BX", "CQ",
    "CQWithInequalities", "CanonicalForm", "CanonicalInstance",
    "Classification", "ContainmentEngine", "ContainmentRequest",
    "Counterexample", "DEFAULT_REGISTRY", "EVENTS", "EngineStats",
    "FUZZY", "HomKind", "Instance", "LIN",
    "LUKASIEWICZ", "Monomial", "N", "N2X", "N2_SATURATING", "N3X",
    "N3_SATURATING", "NX", "POSBOOL", "Polynomial", "RPLUS", "SORP",
    "Semiring", "SemiringProperties", "SemiringRegistry", "TMINUS",
    "TPLUS", "TRIO", "UCQ",
    "Undecided", "VITERBI", "Var", "Verdict", "VerdictDocument", "WHY",
    "are_isomorphic",
    "as_ucq", "automorphism_count", "bi_count_infty", "bi_count_k",
    "canonical_form", "canonical_instance", "canonical_key",
    "canonical_rename", "classify", "complete_description",
    "complete_description_ucq", "covering_2", "covering_union", "covers",
    "decide_cq_containment", "decide_ucq_containment", "endomorphisms",
    "evaluate", "evaluate_all", "find_counterexample", "find_homomorphism",
    "get_semiring", "has_homomorphism", "homomorphisms",
    "is_automorphism", "is_cq_admissible", "isomorphism_classes",
    "k_equivalent", "local_condition",
    "max_plus_poly_leq", "min_plus_poly_leq", "parse_cq", "parse_ucq",
    "refutes", "small_model_contained", "sur_infty", "valuations",
    "RewriteCheck", "check_rewrite", "explain", "table",
]
