"""Positive relational algebra over K-relations, compiled to UCQs."""

from .expressions import (Join, Projection, RAExpression, Renaming,
                          Selection, Table, Union, table)
from .rewriting import RewriteCheck, check_rewrite

__all__ = [
    "Join", "Projection", "RAExpression", "Renaming", "RewriteCheck",
    "Selection", "Table", "Union", "check_rewrite", "table",
]
