"""Positive relational algebra over K-relations (Green et al., PODS'07).

The paper's annotation semantics is usually *used* through the positive
relational algebra: selections, projections, natural joins, renamings
and unions, with annotations combined by ``⊗`` along joint use and
``⊕`` along alternative derivations.  This module provides that layer:

* expression constructors: :func:`table`, plus methods ``select``,
  ``project``, ``join``, ``rename``, ``union``;
* direct evaluation over an :class:`~repro.data.instance.Instance`
  (:meth:`RAExpression.evaluate`);
* compilation into a :class:`~repro.queries.ucq.UCQ`
  (:meth:`RAExpression.to_ucq`), connecting the algebra to the paper's
  containment machinery — rewrite rules stated on algebra expressions
  are checked with the Table-1 procedures.

Expressions use *named* attributes; selections compare an attribute to
a constant or another attribute (positive conditions only — negation
would leave the semiring framework, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from ..data.instance import Instance
from ..queries.atoms import Atom, Var
from ..queries.cq import CQ
from ..queries.ucq import UCQ

__all__ = [
    "RAExpression",
    "Table",
    "Selection",
    "Projection",
    "Renaming",
    "Join",
    "Union",
    "table",
]


class RAExpression:
    """Base class for positive relational-algebra expressions.

    Subclasses implement ``attributes`` (the output schema, an attribute
    name tuple), ``_rows`` (annotated evaluation) and ``_conjuncts``
    (compilation to conjunctive normal parts).
    """

    #: Output attribute names, in order.
    attributes: tuple[str, ...] = ()

    # -- construction sugar ------------------------------------------------

    def select(self, attribute: str, value) -> "Selection":
        """Keep rows whose ``attribute`` equals a constant or another
        attribute (pass an attribute name prefixed with ``@``)."""
        return Selection(self, attribute, value)

    def project(self, *attributes: str) -> "Projection":
        """Project (with possible reordering/duplication) onto
        ``attributes``."""
        return Projection(self, tuple(attributes))

    def rename(self, mapping: Mapping[str, str]) -> "Renaming":
        """Rename attributes (missing names are kept)."""
        return Renaming(self, dict(mapping))

    def join(self, other: "RAExpression") -> "Join":
        """Natural join on the shared attribute names."""
        return Join(self, other)

    def union(self, other: "RAExpression") -> "Union":
        """Union (annotations add); schemas must match."""
        return Union(self, other)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, instance: Instance) -> dict[tuple, Any]:
        """Annotated result: output tuple → non-zero annotation."""
        semiring = instance.semiring
        answers: dict[tuple, Any] = {}
        for row, annotation in self._rows(instance):
            if row in answers:
                answers[row] = semiring.add(answers[row], annotation)
            else:
                answers[row] = annotation
        return {
            row: value for row, value in answers.items()
            if not semiring.is_zero(value)
        }

    def _rows(self, instance: Instance) -> Iterator[tuple[tuple, Any]]:
        raise NotImplementedError

    # -- compilation ----------------------------------------------------------

    def to_ucq(self) -> UCQ:
        """Compile into a UCQ with head ``Q(attributes…)``.

        The compilation is exact for the positive algebra: evaluation of
        the UCQ over any K-instance agrees with :meth:`evaluate` (tested
        property).  Union distributes over the other operators, so the
        result is a union of one CQ per join/select/project tree branch.
        """
        branches = self._branches()
        cqs = []
        for index, branch in enumerate(branches):
            cqs.append(branch._to_cq(f"b{index}", self.attributes))
        return UCQ(tuple(cqs))

    def _branches(self) -> list["RAExpression"]:
        """Push unions to the top; default: a single branch."""
        return [self]

    def _to_cq(self, prefix: str, attributes: tuple[str, ...]) -> CQ:
        bindings: dict[str, Any] = {}
        atoms: list[Atom] = []
        self._compile(prefix, bindings, atoms)
        head = []
        for attribute in attributes:
            term = bindings[attribute]
            if not isinstance(term, Var):
                raise ValueError(
                    f"attribute {attribute!r} is bound to the constant "
                    f"{term!r}; project it away or keep the selection "
                    "column — CQ heads carry variables only")
            head.append(term)
        return CQ(tuple(head), atoms)

    def _compile(self, prefix: str, bindings: dict[str, Any],
                 atoms: list[Atom]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Table(RAExpression):
    """A named base relation with an attribute list."""

    name: str
    schema: tuple[str, ...]

    def __post_init__(self):
        if len(set(self.schema)) != len(self.schema):
            raise ValueError("attribute names must be distinct")
        object.__setattr__(self, "attributes", tuple(self.schema))

    def _rows(self, instance: Instance):
        yield from instance.support(self.name)

    def _compile(self, prefix, bindings, atoms):
        terms = []
        for attribute in self.schema:
            if attribute in bindings:
                terms.append(bindings[attribute])
            else:
                var = Var(f"{prefix}_{attribute}")
                bindings[attribute] = var
                terms.append(var)
        atoms.append(Atom(self.name, terms))


@dataclass(frozen=True)
class Selection(RAExpression):
    """``σ_{attribute = value}``; ``value`` may be ``"@other"``."""

    source: RAExpression
    attribute: str
    value: Any

    def __post_init__(self):
        if self.attribute not in self.source.attributes:
            raise ValueError(f"unknown attribute {self.attribute!r}")
        if (isinstance(self.value, str) and self.value.startswith("@")
                and self.value[1:] not in self.source.attributes):
            raise ValueError(f"unknown attribute {self.value!r}")
        object.__setattr__(self, "attributes", self.source.attributes)

    def _position(self, attribute: str) -> int:
        return self.source.attributes.index(attribute)

    def _rows(self, instance: Instance):
        position = self._position(self.attribute)
        if isinstance(self.value, str) and self.value.startswith("@"):
            other = self._position(self.value[1:])
            for row, annotation in self.source._rows(instance):
                if row[position] == row[other]:
                    yield row, annotation
        else:
            for row, annotation in self.source._rows(instance):
                if row[position] == self.value:
                    yield row, annotation

    def _branches(self):
        return [Selection(branch, self.attribute, self.value)
                for branch in self.source._branches()]

    def _compile(self, prefix, bindings, atoms):
        if isinstance(self.value, str) and self.value.startswith("@"):
            # equate the two attributes by sharing one variable
            other = self.value[1:]
            shared = bindings.get(self.attribute, bindings.get(other))
            if shared is None:
                shared = Var(f"{prefix}_{self.attribute}")
            bindings[self.attribute] = shared
            bindings[other] = shared
        else:
            bindings[self.attribute] = self.value
        self.source._compile(prefix, bindings, atoms)


@dataclass(frozen=True)
class Projection(RAExpression):
    """``π_{attributes}`` (annotations of merged rows add up)."""

    source: RAExpression
    columns: tuple[str, ...]

    def __post_init__(self):
        for attribute in self.columns:
            if attribute not in self.source.attributes:
                raise ValueError(f"unknown attribute {attribute!r}")
        object.__setattr__(self, "attributes", tuple(self.columns))

    def _rows(self, instance: Instance):
        positions = [self.source.attributes.index(a) for a in self.columns]
        for row, annotation in self.source._rows(instance):
            yield tuple(row[p] for p in positions), annotation

    def _branches(self):
        return [Projection(branch, self.columns)
                for branch in self.source._branches()]

    def _compile(self, prefix, bindings, atoms):
        self.source._compile(prefix, bindings, atoms)


@dataclass(frozen=True)
class Renaming(RAExpression):
    """``ρ``: attribute renaming."""

    source: RAExpression
    mapping: Mapping[str, str]

    def __post_init__(self):
        for attribute in self.mapping:
            if attribute not in self.source.attributes:
                raise ValueError(f"unknown attribute {attribute!r}")
        renamed = tuple(
            self.mapping.get(a, a) for a in self.source.attributes)
        if len(set(renamed)) != len(renamed):
            raise ValueError("renaming collides attribute names")
        object.__setattr__(self, "attributes", renamed)
        object.__setattr__(self, "mapping", dict(self.mapping))

    def __hash__(self):
        return hash((type(self).__name__, self.source,
                     tuple(sorted(self.mapping.items()))))

    def _rows(self, instance: Instance):
        yield from self.source._rows(instance)

    def _branches(self):
        return [Renaming(branch, self.mapping)
                for branch in self.source._branches()]

    def _compile(self, prefix, bindings, atoms):
        inner: dict[str, Any] = {}
        for outer_name, term in bindings.items():
            for source_name, target_name in self.mapping.items():
                if target_name == outer_name:
                    inner[source_name] = term
                    break
            else:
                if outer_name in self.source.attributes:
                    inner[outer_name] = term
        self.source._compile(prefix, inner, atoms)
        for source_name, target_name in self.mapping.items():
            bindings[target_name] = inner[source_name]
        for attribute in self.source.attributes:
            if attribute not in self.mapping:
                bindings[attribute] = inner[attribute]


@dataclass(frozen=True)
class Join(RAExpression):
    """Natural join: shared attributes must agree; annotations multiply."""

    left: RAExpression
    right: RAExpression

    def __post_init__(self):
        shared = [a for a in self.left.attributes
                  if a in self.right.attributes]
        extra = [a for a in self.right.attributes
                 if a not in self.left.attributes]
        object.__setattr__(self, "attributes",
                           tuple(self.left.attributes) + tuple(extra))
        object.__setattr__(self, "_shared", tuple(shared))

    def _rows(self, instance: Instance):
        semiring = instance.semiring
        left_attrs = self.left.attributes
        right_attrs = self.right.attributes
        shared = self._shared
        right_rows = list(self.right._rows(instance))
        for left_row, left_annotation in self.left._rows(instance):
            left_key = tuple(
                left_row[left_attrs.index(a)] for a in shared)
            for right_row, right_annotation in right_rows:
                right_key = tuple(
                    right_row[right_attrs.index(a)] for a in shared)
                if left_key != right_key:
                    continue
                extra = tuple(
                    right_row[right_attrs.index(a)]
                    for a in self.attributes[len(left_attrs):])
                yield (left_row + extra,
                       semiring.mul(left_annotation, right_annotation))

    def _branches(self):
        return [
            Join(left_branch, right_branch)
            for left_branch in self.left._branches()
            for right_branch in self.right._branches()
        ]

    def _compile(self, prefix, bindings, atoms):
        left_bindings = {
            a: bindings[a] for a in self.left.attributes if a in bindings}
        self.left._compile(prefix + "l", left_bindings, atoms)
        right_bindings = {
            a: bindings[a] for a in self.right.attributes if a in bindings}
        for attribute in self._shared:
            right_bindings[attribute] = left_bindings[attribute]
        self.right._compile(prefix + "r", right_bindings, atoms)
        bindings.update(left_bindings)
        bindings.update(right_bindings)


@dataclass(frozen=True)
class Union(RAExpression):
    """Union of two same-schema expressions (annotations add)."""

    left: RAExpression
    right: RAExpression

    def __post_init__(self):
        if self.left.attributes != self.right.attributes:
            raise ValueError(
                f"union needs matching schemas, got "
                f"{self.left.attributes} and {self.right.attributes}")
        object.__setattr__(self, "attributes", self.left.attributes)

    def _rows(self, instance: Instance):
        yield from self.left._rows(instance)
        yield from self.right._rows(instance)

    def _branches(self):
        return self.left._branches() + self.right._branches()

    def _compile(self, prefix, bindings, atoms):  # pragma: no cover
        raise AssertionError("unions are expanded by _branches first")


def table(name: str, *schema: str) -> Table:
    """Create a base-relation expression: ``table("R", "src", "dst")``."""
    return Table(name, tuple(schema))
