"""Rewrite-rule checking for relational algebra over annotations.

An optimizer rewrite ``E1 → E2`` is *K-safe* when ``E2`` returns at
least (``⊆K``) or exactly (``≡K``) the annotated result of ``E1`` on
every database.  Compiling both sides to UCQs reduces safety to the
paper's containment problem, decided by the Table-1 machinery — so the
same rewrite can be certified for set semantics yet rejected for
provenance, which is the motivating scenario of the paper's
introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.containment import decide_ucq_containment
from ..core.verdict import Verdict
from .expressions import RAExpression

__all__ = ["RewriteCheck", "check_rewrite"]


@dataclass(frozen=True)
class RewriteCheck:
    """Outcome of checking an algebra rewrite under one semiring.

    ``forward``  — verdict for ``E1 ⊆K E2`` (the rewrite loses nothing).
    ``backward`` — verdict for ``E2 ⊆K E1`` (the rewrite adds nothing).
    """

    semiring_name: str
    forward: Verdict
    backward: Verdict

    @property
    def equivalent(self) -> bool | None:
        """True / False when decided; None when either side is open."""
        results = (self.forward.result, self.backward.result)
        if False in results:
            return False
        if results == (True, True):
            return True
        return None

    def summary(self) -> str:
        """One-line report."""
        status = {True: "EQUIVALENT", False: "NOT EQUIVALENT",
                  None: "UNDECIDED"}[self.equivalent]
        return (f"{status} under {self.semiring_name} "
                f"[⊆: {self.forward.result}, ⊇: {self.backward.result}]")


def check_rewrite(original: RAExpression, rewritten: RAExpression,
                  semiring, *, context=None) -> RewriteCheck:
    """Certify an algebra rewrite under an annotation semiring.

    Both expressions are compiled to UCQs and compared in both
    directions with the class-appropriate decision procedure.
    ``context`` threads a :class:`~repro.core.context.DecisionContext`
    into both directions, so the backward check replays the forward
    check's homomorphism searches (pass ``engine.context``).
    """
    if original.attributes != rewritten.attributes:
        raise ValueError(
            f"rewrite changes the schema: {original.attributes} vs "
            f"{rewritten.attributes}")
    q1 = original.to_ucq()
    q2 = rewritten.to_ucq()
    return RewriteCheck(
        semiring_name=semiring.name,
        forward=decide_ucq_containment(q1, q2, semiring, context=context),
        backward=decide_ucq_containment(q2, q1, semiring, context=context),
    )
