"""`repro.api` — the stable, cached, batch-oriented facade.

This package is the canonical way to *use* the library.  It bundles the
Table-1 decision procedures behind :class:`ContainmentEngine`, which
owns a mutable semiring registry, memoizes the expensive primitives
(classification, parsing, homomorphism search) and speaks
JSON-serializable request/verdict documents so containment checking can
be embedded in services, batch pipelines and golden-file tests::

    from repro.api import ContainmentEngine

    engine = ContainmentEngine()
    doc = engine.decide("Q() :- R(u, v), R(u, w)",
                        "Q() :- R(u, v), R(u, v)", "B")
    doc.result          # True
    doc.to_dict()       # plain JSON-able data

The CLI, the examples and the benchmarks all route through this facade.
"""

from .batch import (BatchError, error_text, process_lines,
                    requests_from_lines)
from .documents import ContainmentRequest, VerdictDocument
from .engine import (CachingDecisionContext, ContainmentEngine, EngineStats,
                     stats_report)

__all__ = [
    "BatchError",
    "CachingDecisionContext",
    "ContainmentEngine",
    "ContainmentRequest",
    "EngineStats",
    "VerdictDocument",
    "error_text",
    "process_lines",
    "requests_from_lines",
    "stats_report",
]
