"""Streaming JSONL batch processing.

Workloads like rewrite auditing issue thousands of containment checks
against a fixed semiring.  This module turns an engine into a JSONL
filter: one request document per input line, one verdict document per
output line, errors reported in-band so a single malformed line never
kills the stream::

    {"semiring": "B", "q1": "Q() :- R(x, y)", "q2": "Q() :- R(x, x)"}

becomes

    {"result": false, "method": "homomorphism", ...}

Used by ``python -m repro batch`` and directly importable for services.
With a :class:`~repro.service.pool.WorkerPool`, :func:`process_lines`
pipelines the same stream across worker processes — output order and
in-band error positions are identical to the sequential run.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..queries.parser import ParseError
from .documents import ContainmentRequest, coerce_request_id
from .engine import ContainmentEngine

__all__ = ["BatchError", "error_text", "process_lines",
           "requests_from_lines"]


def error_text(error: BaseException) -> str:
    """Human-readable message without repr artifacts.

    ``str(KeyError)`` wraps the message in quotes; unwrap it so the
    machine-readable error stream carries the bare text.
    """
    if isinstance(error, KeyError) and error.args:
        return str(error.args[0])
    return str(error)


@dataclass(frozen=True)
class BatchError:
    """A per-line failure, reported in-band in the output stream."""

    line: int
    error: str
    id: str | None = None

    def to_dict(self) -> dict:
        """Plain JSON-able representation."""
        data: dict = {"line": self.line, "error": self.error}
        if self.id is not None:
            data["id"] = self.id
        return data


def requests_from_lines(lines: Iterable[str], *, parse=None
                        ) -> Iterator[tuple[int, object]]:
    """Parse JSONL request lines into ``(lineno, request-or-error)``.

    Blank lines and ``#`` comments are skipped.  Malformed lines yield
    a :class:`BatchError` instead of raising, so callers can keep
    streaming.
    """
    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        request_id = None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("request line must be a JSON object")
            try:
                request_id = coerce_request_id(data.get("id"))
            except TypeError:
                request_id = None  # unusable id: not echoed on errors
            yield lineno, ContainmentRequest.from_dict(data, parse=parse)
        except (ValueError, TypeError, KeyError, ParseError) as error:
            yield lineno, BatchError(lineno, error_text(error),
                                     id=request_id)


def process_lines(engine: ContainmentEngine, lines: Iterable[str], *,
                  pool=None) -> Iterator[dict]:
    """Decide a JSONL request stream, yielding JSON-able result dicts.

    Each yielded dict is either a verdict document or an in-band error
    object ``{"line": n, "error": ...}``.  Pass a
    :class:`~repro.service.pool.WorkerPool` as ``pool`` to decide
    across worker processes: lines are still parsed here (through the
    engine's interning cache), requests are pipelined through the pool
    with bounded look-ahead, and results come out in input order with
    in-band errors in exactly the positions of a sequential run.  The
    caller owns the pool's lifecycle.
    """
    if pool is None:
        for lineno, item in requests_from_lines(lines, parse=engine.parse):
            if isinstance(item, BatchError):
                yield item.to_dict()
                continue
            try:
                yield engine.decide_request(item).to_dict()
            except (ValueError, TypeError, KeyError) as error:
                yield BatchError(lineno, error_text(error),
                                 id=item.id).to_dict()
        return
    yield from _process_lines_pooled(engine, lines, pool)


def _process_lines_pooled(engine: ContainmentEngine, lines: Iterable[str],
                          pool) -> Iterator[dict]:
    """The pool-backed pipeline behind :func:`process_lines`."""
    from ..service.pool import DecisionError

    window = 32 * pool.workers
    # Head-of-line entries: ("done", dict) for already-resolved lines,
    # ("seq", token, lineno, id) for requests in flight on the pool.
    pending: deque = deque()

    def resolve(entry) -> dict:
        if entry[0] == "done":
            return entry[1]
        _, token, lineno, request_id = entry
        outcome = pool.result(token)
        if isinstance(outcome, DecisionError):
            return BatchError(lineno, outcome.error,
                              id=outcome.id if outcome.id is not None
                              else request_id).to_dict()
        return outcome.to_dict()

    for lineno, item in requests_from_lines(lines, parse=engine.parse):
        if isinstance(item, BatchError):
            pending.append(("done", item.to_dict()))
        else:
            try:
                pending.append(("seq", pool.submit(item), lineno, item.id))
            except RuntimeError as error:  # dead shard: stay in-band
                pending.append(("done", BatchError(
                    lineno, str(error), id=item.id).to_dict()))
        # Yield everything already decided (head-of-line), and block on
        # the head once the look-ahead window is full.
        while pending and (pending[0][0] == "done"
                           or len(pending) >= window):
            yield resolve(pending.popleft())
    while pending:
        yield resolve(pending.popleft())
