"""JSON-serializable request and verdict documents.

The core procedures exchange rich in-process objects (:class:`~repro.queries.cq.CQ`,
:class:`~repro.core.verdict.Verdict` with homomorphism-mapping
certificates).  Services, JSONL batch pipelines and golden-file tests
need the same information as plain data.  This module defines the two
wire types:

* :class:`ContainmentRequest` — what to decide: two queries, a semiring
  name, containment vs equivalence, an optional correlation id.
* :class:`VerdictDocument` — the outcome, including the certificate and
  explanation text, normalized to JSON-able form.

Both round-trip losslessly: ``T.from_dict(x.to_dict()) == x``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Mapping

from ..core.verdict import Verdict
from ..queries.atoms import is_var
from ..queries.cq import CQ
from ..queries.parser import parse_cq
from ..queries.serialize import query_from_dict, query_to_dict, term_to_dict
from ..queries.ucq import UCQ, as_ucq

__all__ = ["ContainmentRequest", "VerdictDocument", "certificate_to_doc",
           "coerce_request_id"]

_ANSWERS = {True: "CONTAINED", False: "NOT CONTAINED", None: "UNDECIDED"}


def coerce_request_id(value) -> str | None:
    """Normalize a wire-level request id to ``str | None``.

    JSONL writers routinely emit numeric ids (``{"id": 7}``); those are
    coerced to strings so ``request_id`` stays a string on the wire.
    Anything else non-string raises instead of being echoed as raw
    JSON.
    """
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    raise TypeError(
        f"request id must be a string (or an integer, coerced to "
        f"one), got {type(value).__name__}")


def _coerce_query(spec, parse: Callable[[str], CQ]) -> UCQ:
    """Build a UCQ from a flexible query spec.

    Accepts a ``CQ``/``UCQ`` object, Datalog source text, an iterable of
    member source texts, or the dict format of
    :func:`repro.queries.serialize.query_from_dict`.
    """
    if isinstance(spec, (CQ, UCQ)):
        return as_ucq(spec)
    if isinstance(spec, str):
        return UCQ((parse(spec),))
    if isinstance(spec, Mapping):
        return as_ucq(query_from_dict(dict(spec)))
    if isinstance(spec, Iterable):
        members = []
        for member in spec:
            if isinstance(member, CQ):
                members.append(member)
            elif isinstance(member, str):
                members.append(parse(member))
            elif isinstance(member, Mapping):
                query = query_from_dict(dict(member))
                if not isinstance(query, CQ):
                    raise ValueError("union members must be CQs")
                members.append(query)
            else:
                raise TypeError(f"cannot read query member {member!r}")
        return UCQ(tuple(members))
    raise TypeError(f"cannot read query spec {spec!r}")


def certificate_to_doc(certificate) -> dict | None:
    """Normalize a verdict certificate to plain JSON-able data.

    Homomorphism mappings become ``{"kind": "homomorphism", "mapping":
    {var: term-doc}}``; condition names become ``{"kind": "condition",
    "text": ...}``; anything else is kept as its ``repr``.
    """
    if certificate is None:
        return None
    if isinstance(certificate, Mapping):
        mapping = {
            var.name if is_var(var) else str(var): term_to_dict(image)
            for var, image in certificate.items()
        }
        return {"kind": "homomorphism",
                "mapping": dict(sorted(mapping.items()))}
    if isinstance(certificate, str):
        return {"kind": "condition", "text": certificate}
    return {"kind": "opaque", "repr": repr(certificate)}


@dataclass(frozen=True)
class ContainmentRequest:
    """One containment (or equivalence) question, ready for an engine.

    ``q1``/``q2`` are stored as UCQs (singleton unions mean a CQ-level
    decision); ``semiring`` is a registry name or alias; ``id`` is an
    opaque correlation token echoed into the verdict document.
    """

    q1: UCQ
    q2: UCQ
    semiring: str
    equivalence: bool = False
    id: str | None = None

    @classmethod
    def make(cls, q1, q2, semiring: str, *, equivalence: bool = False,
             id: str | None = None,
             parse: Callable[[str], CQ] | None = None
             ) -> "ContainmentRequest":
        """Build a request from flexible query specs (see module docs).

        ``semiring`` must be a registry name or alias: requests are a
        wire type, and a :class:`~repro.semirings.base.Semiring`
        *instance* cannot travel with one — silently keeping only its
        name could resolve to a different semiring at decide time.
        Pass instances to :meth:`ContainmentEngine.decide` directly,
        or register them first.
        """
        if not isinstance(semiring, str):
            raise TypeError(
                f"ContainmentRequest takes a semiring name, got "
                f"{type(semiring).__name__}; pass the instance to "
                "engine.decide() or register it and use its name")
        id = coerce_request_id(id)
        parse = parse or parse_cq
        return cls(_coerce_query(q1, parse), _coerce_query(q2, parse),
                   semiring, equivalence=equivalence, id=id)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able representation (defaults omitted)."""
        data: dict[str, Any] = {
            "semiring": self.semiring,
            "q1": query_to_dict(self.q1),
            "q2": query_to_dict(self.q2),
        }
        if self.equivalence:
            data["equivalence"] = True
        if self.id is not None:
            data["id"] = self.id
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  parse: Callable[[str], CQ] | None = None
                  ) -> "ContainmentRequest":
        """Inverse of :meth:`to_dict`.

        Also accepts hand-written documents where ``q1``/``q2`` are
        Datalog source strings or lists of member strings.  ``parse``
        optionally reroutes text parsing (e.g. through an engine's
        interning cache).
        """
        if "semiring" not in data or "q1" not in data or "q2" not in data:
            raise ValueError(
                "a containment request needs 'semiring', 'q1' and 'q2'")
        return cls.make(data["q1"], data["q2"], data["semiring"],
                        equivalence=bool(data.get("equivalence", False)),
                        id=data.get("id"), parse=parse)


@dataclass(frozen=True)
class VerdictDocument:
    """A :class:`~repro.core.verdict.Verdict` in JSON-serializable form.

    Carries everything a remote caller or a golden file needs: the
    three-valued ``result``, the deciding ``method``, the semiring and
    both queries, the certificate (already normalized to plain data by
    :func:`certificate_to_doc`), the bounds flags for undecided
    verdicts, the explanation text, the echoed request id, and whether
    the engine served it from its verdict cache.
    """

    result: bool | None
    method: str
    semiring: str
    q1: UCQ
    q2: UCQ
    certificate: dict | None = None
    sufficient: bool | None = None
    necessary: bool | None = None
    explanation: str = ""
    request_id: str | None = None
    cached: bool = False

    @classmethod
    def from_verdict(cls, verdict: Verdict, *, semiring: str, q1, q2,
                     request_id: str | None = None,
                     cached: bool = False) -> "VerdictDocument":
        """Wrap a core verdict, normalizing its certificate."""
        return cls(
            result=verdict.result,
            method=verdict.method,
            semiring=semiring,
            q1=as_ucq(q1),
            q2=as_ucq(q2),
            certificate=certificate_to_doc(verdict.certificate),
            sufficient=verdict.sufficient,
            necessary=verdict.necessary,
            explanation=verdict.explanation,
            request_id=request_id,
            cached=cached,
        )

    @property
    def decided(self) -> bool:
        """True when the verdict carries a definite answer."""
        return self.result is not None

    @property
    def answer(self) -> str:
        """Human-readable label: CONTAINED / NOT CONTAINED / UNDECIDED."""
        return _ANSWERS[self.result]

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able representation (lossless)."""
        return {
            "result": self.result,
            "method": self.method,
            "semiring": self.semiring,
            "q1": query_to_dict(self.q1),
            "q2": query_to_dict(self.q2),
            "certificate": self.certificate,
            "sufficient": self.sufficient,
            "necessary": self.necessary,
            "explanation": self.explanation,
            "request_id": self.request_id,
            "cached": self.cached,
            "answer": self.answer,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerdictDocument":
        """Inverse of :meth:`to_dict` (the derived ``answer`` is ignored)."""
        return cls(
            result=data["result"],
            method=data["method"],
            semiring=data["semiring"],
            q1=as_ucq(query_from_dict(data["q1"])),
            q2=as_ucq(query_from_dict(data["q2"])),
            certificate=data.get("certificate"),
            sufficient=data.get("sufficient"),
            necessary=data.get("necessary"),
            explanation=data.get("explanation", ""),
            request_id=data.get("request_id"),
            cached=bool(data.get("cached", False)),
        )

    def with_request(self, request_id: str | None,
                     cached: bool) -> "VerdictDocument":
        """Copy with per-request metadata (used on verdict-cache hits)."""
        return replace(self, request_id=request_id, cached=cached)
