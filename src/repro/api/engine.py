"""The cached, batchable containment engine.

:class:`ContainmentEngine` is the facade the CLI, the examples and the
benchmarks go through.  One engine owns:

* a per-engine mutable :class:`~repro.semirings.registry.SemiringRegistry`
  (a copy of the defaults, so ``register_semiring`` stays local);
* memoization layers for every expensive primitive of the Table-1
  dispatch — classification per semiring, parsed-query interning per
  source text, structural LRUs over homomorphism-search results
  (first mapping and full enumeration, keyed by ``(source, target,
  HomKind)``), covered-atom sets, complete descriptions ``⟨Q⟩``, and
  canonical labeling records (isomorphism key + capture-free renaming +
  automorphism group size per CCQ, keyed by the query),
  and a certificate memo for the LP-backed tropical polynomial orders
  (keyed by ``(order kind, canonical admissible pair)``, revalidated
  on every recall) — plus a verdict-level LRU, so repeated checks are
  near-free;
* the document types of :mod:`repro.api.documents` for JSON-clean
  input/output, including the streaming batch entry points.

The engine's :class:`CachingDecisionContext` is threaded through the
whole decision surface (CQ dispatch, UCQ local/covering/counting/
matching conditions, and the bag-semantics bounds search), so even a
single cold verdict reuses work across its own sub-conditions.

Registering (or replacing) a semiring bumps the registry's version;
the engine detects the bump and drops its semiring-dependent caches
(classification, verdicts).  The structural caches — homomorphisms,
covered atoms, descriptions, canonical forms, polynomial-order certificates — only
mention queries and polynomials and survive.

Every cache layer is declared exactly once, in
:data:`repro.api.layers.CACHE_LAYERS`; this module *derives*
``cache_info``/``cache_stats``/``clear_caches`` and the snapshot
export/import payload from that registry, and the ``RL002`` lint rule
cross-checks it against the code, so an undeclared (or phantom) layer
fails ``repro lint``.  ``docs/ARCHITECTURE.md`` documents every layer
(key shape, eviction, snapshot behavior) and the invariants a new
layer must keep.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from ..core.classes import Classification, classify
from ..core.containment import (decide_cq_containment,
                                decide_ucq_containment, k_equivalent)
from ..core.context import DecisionContext
from ..homomorphisms.canonical import CanonicalForm, compute_canonical_form
from ..homomorphisms.search import HomKind, find_homomorphism, homomorphisms
from ..polynomials.admissible import canonical_pair
from ..polynomials.tropical_order import certificate_valid, decide_poly_leq
from ..queries.ccq import complete_description_ucq
from ..queries.cq import CQ
from ..queries.parser import parse_cq
from ..semirings.base import Semiring
from ..semirings.registry import DEFAULT_REGISTRY, SemiringRegistry
from .documents import ContainmentRequest, VerdictDocument, _coerce_query
from .layers import CACHE_LAYERS

__all__ = ["CachingDecisionContext", "ContainmentEngine", "EngineStats",
           "stats_report"]

#: The cache-miss sentinel.  Every ``_LRU`` lookup in this module goes
#: through ``get(key, _MISSING)`` and compares with ``is`` — never a
#: truthiness or ``None`` test — because ``None`` is a perfectly valid
#: cached *value* (a failed homomorphism search caches ``None``, and
#: that negative answer is exactly what makes repeats cheap).  Any new
#: cache layer must follow the same contract: reserve ``_MISSING`` for
#: "absent", store whatever the primitive returned, ``None`` included.
_MISSING = object()


@dataclass
class EngineStats:
    """Observable cache counters of one engine.

    ``*_calls`` count actual computations, ``*_hits`` count cache
    recalls; ``decisions`` counts every :meth:`ContainmentEngine.decide`.
    """

    decisions: int = 0
    verdict_hits: int = 0
    classify_calls: int = 0
    classify_hits: int = 0
    parse_calls: int = 0
    parse_hits: int = 0
    hom_calls: int = 0
    hom_hits: int = 0
    hom_enum_calls: int = 0
    hom_enum_hits: int = 0
    cover_calls: int = 0
    cover_hits: int = 0
    description_calls: int = 0
    description_hits: int = 0
    canon_calls: int = 0
    canon_hits: int = 0
    poly_calls: int = 0
    poly_hits: int = 0
    poly_rejected: int = 0
    eval_plan_calls: int = 0
    eval_plan_hits: int = 0
    evaluations: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for logs and reports)."""
        return dict(vars(self))


#: ``layer name → (hits counter, calls counter, entries counter)`` —
#: the schema :func:`stats_report` reads out of a ``cache_info()`` dict,
#: derived from the one cache-layer registry.  The verdict layer is the
#: only one excluded (``calls is None``): its computation count is
#: derived as ``decisions - verdict_hits`` below.
_LAYER_COUNTERS = tuple(
    (layer.name, layer.hits, layer.calls, layer.entries)
    for layer in CACHE_LAYERS if layer.calls is not None)


def stats_report(info: Mapping[str, int], *,
                 service: Mapping | None = None) -> dict:
    """A per-layer hit-ratio report from flat ``cache_info()`` counters.

    Works on a single engine's counters or on the summed counters of a
    worker pool (:meth:`repro.service.pool.WorkerPool.aggregate_stats`).
    Every layer reports ``hits``/``calls``/``entries`` plus a
    ``hit_ratio`` that is ``None`` — never a ``ZeroDivisionError`` —
    for layers that saw no traffic; the ``poly_orders`` layer
    additionally reports how many recalled certificates failed
    revalidation (``rejected``) and were recomputed.

    ``service`` optionally attaches serving-layer counters (a
    :meth:`repro.service.metrics.ServiceMetrics.as_dict` snapshot) to
    the report, so one document describes both the decision caches and
    the supervision/admission behaviour around them.
    """
    def layer(hits: int, calls: int, entries: int) -> dict:
        total = hits + calls
        return {"hits": hits, "calls": calls, "entries": entries,
                "hit_ratio": (hits / total) if total else None}

    layers = {
        name: layer(info.get(hits_key, 0), info.get(calls_key, 0),
                    info.get(entries_key, 0))
        for name, hits_key, calls_key, entries_key in _LAYER_COUNTERS
    }
    layers["poly_orders"]["rejected"] = info.get("poly_rejected", 0)
    decisions = info.get("decisions", 0)
    verdict_hits = info.get("verdict_hits", 0)
    layers["verdicts"] = layer(verdict_hits, decisions - verdict_hits,
                               info.get("verdict_entries", 0))
    report = {"decisions": decisions, "layers": layers}
    if service is not None:
        report["service"] = dict(service)
    return report


class _LRU:
    """A minimal ordered-dict LRU map (None is a storable value)."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        """Recall ``key``, refreshing its recency."""
        if key not in self._data:
            return default
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key, value) -> None:
        """Store ``key``, evicting the least recently used entry."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def pop(self, key) -> None:
        """Drop one entry if present (used to evict invalidated values)."""
        self._data.pop(key, None)

    def clear(self) -> None:
        """Drop every entry."""
        self._data.clear()

    def items(self):
        """Snapshot view of the entries, least recently used first."""
        return list(self._data.items())

    def __len__(self) -> int:
        return len(self._data)


class CachingDecisionContext(DecisionContext):
    """A :class:`DecisionContext` that routes through an engine's caches.

    Every primitive of the widened context contract — classification,
    homomorphism existence and enumeration, covered atoms, covering,
    complete descriptions, and the polynomial order ``poly_leq`` —
    recalls the owning engine's LRUs, so the covering/UCQ/small-model/
    bounds code paths share work with the top-level dispatch (and with
    each other) instead of recomputing searches.
    """

    def __init__(self, engine: "ContainmentEngine"):
        self._engine = engine

    def classify(self, semiring) -> Classification:
        """Classification via the engine's per-semiring cache."""
        return self._engine.classification(semiring)

    def find_homomorphism(self, source, target, kind: HomKind):
        """Homomorphism search via the engine's LRU."""
        return self._engine.find_homomorphism(source, target, kind)

    def homomorphism_mappings(self, source, target,
                              kind: HomKind) -> tuple[dict, ...]:
        """Full enumeration via the engine's LRU."""
        return self._engine.homomorphism_mappings(source, target, kind)

    def covered_atoms(self, source, target) -> frozenset:
        """Covered-atom sets via the engine's LRU."""
        return self._engine.covered_atoms(source, target)

    def complete_description(self, union) -> tuple:
        """Complete descriptions ``⟨Q⟩`` via the engine's LRU."""
        return self._engine.complete_description(union)

    def canonical_form(self, query) -> CanonicalForm:
        """Canonical labeling records via the engine's LRU."""
        return self._engine.canonical_form(query)

    def eval_plan(self, query):
        """Columnar evaluation plans via the engine's LRU."""
        return self._engine.eval_plan(query)

    def poly_leq(self, semiring, p1, p2) -> bool:
        """Polynomial-order decisions via the engine's certificate memo."""
        return self._engine.poly_leq(semiring, p1, p2)


class ContainmentEngine:
    """Cached facade over the Table-1 containment decision procedures.

    ``registry`` defaults to a private copy of the built-in semirings;
    pass an explicit :class:`SemiringRegistry` to share one.  The cache
    sizes bound the LRU layers (parse interning, homomorphism results
    and enumerations, covered atoms, complete descriptions, whole
    verdicts), keeping long-running batch/service workloads at bounded
    memory; only the classification cache is unbounded (one small entry
    per semiring).  The structural layers default generously (tens of
    thousands of entries, still only a few MB): a single bag-semantics
    bounds verdict touches hundreds of CCQ pairs, and warm-start
    snapshots can only persist what eviction has not already dropped.
    """

    def __init__(self, registry: SemiringRegistry | None = None, *,
                 parse_cache_size: int = 16384,
                 hom_cache_size: int = 65536,
                 verdict_cache_size: int = 16384,
                 cover_cache_size: int = 65536,
                 description_cache_size: int = 8192,
                 canon_cache_size: int = 65536,
                 poly_cache_size: int = 65536,
                 eval_plan_cache_size: int = 4096):
        self.registry = (registry if registry is not None
                         else DEFAULT_REGISTRY.copy())
        self.stats = EngineStats()
        self._classifications: dict[Any, Classification] = {}
        self._parsed: _LRU = _LRU(parse_cache_size)
        self._homs = _LRU(hom_cache_size)
        self._hom_enums = _LRU(hom_cache_size)
        self._covered = _LRU(cover_cache_size)
        self._descriptions = _LRU(description_cache_size)
        self._canon = _LRU(canon_cache_size)
        self._poly_orders = _LRU(poly_cache_size)
        self._eval_plans = _LRU(eval_plan_cache_size)
        self._verdicts = _LRU(verdict_cache_size)
        self._context = CachingDecisionContext(self)
        self._registry_version = self.registry.version

    @property
    def context(self) -> DecisionContext:
        """This engine's caching :class:`DecisionContext`.

        Thread it (``context=engine.context``) into direct calls of the
        decision and optimization primitives — ``explain``,
        ``minimize_cq``, ``check_rewrite`` and friends — so their inner
        containment checks share this engine's caches instead of
        recomputing from cold.
        """
        return self._context

    # -- registry -------------------------------------------------------

    def semiring(self, semiring: str | Semiring) -> Semiring:
        """Resolve a semiring name/alias (or pass an instance through)."""
        if isinstance(semiring, Semiring):
            return semiring
        return self.registry.get(semiring)

    def register_semiring(self, semiring: Semiring, *,
                          aliases: Iterable[str] = (),
                          replace: bool = False) -> Semiring:
        """Register a semiring on this engine's registry.

        Invalidates the semiring-dependent caches (classification and
        verdicts); the structural caches (homomorphisms, covered atoms,
        descriptions, canonical forms) survive.
        """
        self.registry.register(semiring, aliases=aliases, replace=replace)
        self._sync()
        return semiring

    def _sync(self) -> None:
        """Drop semiring-dependent caches if the registry mutated."""
        if self.registry.version != self._registry_version:
            self._classifications.clear()
            self._verdicts.clear()
            self._registry_version = self.registry.version

    # -- memoized primitives -------------------------------------------

    def classification(self, semiring: str | Semiring) -> Classification:
        """The Table-1 classification, computed once per semiring."""
        self._sync()
        semiring = self.semiring(semiring)
        cls = self._classifications.get(semiring)
        if cls is None:
            self.stats.classify_calls += 1
            cls = classify(semiring)
            self._classifications[semiring] = cls
        else:
            self.stats.classify_hits += 1
        return cls

    def parse(self, text: str) -> CQ:
        """Parse CQ source text, interning by the exact source string."""
        cq = self._parsed.get(text, _MISSING)
        if cq is _MISSING:
            self.stats.parse_calls += 1
            cq = parse_cq(text)
            self._parsed.put(text, cq)
        else:
            self.stats.parse_hits += 1
        return cq

    def find_homomorphism(self, source, target, kind: HomKind):
        """LRU-cached homomorphism search (``None`` results included)."""
        key = (source, target, kind)
        hit = self._homs.get(key, _MISSING)
        if hit is not _MISSING:
            self.stats.hom_hits += 1
            return hit
        # A cached full enumeration already knows the first mapping.
        enumerated = self._hom_enums.get(key, _MISSING)
        if enumerated is not _MISSING:
            self.stats.hom_hits += 1
            result = enumerated[0] if enumerated else None
            self._homs.put(key, result)
            return result
        self.stats.hom_calls += 1
        result = find_homomorphism(source, target, kind)
        self._homs.put(key, result)
        return result

    def has_homomorphism(self, source, target, kind: HomKind) -> bool:
        """LRU-backed existence check (shares :meth:`find_homomorphism`'s
        cache entry)."""
        return self.find_homomorphism(source, target, kind) is not None

    def homomorphism_mappings(self, source, target,
                              kind: HomKind) -> tuple[dict, ...]:
        """LRU-cached full homomorphism enumeration.

        Also seeds the first-mapping cache, so a later
        :meth:`find_homomorphism` on the same key is a hit.
        """
        key = (source, target, kind)
        hit = self._hom_enums.get(key, _MISSING)
        if hit is not _MISSING:
            self.stats.hom_enum_hits += 1
            return hit
        self.stats.hom_enum_calls += 1
        result = tuple(homomorphisms(source, target, kind))
        self._hom_enums.put(key, result)
        if self._homs.get(key, _MISSING) is _MISSING:
            self._homs.put(key, result[0] if result else None)
        return result

    def covered_atoms(self, source, target) -> frozenset:
        """LRU-cached homomorphic atom coverage (the ``⇉`` primitive).

        Shares one search per ``(source, target)`` pair with
        :meth:`homomorphism_mappings`: a cached enumeration is replayed
        for free, and when coverage itself must *exhaust* the search
        (the covering-failure case, where the work actually lives) the
        complete enumeration it produced is cached for later
        enumeration asks.  When coverage succeeds early the iteration
        still stops as soon as every target atom is reached — never
        materializing an enumeration the old lazy path would have
        skipped, which can be exponentially larger.
        """
        key = (source, target)
        hit = self._covered.get(key, _MISSING)
        if hit is not _MISSING:
            self.stats.cover_hits += 1
            return hit
        self.stats.cover_calls += 1
        target_atoms = set(target.atoms)
        covered: set = set()
        enum_key = (source, target, HomKind.PLAIN)
        cached_mappings = self._hom_enums.get(enum_key, _MISSING)
        if cached_mappings is not _MISSING:
            self.stats.hom_enum_hits += 1
            for mapping in cached_mappings:
                covered.update(target_atoms.intersection(
                    atom.substitute(mapping) for atom in source.atoms))
                if len(covered) == len(target_atoms):
                    break
        else:
            collected: list = []
            exhausted = True
            for mapping in homomorphisms(source, target, HomKind.PLAIN):
                collected.append(mapping)
                covered.update(target_atoms.intersection(
                    atom.substitute(mapping) for atom in source.atoms))
                if len(covered) == len(target_atoms):
                    exhausted = False  # stopped early: enumeration partial
                    break
            if exhausted:
                self.stats.hom_enum_calls += 1
                self._hom_enums.put(enum_key, tuple(collected))
            # Either way the search learned the existence answer.
            if self._homs.get(enum_key, _MISSING) is _MISSING:
                self._homs.put(enum_key,
                               collected[0] if collected else None)
        result = frozenset(covered)
        self._covered.put(key, result)
        return result

    def complete_description(self, union) -> tuple:
        """LRU-cached complete description ``⟨Q⟩`` of a UCQ."""
        hit = self._descriptions.get(union, _MISSING)
        if hit is not _MISSING:
            self.stats.description_hits += 1
            return hit
        self.stats.description_calls += 1
        result = complete_description_ucq(union)
        self._descriptions.put(union, result)
        return result

    def canonical_form(self, query) -> CanonicalForm:
        """LRU-cached canonical labeling record of a (C)CQ.

        One refinement-based pass yields the isomorphism key, the
        capture-free canonical renaming and the automorphism group
        size (:func:`repro.homomorphisms.canonical.compute_canonical_form`)
        — the per-CCQ primitives behind the ``→֒k``/``→֒∞`` counting
        and ``⇉2`` conditions.  Keys mention only the (immutable)
        query, so the layer survives registry changes and snapshots
        as-is.
        """
        hit = self._canon.get(query, _MISSING)
        if hit is not _MISSING:
            self.stats.canon_hits += 1
            return hit
        self.stats.canon_calls += 1
        result = compute_canonical_form(query)
        self._canon.put(query, result)
        return result

    def poly_leq(self, semiring, p1, p2) -> bool:
        """Certificate-memoized polynomial-order decision (Prop. 4.19).

        Semirings that declare a tropical ``poly_order`` kind (``T+``,
        ``T−``, Viterbi) are decided through an LRU of
        :class:`~repro.polynomials.tropical_order.TropicalOrderCertificate`
        values keyed by ``(kind, canonical pair)`` — the canonical form
        of :func:`repro.polynomials.admissible.canonical_pair`, so
        renamings of one admissible pair (and semirings sharing a kind,
        like ``T+`` and ``V``) share one entry, and no semiring
        *instance* ever enters a key (the layer snapshots cleanly).

        A recalled certificate is **revalidated, not trusted**: its
        witness arithmetic is re-checked against the live pair
        (integer evaluation for a violating point, Farkas inequalities
        for dominance — never an LP).  Valid recalls count as
        ``poly_hits``; an invalid (tampered/stale/mis-keyed) recall
        counts as ``poly_rejected``, is evicted, and the decision is
        recomputed — so a warmed run's answers are byte-identical to a
        cold run's no matter what the snapshot contained.

        Semirings without a tropical kind (finite/lattice orders, which
        are already cheap exhaustive checks) pass through uncached.
        """
        kind = getattr(semiring, "poly_order", None)
        if kind is None:
            return semiring.poly_leq(p1, p2)
        c1, c2, _ = canonical_pair(p1, p2)
        key = (kind, c1, c2)
        certificate = self._poly_orders.get(key, _MISSING)
        if certificate is not _MISSING:
            if certificate_valid(certificate, kind, c1, c2):
                self.stats.poly_hits += 1
                return certificate.holds
            self.stats.poly_rejected += 1
            self._poly_orders.pop(key)
        self.stats.poly_calls += 1
        holds, certificate = decide_poly_leq(kind, c1, c2)
        if certificate is not None:
            self._poly_orders.put(key, certificate)
        return holds

    def eval_plan(self, query):
        """LRU-cached columnar evaluation plan of a CQ.

        Plans (:class:`repro.eval.plan.EvalPlan`) mention only query
        terms, so the layer is structural: it survives registry bumps
        and travels in snapshots as-is — a warm-started worker answers
        ``repro eval`` workloads without ever re-planning.
        """
        hit = self._eval_plans.get(query, _MISSING)
        if hit is not _MISSING:
            self.stats.eval_plan_hits += 1
            return hit
        self.stats.eval_plan_calls += 1
        from ..eval.plan import build_plan
        result = build_plan(query)
        self._eval_plans.put(query, result)
        return result

    # -- deciding -------------------------------------------------------

    def decide(self, q1, q2, semiring: str | Semiring, *,
               equivalence: bool = False,
               request_id: str | None = None) -> VerdictDocument:
        """Decide ``Q1 ⊆K Q2`` (or ``≡K``) and return a document.

        ``q1``/``q2`` accept CQ/UCQ objects, Datalog source text, lists
        of member texts, or serialized query dicts.  Singleton unions
        are decided through the CQ-level procedures.
        """
        self._sync()
        resolved = self.semiring(semiring)
        union1 = _coerce_query(q1, self.parse)
        union2 = _coerce_query(q2, self.parse)
        self.stats.decisions += 1
        # Keyed by the resolved *instance* (identity hash), not its name:
        # two distinct semirings sharing a name must not share verdicts.
        key = (resolved, union1, union2, equivalence)
        cached = self._verdicts.get(key, _MISSING)
        if cached is not _MISSING:
            self.stats.verdict_hits += 1
            return cached.with_request(request_id, cached=True)
        singletons = len(union1) == 1 and len(union2) == 1
        if equivalence:
            verdict = (k_equivalent(union1.cqs[0], union2.cqs[0], resolved,
                                    context=self._context)
                       if singletons else
                       k_equivalent(union1, union2, resolved,
                                    context=self._context))
        elif singletons:
            verdict = decide_cq_containment(union1.cqs[0], union2.cqs[0],
                                            resolved, context=self._context)
        else:
            verdict = decide_ucq_containment(union1, union2, resolved,
                                             context=self._context)
        document = VerdictDocument.from_verdict(
            verdict, semiring=resolved.name, q1=union1, q2=union2,
            request_id=request_id)
        # Sound despite request_id missing from the key: the hit path
        # above re-stamps every cached document via with_request(), so
        # a request id never leaks out of the aliased entry; the
        # verdict itself depends only on the keyed inputs.
        self._verdicts.put(key, document)  # repro-lint: disable=RL104
        return document

    def evaluate(self, query, instance, semiring: str | Semiring | None = None):
        """Columnar UCQ evaluation over a K-instance (:mod:`repro.eval`).

        ``query`` accepts CQ/UCQ objects, Datalog source text, lists of
        member texts, or serialized query dicts (the same coercions as
        :meth:`decide`); ``semiring`` defaults to the instance's own.
        Plans route through this engine's ``eval_plans`` layer, so
        repeated evaluations of one query hit the cache (visible in
        :meth:`cache_stats`).  Returns a
        :class:`repro.eval.engine.AnswerTable`.
        """
        self._sync()
        from ..eval.engine import evaluate as columnar_evaluate
        union = _coerce_query(query, self.parse)
        resolved = (self.semiring(semiring) if semiring is not None
                    else instance.semiring)
        self.stats.evaluations += 1
        return columnar_evaluate(union, instance, resolved,
                                 context=self._context)

    def decide_request(self, request: ContainmentRequest) -> VerdictDocument:
        """Decide one :class:`ContainmentRequest`."""
        return self.decide(request.q1, request.q2, request.semiring,
                           equivalence=request.equivalence,
                           request_id=request.id)

    def decide_stream(self, requests: Iterable) -> Iterator[VerdictDocument]:
        """Lazily decide an iterable of requests (dicts are accepted)."""
        for request in requests:
            if not isinstance(request, ContainmentRequest):
                request = ContainmentRequest.from_dict(request,
                                                       parse=self.parse)
            yield self.decide_request(request)

    def decide_many(self, requests: Iterable) -> list[VerdictDocument]:
        """Decide a batch of requests, preserving order."""
        return list(self.decide_stream(requests))

    # -- introspection --------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Current cache sizes plus the stat counters (flat integers —
        summable across workers; see :func:`stats_report` for ratios)."""
        info = self.stats.as_dict()
        for layer in CACHE_LAYERS:
            info[layer.entries] = len(getattr(self, layer.attr))
        return info

    def cache_stats(self) -> dict:
        """Per-layer cache report with zero-division-safe hit ratios.

        Every layer — the poly_leq certificate memo included — reports
        ``hits``/``calls``/``entries`` and a ``hit_ratio`` that is
        ``None`` for layers with no traffic; see :func:`stats_report`.
        """
        return stats_report(self.cache_info())

    def clear_caches(self) -> None:
        """Drop every cache layer (stats counters are kept)."""
        for layer in CACHE_LAYERS:
            getattr(self, layer.attr).clear()

    # -- snapshot hooks --------------------------------------------------

    def export_caches(self, *, include_verdicts: bool = True) -> dict:
        """Every cache layer as picklable ``layer → [(key, value), ...]``.

        Semiring *instances* never leave the engine: the classification
        and verdict layers are re-keyed by canonical registry name, and
        entries for semirings passed directly as unregistered instances
        are dropped (a name is the only identity that survives a
        process boundary).  The poly_leq layer needs no such re-keying
        — its keys are ``(order kind, canonical polynomial pair)`` and
        its values are self-certifying
        :class:`~repro.polynomials.tropical_order.TropicalOrderCertificate`
        records, revalidated on recall, so even a maliciously edited
        snapshot cannot change an answer.  Entry lists keep LRU order
        (least recently used first), so importing into a same-sized
        engine reproduces the recency order.
        ``include_verdicts=False`` exports only the semiring-independent
        structural layers plus classifications — the right payload when
        restored runs must produce verdict documents byte-identical to
        cold runs (a restored verdict layer answers with
        ``cached: true``).
        """
        # The ``id()`` keys below never leave the process: they only
        # re-key live semiring instances by registry name while the
        # export payload is being built.
        names = {id(semiring): semiring.name  # repro-lint: disable=RL004
                 for semiring in self.registry}
        state: dict[str, list] = {}
        for layer in CACHE_LAYERS:
            if not layer.keyed_by_semiring:
                state[layer.name] = getattr(self, layer.attr).items()
        classifications = []
        for semiring, classification in self._classifications.items():
            name = names.get(id(semiring))  # repro-lint: disable=RL004
            if name is not None:
                classifications.append((name, classification))
        state["classifications"] = classifications
        verdicts = []
        if include_verdicts:
            for (semiring, q1, q2, equivalence), document \
                    in self._verdicts.items():
                name = names.get(id(semiring))  # repro-lint: disable=RL004
                if name is not None:
                    verdicts.append(((name, q1, q2, equivalence), document))
        state["verdicts"] = verdicts
        return state

    def import_caches(self, state: Mapping[str, Any]) -> dict[str, int]:
        """Install exported cache entries; returns per-layer counts.

        The inverse of :meth:`export_caches` — names resolve through
        *this* engine's registry, and entries whose semiring name is
        unknown here are skipped (never an error: a snapshot is an
        optimization, not a contract).  Existing entries are
        overwritten; stats counters are untouched.  Soundness assumes
        the name resolves to a semiring equivalent to the one that
        produced the entry — snapshots are meant to be restored into
        engines with the same registry contents.
        """
        counts = {}
        restored = 0
        for name, classification in state.get("classifications", ()):
            semiring = self.registry.find(name)
            if semiring is not None:
                self._classifications[semiring] = classification
                restored += 1
        counts["classifications"] = restored
        for layer in CACHE_LAYERS:
            if layer.keyed_by_semiring:
                continue
            lru = getattr(self, layer.attr)
            restored = 0
            for key, value in state.get(layer.name, ()):
                lru.put(key, value)
                restored += 1
            counts[layer.name] = restored
        restored = 0
        for (name, q1, q2, equivalence), document \
                in state.get("verdicts", ()):
            semiring = self.registry.find(name)
            if semiring is not None:
                self._verdicts.put((semiring, q1, q2, equivalence), document)
                restored += 1
        counts["verdicts"] = restored
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ContainmentEngine semirings={len(self.registry)} "
                f"decisions={self.stats.decisions}>")
