"""The engine cache-layer registry — one declaration, many consumers.

Every cache layer of :class:`repro.api.engine.ContainmentEngine` used
to be listed in five places (engine ``__init__``, ``cache_info``,
``export_caches``/``import_caches``, the snapshot ``_LAYERS`` tuple and
the stats-report counter table), and forgetting one of them was a
silent cache-coherence bug — an unexported layer simply never warmed
up across processes.  This module is the single source of truth:

* the engine derives ``cache_info``, ``cache_stats``, ``clear_caches``
  and the export/import payload from :data:`CACHE_LAYERS`;
* :mod:`repro.service.snapshot` imports :data:`SNAPSHOT_LAYERS` as its
  envelope schema (and :func:`~repro.service.snapshot.merge_states`,
  which the :class:`~repro.service.pool.WorkerPool` cache merge goes
  through, iterates the same tuple);
* the ``RL002`` rule of :mod:`repro.lint` cross-checks the registry
  against the engine/snapshot sources, so a layer added in code but
  not declared here (or declared but never created) fails ``repro
  lint`` instead of shipping.

The declaration must stay a *literal* tuple of keyword-argument
:class:`CacheLayer` calls: the linter reads it from the AST, without
importing anything.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheLayer", "CACHE_LAYERS", "SNAPSHOT_LAYERS"]


@dataclass(frozen=True)
class CacheLayer:
    """One engine cache layer and every name the runtime derives from it.

    ``name``
        The layer's export/snapshot key (``export_caches`` payload,
        snapshot envelope, ``cache_stats`` report).
    ``attr``
        The :class:`~repro.api.engine.ContainmentEngine` attribute
        holding the store.
    ``hits`` / ``calls``
        The :class:`~repro.api.engine.EngineStats` counter fields for
        recalls and actual computations.  ``calls`` is ``None`` only
        for the verdict layer, whose computation count is derived
        (``decisions - verdict_hits``) in ``stats_report``.
    ``entries``
        The ``cache_info()`` key reporting the store's current size.
    ``kind``
        ``"lru"`` for :class:`~repro.api.engine._LRU` stores, ``"dict"``
        for the unbounded classification map.
    ``keyed_by_semiring``
        True for layers whose keys mention semiring *instances* and
        must be re-keyed by canonical registry name on export (the
        classification and verdict layers); the structural layers
        export their entries verbatim.
    """

    name: str
    attr: str
    hits: str
    calls: str | None
    entries: str
    kind: str = "lru"
    keyed_by_semiring: bool = False


#: Every cache layer of the engine, in snapshot-envelope order
#: (classifications first so restored semiring lookups are warm before
#: the structural layers land; verdicts last because they are optional).
CACHE_LAYERS: tuple[CacheLayer, ...] = (
    CacheLayer(name="classifications", attr="_classifications",
               hits="classify_hits", calls="classify_calls",
               entries="classification_entries", kind="dict",
               keyed_by_semiring=True),
    CacheLayer(name="parsed", attr="_parsed",
               hits="parse_hits", calls="parse_calls",
               entries="parsed_entries"),
    CacheLayer(name="homs", attr="_homs",
               hits="hom_hits", calls="hom_calls",
               entries="hom_entries"),
    CacheLayer(name="hom_enums", attr="_hom_enums",
               hits="hom_enum_hits", calls="hom_enum_calls",
               entries="hom_enum_entries"),
    CacheLayer(name="covered", attr="_covered",
               hits="cover_hits", calls="cover_calls",
               entries="cover_entries"),
    CacheLayer(name="descriptions", attr="_descriptions",
               hits="description_hits", calls="description_calls",
               entries="description_entries"),
    CacheLayer(name="canonical", attr="_canon",
               hits="canon_hits", calls="canon_calls",
               entries="canon_entries"),
    CacheLayer(name="poly_orders", attr="_poly_orders",
               hits="poly_hits", calls="poly_calls",
               entries="poly_entries"),
    CacheLayer(name="eval_plans", attr="_eval_plans",
               hits="eval_plan_hits", calls="eval_plan_calls",
               entries="eval_plan_entries"),
    CacheLayer(name="verdicts", attr="_verdicts",
               hits="verdict_hits", calls=None,
               entries="verdict_entries",
               keyed_by_semiring=True),
)

#: The snapshot envelope's layer names, in import order — consumed by
#: :mod:`repro.service.snapshot` (and through it the pool cache merge).
SNAPSHOT_LAYERS: tuple[str, ...] = tuple(
    layer.name for layer in CACHE_LAYERS)
