"""Command-line interface.

Usage (after installation)::

    python -m repro semirings
    python -m repro classify "N[X]"
    python -m repro contain --semiring T+ \\
        --q1 "Q() :- R(v), S(v)" \\
        --q2 "Q() :- R(v), R(v)" --q2 "Q() :- S(v), S(v)"
    python -m repro minimize --semiring B "Q(x) :- R(x, y), R(x, z)"
    python -m repro evaluate --semiring N \\
        --fact "R(a, b) = 2" --fact "S(b) = 3" "Q(x) :- R(x, y), S(y)"

Annotations on ``--fact`` are parsed as integers (mapped through the
semiring: a count for ``N``, a cost for ``T+``, …) or, for the
polynomial-like semirings, as variable names (``= x1`` tags the fact
with a fresh provenance token).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import classify, decide_cq_containment, decide_ucq_containment
from .data import Instance
from .optimize import minimize_cq
from .queries import UCQ, evaluate_all, parse_cq, parse_ucq
from .queries.parser import ParseError
from .semirings import ALL_SEMIRINGS, get_semiring

__all__ = ["main"]


def _parse_fact(text: str, semiring):
    """Parse ``"R(a, b) = value"`` into (relation, row, annotation)."""
    if "=" not in text:
        raise ValueError(f"fact needs '= annotation': {text!r}")
    atom_text, _, value_text = text.rpartition("=")
    atom_query = parse_cq(f"F() :- {atom_text.strip()}")
    atom = atom_query.atoms[0]
    if atom.variables():
        raise ValueError(f"facts must be ground (constants only): {text!r}")
    value_text = value_text.strip()
    if value_text.lstrip("-").isdigit():
        annotation = semiring.normalize(int(value_text))
    elif hasattr(semiring, "var"):
        annotation = semiring.var(value_text)
    else:
        raise ValueError(
            f"cannot parse annotation {value_text!r} for {semiring.name}")
    return atom.relation, atom.terms, annotation


def _cmd_semirings(_args) -> int:
    print(f"{'name':12s} {'CQ class':8s} {'UCQ class':9s} "
          f"{'small-model':11s} notes")
    for semiring in ALL_SEMIRINGS:
        cls = classify(semiring)
        print(f"{semiring.name:12s} {cls.cq_exact_class() or '-':8s} "
              f"{cls.ucq_exact_class() or '-':9s} "
              f"{str(cls.small_model):11s} "
              f"{semiring.properties.notes.split('.')[0]}")
    return 0


def _cmd_classify(args) -> int:
    semiring = get_semiring(args.semiring)
    cls = classify(semiring)
    print(f"{semiring.name}: offset = "
          f"{'∞' if cls.offset == float('inf') else int(cls.offset)}")
    for name, member in cls.memberships().items():
        marker = "✓" if member else "·"
        print(f"  {marker} {name}")
    return 0


def _cmd_contain(args) -> int:
    semiring = get_semiring(args.semiring)
    if args.q1 is None or args.q2 is None:
        raise ValueError("--q1 and --q2 are required (repeat for unions)")
    q1, q2 = parse_ucq(args.q1), parse_ucq(args.q2)
    if len(q1) == 1 and len(q2) == 1:
        verdict = decide_cq_containment(q1.cqs[0], q2.cqs[0], semiring)
    else:
        verdict = decide_ucq_containment(q1, q2, semiring)
    answer = {True: "CONTAINED", False: "NOT CONTAINED",
              None: "UNDECIDED"}[verdict.result]
    print(f"{answer}  [{verdict.method}]")
    if verdict.explanation:
        print(f"  {verdict.explanation}")
    if verdict.result is None:
        print(f"  necessary conditions hold: {verdict.necessary}")
        print(f"  sufficient conditions hold: {verdict.sufficient}")
    if args.explain:
        from .core.explain import explain
        explanation = explain(
            q1.cqs[0] if len(q1) == 1 and len(q2) == 1 else q1,
            q2.cqs[0] if len(q1) == 1 and len(q2) == 1 else q2,
            semiring)
        print(f"  {explanation.summary()}")
        if explanation.witness is not None:
            print(f"  witness instance: {explanation.witness.instance!r}")
            print(f"  at tuple {explanation.witness.target}: "
                  f"{explanation.witness.lhs!r} ⋠ "
                  f"{explanation.witness.rhs!r}")
    return 0 if verdict.result is not None else 2


def _cmd_minimize(args) -> int:
    semiring = get_semiring(args.semiring)
    query = parse_cq(args.query)
    result = minimize_cq(query, semiring)
    print(f"input:     {query}")
    print(f"minimized: {result.query}")
    print(f"removed {result.removed} atom(s) under {semiring.name}")
    return 0


def _cmd_evaluate(args) -> int:
    semiring = get_semiring(args.semiring)
    facts = [_parse_fact(text, semiring) for text in args.fact or []]
    instance = Instance.from_facts(semiring, facts)
    query = parse_cq(args.query)
    answers = evaluate_all(query, instance)
    if not answers:
        print("no answers (all annotations are 0)")
        return 0
    for row, annotation in sorted(answers.items(), key=lambda kv: repr(kv[0])):
        print(f"  {row} ↦ {annotation!r}")
    return 0


def _cmd_falsify(args) -> int:
    import random

    from .core.axiom_search import (admissible_probe_polynomials,
                                    falsify_nhcov, falsify_nin,
                                    falsify_nk_bi, falsify_nk_hcov,
                                    falsify_nsur, probe_polynomials)

    semiring = get_semiring(args.semiring)
    if not semiring.properties.poly_order_decidable:
        print(f"error: {semiring.name} has no decidable polynomial order; "
              "the axiom search needs poly_leq", file=sys.stderr)
        return 1
    rng = random.Random(args.seed)
    probes = probe_polynomials(rng)
    admissible = admissible_probe_polynomials(rng)
    searches = {
        "nhcov": lambda: falsify_nhcov(semiring),
        "nin": lambda: falsify_nin(semiring, admissible),
        "nsur": lambda: falsify_nsur(semiring, admissible),
        "n1hcov": lambda: falsify_nk_hcov(semiring, 1, probes),
        "n2hcov": lambda: falsify_nk_hcov(semiring, 2, probes),
        "n1bi": lambda: falsify_nk_bi(semiring, 1, probes),
        "ninf_bi": lambda: falsify_nk_bi(semiring, float("inf"), probes),
    }
    names = [args.axiom] if args.axiom else sorted(searches)
    for name in names:
        if name not in searches:
            print(f"error: unknown axiom {name!r}; choose from "
                  f"{sorted(searches)}", file=sys.stderr)
            return 1
        violation = searches[name]()
        if violation is None:
            print(f"  {name:8s}: no violation found (bounded search)")
        else:
            print(f"  {name:8s}: VIOLATED — {violation.left!r} ≼ "
                  f"{violation.right!r} ({violation.detail})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Annotation-semiring query containment "
                    "(Kostylev-Reutter-Salamon, PODS 2012)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "semirings", help="list registered semirings and their classes"
    ).set_defaults(func=_cmd_semirings)

    classify_cmd = commands.add_parser(
        "classify", help="show every class membership of one semiring")
    classify_cmd.add_argument("semiring")
    classify_cmd.set_defaults(func=_cmd_classify)

    contain = commands.add_parser(
        "contain", help="decide Q1 ⊆K Q2 (repeat --q1/--q2 for unions)")
    contain.add_argument("--semiring", required=True)
    contain.add_argument("--q1", action="append")
    contain.add_argument("--q2", action="append")
    contain.add_argument("--explain", action="store_true",
                         help="re-check certificates / search for a "
                              "semantic witness")
    contain.set_defaults(func=_cmd_contain)

    minimize = commands.add_parser(
        "minimize", help="remove atoms while preserving K-equivalence")
    minimize.add_argument("--semiring", required=True)
    minimize.add_argument("query")
    minimize.set_defaults(func=_cmd_minimize)

    evaluate_cmd = commands.add_parser(
        "evaluate", help="evaluate a query over --fact annotations")
    evaluate_cmd.add_argument("--semiring", required=True)
    evaluate_cmd.add_argument("--fact", action="append")
    evaluate_cmd.add_argument("query")
    evaluate_cmd.set_defaults(func=_cmd_evaluate)

    falsify = commands.add_parser(
        "falsify", help="probe the necessary-class axioms of a semiring")
    falsify.add_argument("semiring")
    falsify.add_argument("--axiom", help="one of nhcov/nin/nsur/n1hcov/"
                                         "n2hcov/n1bi/ninf_bi (default all)")
    falsify.add_argument("--seed", type=int, default=11)
    falsify.set_defaults(func=_cmd_falsify)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ParseError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
