"""Command-line interface.

Every command goes through one :class:`repro.api.ContainmentEngine`, so
name lookup (aliases, case-insensitive, "did you mean"), parsing and
the decision caches behave exactly as they do for library users.

Usage (after installation)::

    python -m repro semirings
    python -m repro classify "N[X]"
    python -m repro contain --semiring T+ \\
        --q1 "Q() :- R(v), S(v)" \\
        --q2 "Q() :- R(v), R(v)" --q2 "Q() :- S(v), S(v)"
    python -m repro batch --input requests.jsonl
    python -m repro batch --workers 4 --snapshot caches.snap \\
        --input requests.jsonl
    python -m repro serve --snapshot caches.snap --flush-every 200
    python -m repro minimize --semiring B "Q(x) :- R(x, y), R(x, z)"
    python -m repro evaluate --semiring N \\
        --fact "R(a, b) = 2" --fact "S(b) = 3" "Q(x) :- R(x, y), S(y)"
    python -m repro eval --semiring T+ \\
        --query "Q(x, y) :- Road(x, z), Road(z, y)" \\
        --instance examples/data/route_costs.csv --json

Annotations on ``--fact`` are parsed as integers (mapped through the
semiring: a count for ``N``, a cost for ``T+``, …) or, for the
polynomial-like semirings, as variable names (``= x1`` tags the fact
with a fresh provenance token).

The ``batch`` command streams JSONL: one request object per input line
(``{"semiring": ..., "q1": ..., "q2": ..., "id": ...}``), one verdict
document per output line, errors reported in-band.  ``--workers N``
shards the stream across engine processes (order preserved) and
``--snapshot PATH`` warm-starts from — and re-persists — the engine
caches.  ``serve`` keeps the same JSONL protocol alive as a long-lived
stdio or TCP service with control ops (ping/stats/snapshot/shutdown).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Sequence

from .api import ContainmentEngine, process_lines
from .data import Instance
from .optimize import minimize_cq
from .queries import evaluate_all
from .queries.parser import ParseError

__all__ = ["main"]


def _parse_fact(text: str, semiring, engine: ContainmentEngine):
    """Parse ``"R(a, b) = value"`` into (relation, row, annotation)."""
    if "=" not in text:
        raise ValueError(f"fact needs '= annotation': {text!r}")
    atom_text, _, value_text = text.rpartition("=")
    atom_query = engine.parse(f"F() :- {atom_text.strip()}")
    atom = atom_query.atoms[0]
    if atom.variables():
        raise ValueError(f"facts must be ground (constants only): {text!r}")
    value_text = value_text.strip()
    if re.fullmatch(r"[+-]?\d+", value_text):
        annotation = semiring.normalize(int(value_text))
    elif (re.fullmatch(r"[A-Za-z_]\w*", value_text)
          and hasattr(semiring, "var")):
        annotation = semiring.var(value_text)
    else:
        # Covers non-integers like "--5" (which int() would reject with
        # a bare "invalid literal") and non-identifier token names.
        raise ValueError(
            f"cannot parse annotation {value_text!r} for {semiring.name}")
    return atom.relation, atom.terms, annotation


def _cmd_semirings(args) -> int:
    engine = args.engine
    print(f"{'name':12s} {'CQ class':8s} {'UCQ class':9s} "
          f"{'small-model':11s} notes")
    for semiring in engine.registry:
        cls = engine.classification(semiring)
        print(f"{semiring.name:12s} {cls.cq_exact_class() or '-':8s} "
              f"{cls.ucq_exact_class() or '-':9s} "
              f"{str(cls.small_model):11s} "
              f"{semiring.properties.notes.split('.')[0]}")
    return 0


def _cmd_classify(args) -> int:
    engine = args.engine
    semiring = engine.semiring(args.semiring)
    cls = engine.classification(semiring)
    print(f"{semiring.name}: offset = "
          f"{'∞' if cls.offset == float('inf') else int(cls.offset)}")
    for name, member in cls.memberships().items():
        marker = "✓" if member else "·"
        print(f"  {marker} {name}")
    return 0


def _explain_contain(engine: ContainmentEngine, args):
    """Run the certificate re-check / witness search for ``contain``."""
    from .core.explain import explain
    from .queries import UCQ

    q1 = [engine.parse(text) for text in args.q1]
    q2 = [engine.parse(text) for text in args.q2]
    singletons = len(q1) == 1 and len(q2) == 1
    return explain(
        q1[0] if singletons else UCQ(tuple(q1)),
        q2[0] if singletons else UCQ(tuple(q2)),
        engine.semiring(args.semiring),
        context=engine.context)


def _cmd_contain(args) -> int:
    engine = args.engine
    document = engine.decide(args.q1, args.q2, args.semiring)
    explanation = _explain_contain(engine, args) if args.explain else None
    if args.json:
        data = document.to_dict()
        if explanation is not None:
            detail = {"summary": explanation.summary()}
            if explanation.witness is not None:
                detail["witness"] = {
                    "instance": repr(explanation.witness.instance),
                    "target": repr(explanation.witness.target),
                    "lhs": repr(explanation.witness.lhs),
                    "rhs": repr(explanation.witness.rhs),
                }
            data["explain"] = detail
        print(json.dumps(data, ensure_ascii=False))
        return 0 if document.result is not None else 2
    print(f"{document.answer}  [{document.method}]")
    if document.explanation:
        print(f"  {document.explanation}")
    if document.result is None:
        print(f"  necessary conditions hold: {document.necessary}")
        print(f"  sufficient conditions hold: {document.sufficient}")
    if explanation is not None:
        print(f"  {explanation.summary()}")
        if explanation.witness is not None:
            print(f"  witness instance: {explanation.witness.instance!r}")
            print(f"  at tuple {explanation.witness.target}: "
                  f"{explanation.witness.lhs!r} ⋠ "
                  f"{explanation.witness.rhs!r}")
    return 0 if document.result is not None else 2


def _load_engine_snapshot(engine: ContainmentEngine, path: str) -> None:
    """Warm-start an engine from ``path``; a missing file is a normal
    first run, an unusable one is a warning — never a failure."""
    import os

    from .service import SnapshotError, load_snapshot

    if not os.path.exists(path):
        return
    try:
        load_snapshot(engine, path)
    except SnapshotError as error:
        print(f"warning: starting cold: {error}", file=sys.stderr)


def _cmd_batch(args) -> int:
    from contextlib import ExitStack

    engine = args.engine
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 1
    pool = None
    errors = 0
    with ExitStack() as stack:
        if args.workers > 1:
            from .service import WorkerPool

            pool = stack.enter_context(WorkerPool(
                args.workers, snapshot_path=args.snapshot,
                include_verdict_snapshot=args.snapshot_verdicts))
        elif args.snapshot:
            _load_engine_snapshot(engine, args.snapshot)
        source = (sys.stdin if args.input in (None, "-") else
                  stack.enter_context(open(args.input, encoding="utf-8")))
        sink = (sys.stdout if args.output in (None, "-") else
                stack.enter_context(open(args.output, "w",
                                         encoding="utf-8")))
        for document in process_lines(engine, source, pool=pool):
            if "error" in document:
                errors += 1
            # flush per line: batch is a streaming filter and downstream
            # consumers must see each verdict as its request is decided.
            print(json.dumps(document, ensure_ascii=False), file=sink,
                  flush=True)
        if args.snapshot:
            import os

            from .service import save_snapshot

            if pool is not None:
                pool.save_snapshot(args.snapshot)
            else:
                # A fully-warm run computed nothing the snapshot does
                # not already contain — skip the redundant rewrite.
                stats = engine.stats
                computed = (stats.parse_calls + stats.classify_calls
                            + stats.hom_calls + stats.hom_enum_calls
                            + stats.cover_calls + stats.description_calls
                            + stats.poly_calls)
                if args.snapshot_verdicts:
                    computed += stats.decisions - stats.verdict_hits
                if computed or not os.path.exists(args.snapshot):
                    save_snapshot(engine, args.snapshot,
                                  include_verdicts=args.snapshot_verdicts)
        if args.stats:
            info = (engine.cache_info() if pool is None
                    else {"workers": pool.stats()})
            print(json.dumps(info), file=sys.stderr)
    return 0 if errors == 0 else 1


def _parse_tcp_address(text: str) -> tuple[str, int]:
    """``[HOST:]PORT`` → ``(host, port)`` (host defaults to loopback)."""
    host, _, port_text = text.rpartition(":")
    if not port_text.isdigit():
        raise ValueError(f"cannot parse TCP address {text!r}; "
                         "expected [HOST:]PORT")
    return host or "127.0.0.1", int(port_text)


def _cmd_serve(args) -> int:
    import signal

    from .service import DecisionServer, SupervisedWorkerPool, WorkerPool

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 1
    tcp_address = None
    if args.tcp is not None:
        tcp_address = _parse_tcp_address(args.tcp)
    if args.use_async and tcp_address is None:
        print("error: --async requires --tcp", file=sys.stderr)
        return 1

    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    pool = None
    if args.workers > 1 or args.use_async:
        # The async gateway always fronts a pool (even of one worker):
        # decisions must not block its event loop, and only the
        # supervised pool gives it the self-healing contract.
        pool_class = WorkerPool if args.no_respawn else SupervisedWorkerPool
        pool = pool_class(args.workers, snapshot_path=args.snapshot,
                          include_verdict_snapshot=args.snapshot_verdicts)
    server = DecisionServer(
        engine=None if pool is not None else args.engine,
        pool=pool,
        snapshot_path=args.snapshot,
        include_verdict_snapshot=args.snapshot_verdicts,
        flush_every=args.flush_every,
        flush_interval=args.flush_interval,
        max_line_bytes=args.max_line_bytes)
    front = server
    gateway = None
    if args.use_async:
        from .service import AsyncGateway
        gateway = AsyncGateway(pool, server=server,
                               deadline=args.deadline,
                               queue_limit=args.queue_limit,
                               max_line_bytes=args.max_line_bytes)
        front = gateway
    try:
        if tcp_address is not None:
            host, port = tcp_address
            import threading
            ready = threading.Event()
            announce = threading.Thread(
                target=lambda: (ready.wait(), print(
                    f"serving on {front.tcp_address[0]}:"
                    f"{front.tcp_address[1]}", file=sys.stderr)),
                daemon=True)
            announce.start()
            if gateway is not None:
                import asyncio
                asyncio.run(gateway.serve(host, port, ready=ready))
            else:
                server.serve_tcp(host, port, ready=ready)
        else:
            server.serve_lines(sys.stdin, sys.stdout)
    except KeyboardInterrupt:
        pass  # graceful: final flush happens below
    finally:
        close_stats = server.close()
        if pool is not None:
            pool.close()
    flush_error = close_stats.get("flush_error")
    if flush_error:
        print(f"warning: final snapshot flush failed: {flush_error}",
              file=sys.stderr)
    if args.stats:
        report = {"served": server.served, "errors": server.errors}
        if flush_error:
            report["flush_error"] = flush_error
        metrics = getattr(pool, "metrics", None)
        if metrics is not None:
            report["service"] = metrics.as_dict()
        print(json.dumps(report), file=sys.stderr)
    return 0


def _cmd_minimize(args) -> int:
    engine = args.engine
    semiring = engine.semiring(args.semiring)
    query = engine.parse(args.query)
    result = minimize_cq(query, semiring, context=engine.context)
    print(f"input:     {query}")
    print(f"minimized: {result.query}")
    print(f"removed {result.removed} atom(s) under {semiring.name}")
    return 0


def _cmd_evaluate(args) -> int:
    engine = args.engine
    semiring = engine.semiring(args.semiring)
    facts = [_parse_fact(text, semiring, engine) for text in args.fact or []]
    instance = Instance.from_facts(semiring, facts)
    query = engine.parse(args.query)
    answers = evaluate_all(query, instance)
    if not answers:
        print("no answers (all annotations are 0)")
        return 0
    for row, annotation in sorted(answers.items(), key=lambda kv: repr(kv[0])):
        print(f"  {row} ↦ {annotation!r}")
    return 0


def _json_value(value):
    """A JSON-clean rendering of a domain value or annotation."""
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") \
            else repr(value)
    return repr(value)


def _cmd_eval(args) -> int:
    from .data.instance import format_annotation

    engine = args.engine
    semiring = engine.semiring(args.semiring)
    instance = Instance.from_csv(args.instance, semiring)
    table = engine.evaluate(args.query, instance, semiring)
    rows = sorted(table.rows, key=lambda kv: repr(kv[0]))
    if args.json:
        def annotation_form(value):
            try:
                return format_annotation(semiring, value)
            except ValueError:
                return repr(value)

        print(json.dumps({
            "semiring": semiring.name,
            "arity": table.arity,
            "facts": instance.fact_count(),
            "answers": [
                {"tuple": [_json_value(value) for value in head],
                 "annotation": annotation_form(annotation)}
                for head, annotation in rows
            ],
        }, ensure_ascii=False))
        return 0
    print(f"{len(rows)} answer(s) over {semiring.name} "
          f"({instance.fact_count()} facts)")
    if not rows:
        print("no answers (all annotations are 0)")
        return 0
    for head, annotation in rows:
        print(f"  {head} ↦ {annotation!r}")
    return 0


def _cmd_lint(args) -> int:
    from .lint import render_json, render_text, run_lint

    def patterns(raw: str | None) -> list[str] | None:
        if raw is None:
            return None
        return [part.strip() for part in raw.split(",") if part.strip()]

    try:
        report = run_lint(args.paths or None,
                          select=patterns(args.select),
                          ignore=patterns(args.ignore),
                          with_stats=args.stats)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(render_json(report), ensure_ascii=False))
    else:
        print(render_text(report, stats=args.stats))
    return report.exit_code


def _cmd_falsify(args) -> int:
    import random

    from .core.axiom_search import (admissible_probe_polynomials,
                                    falsify_nhcov, falsify_nin,
                                    falsify_nk_bi, falsify_nk_hcov,
                                    falsify_nsur, probe_polynomials)

    semiring = args.engine.semiring(args.semiring)
    if not semiring.properties.poly_order_decidable:
        print(f"error: {semiring.name} has no decidable polynomial order; "
              "the axiom search needs poly_leq", file=sys.stderr)
        return 1
    rng = random.Random(args.seed)
    probes = probe_polynomials(rng)
    admissible = admissible_probe_polynomials(rng)
    searches = {
        "nhcov": lambda: falsify_nhcov(semiring),
        "nin": lambda: falsify_nin(semiring, admissible),
        "nsur": lambda: falsify_nsur(semiring, admissible),
        "n1hcov": lambda: falsify_nk_hcov(semiring, 1, probes),
        "n2hcov": lambda: falsify_nk_hcov(semiring, 2, probes),
        "n1bi": lambda: falsify_nk_bi(semiring, 1, probes),
        "ninf_bi": lambda: falsify_nk_bi(semiring, float("inf"), probes),
    }
    names = [args.axiom] if args.axiom else sorted(searches)
    for name in names:
        if name not in searches:
            print(f"error: unknown axiom {name!r}; choose from "
                  f"{sorted(searches)}", file=sys.stderr)
            return 1
        violation = searches[name]()
        if violation is None:
            print(f"  {name:8s}: no violation found (bounded search)")
        else:
            print(f"  {name:8s}: VIOLATED — {violation.left!r} ≼ "
                  f"{violation.right!r} ({violation.detail})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Annotation-semiring query containment "
                    "(Kostylev-Reutter-Salamon, PODS 2012)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "semirings", help="list registered semirings and their classes"
    ).set_defaults(func=_cmd_semirings)

    classify_cmd = commands.add_parser(
        "classify", help="show every class membership of one semiring")
    classify_cmd.add_argument("semiring")
    classify_cmd.set_defaults(func=_cmd_classify)

    contain = commands.add_parser(
        "contain", help="decide Q1 ⊆K Q2 (repeat --q1/--q2 for unions)")
    contain.add_argument("--semiring", required=True)
    contain.add_argument("--q1", action="append", required=True)
    contain.add_argument("--q2", action="append", required=True)
    contain.add_argument("--json", action="store_true",
                         help="print the verdict document as JSON")
    contain.add_argument("--explain", action="store_true",
                         help="re-check certificates / search for a "
                              "semantic witness")
    contain.set_defaults(func=_cmd_contain)

    batch = commands.add_parser(
        "batch", help="stream JSONL requests in, JSONL verdicts out")
    batch.add_argument("--input", default="-",
                       help="JSONL request file ('-' for stdin)")
    batch.add_argument("--output", default="-",
                       help="JSONL verdict file ('-' for stdout)")
    batch.add_argument("--workers", type=int, default=1,
                       help="decide across N engine processes (default 1: "
                            "in-process); identical requests share a "
                            "worker's caches and output order is preserved")
    batch.add_argument("--snapshot", metavar="PATH",
                       help="warm-start caches from PATH if it exists and "
                            "write the run's caches back to it at the end")
    batch.add_argument("--snapshot-verdicts", action="store_true",
                       help="include the verdict cache in the snapshot "
                            "(warmed runs then answer repeats with "
                            "cached=true instead of recomputing)")
    batch.add_argument("--stats", action="store_true",
                       help="print engine cache stats to stderr at the end")
    batch.set_defaults(func=_cmd_batch)

    serve = commands.add_parser(
        "serve", help="long-lived JSONL decision service (stdio or TCP)")
    serve.add_argument("--workers", type=int, default=1,
                       help="decide across N engine processes (default 1)")
    serve.add_argument("--snapshot", metavar="PATH",
                       help="warm-start from PATH and flush caches back "
                            "to it (periodically and at shutdown)")
    serve.add_argument("--snapshot-verdicts", action="store_true",
                       help="include the verdict cache in snapshot flushes")
    serve.add_argument("--flush-every", type=int, default=500,
                       metavar="N",
                       help="flush the snapshot every N decisions "
                            "(default 500; 0 disables)")
    serve.add_argument("--flush-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="also flush the snapshot on a timer "
                            "(default 0: disabled)")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="asyncio TCP gateway: per-connection "
                            "pipelining, bounded admission with load "
                            "shedding, per-request deadlines (requires "
                            "--tcp; always runs a supervised worker pool)")
    serve.add_argument("--deadline", type=float, default=0.0,
                       metavar="SECONDS",
                       help="per-request deadline for --async; an "
                            "expired request is answered in-band with "
                            "an 'expired' error (default: no deadline)")
    serve.add_argument("--queue-limit", type=int, default=256, metavar="N",
                       help="max decisions admitted at once under "
                            "--async; excess requests are shed with an "
                            "in-band 'overloaded' response (default 256)")
    serve.add_argument("--max-line-bytes", type=int, default=1_000_000,
                       metavar="N",
                       help="bound on one JSONL input line; longer "
                            "lines are answered in-band as 'oversized' "
                            "instead of buffered (0 disables; default 1MB)")
    serve.add_argument("--no-respawn", action="store_true",
                       help="disable worker supervision: a crashed "
                            "worker's shard stays dead instead of being "
                            "respawned from the snapshot")
    serve.add_argument("--tcp", metavar="[HOST:]PORT",
                       help="serve over TCP instead of stdin/stdout "
                            "(port 0 picks a free port)")
    serve.add_argument("--stats", action="store_true",
                       help="print served/error counts to stderr at exit")
    serve.set_defaults(func=_cmd_serve)

    minimize = commands.add_parser(
        "minimize", help="remove atoms while preserving K-equivalence")
    minimize.add_argument("--semiring", required=True)
    minimize.add_argument("query")
    minimize.set_defaults(func=_cmd_minimize)

    evaluate_cmd = commands.add_parser(
        "evaluate", help="evaluate a query over --fact annotations")
    evaluate_cmd.add_argument("--semiring", required=True)
    evaluate_cmd.add_argument("--fact", action="append")
    evaluate_cmd.add_argument("query")
    evaluate_cmd.set_defaults(func=_cmd_evaluate)

    eval_cmd = commands.add_parser(
        "eval", help="evaluate a query columnar-ly over an annotated "
                     "CSV instance")
    eval_cmd.add_argument("--semiring", required=True)
    eval_cmd.add_argument("--query", action="append", required=True,
                          help="CQ source text (repeat for a union)")
    eval_cmd.add_argument("--instance", required=True, metavar="FILE",
                          help="annotated CSV: relation, v1, …, vk, "
                               "annotation")
    eval_cmd.add_argument("--json", action="store_true",
                          help="print the answer table as JSON")
    eval_cmd.set_defaults(func=_cmd_eval)

    lint = commands.add_parser(
        "lint", help="run the project invariant checker "
                     "(RL001–RL005, RL101–RL104)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    lint.add_argument("--select", metavar="PATTERNS",
                      help="comma-separated rule patterns to run "
                           "(exact ids, RL1*, or X wildcards like "
                           "RL00X,RL1XX)")
    lint.add_argument("--ignore", metavar="PATTERNS",
                      help="comma-separated rule patterns to skip")
    lint.add_argument("--stats", action="store_true",
                      help="print per-rule wall-clock timings")
    lint.set_defaults(func=_cmd_lint)

    falsify = commands.add_parser(
        "falsify", help="probe the necessary-class axioms of a semiring")
    falsify.add_argument("semiring")
    falsify.add_argument("--axiom", help="one of nhcov/nin/nsur/n1hcov/"
                                         "n2hcov/n1bi/ninf_bi (default all)")
    falsify.add_argument("--seed", type=int, default=11)
    falsify.set_defaults(func=_cmd_falsify)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:  # argparse errors (e.g. missing --q1)
        return exit_.code if isinstance(exit_.code, int) else 1
    args.engine = ContainmentEngine()
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the stream (e.g. `repro batch | head`):
        # normal termination for a filter, not an error.  Point stdout
        # at devnull so the interpreter's shutdown flush stays quiet.
        import os
        devnull = os.open(os.devnull, os.O_WRONLY)
        try:
            os.dup2(devnull, sys.stdout.fileno())
        finally:
            os.close(devnull)
        return 0
    except (ParseError, ValueError, KeyError, OSError) as error:
        from .api import error_text
        print(f"error: {error_text(error)}", file=sys.stderr)
        return 1
