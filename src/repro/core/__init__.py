"""Classification and containment decision procedures (Table 1)."""

from .axiom_search import (AxiomViolation, admissible_probe_polynomials,
                           falsify_nhcov, falsify_nin, falsify_nk_bi,
                           falsify_nk_hcov, falsify_nsur,
                           probe_polynomials)
from .classes import Classification, classify
from .containment import (decide_cq_containment, decide_ucq_containment,
                          k_equivalent)
from .context import DEFAULT_CONTEXT, DecisionContext
from .explain import (Explanation, check_homomorphism_certificate, explain)
from .small_model import small_model_contained, small_model_tests
from .verdict import Undecided, Verdict

__all__ = [
    "AxiomViolation", "Classification", "DEFAULT_CONTEXT",
    "DecisionContext", "Undecided", "Verdict",
    "Explanation", "admissible_probe_polynomials",
    "check_homomorphism_certificate", "classify", "explain",
    "falsify_nhcov", "falsify_nin", "falsify_nk_bi", "falsify_nk_hcov",
    "falsify_nsur", "probe_polynomials",
    "decide_cq_containment", "decide_ucq_containment", "k_equivalent",
    "small_model_contained", "small_model_tests",
]
