"""Executable necessary-class axioms (Secs. 4.1–5.4).

The paper defines the necessary classes through universally quantified
conditions on polynomials, e.g. ``Nhcov``: for every ``n, k ≥ 1``

    ``x1 × … × xn × y  ⋠K  (x1 + … + xn)^k``.

For semirings with a decidable polynomial order (``poly_leq``) these
axioms become *checkable*: this module probes them over bounded
parameter ranges and probe-polynomial pools, returning either a
concrete **violation certificate** — the polynomial pair witnessing
that the semiring falls outside the class — or a clean bounded report.

This is how the library discovered that the saturating bag semiring
``N₂`` is *not* in the covering-necessity classes (``r·s ≼N₂ r + r``
although the right side drops ``s``), which forced the ``C2hcov``
representative to be the product ``Lin[X] × N₂`` (see DESIGN.md).

A bounded pass can *refute* membership (any violation disproves the
universal axiom) but can only *support* it; the registry's declared
flags remain the source of truth for the dispatcher, and the test suite
requires every declared-False flag of an order-decidable semiring to be
refutable by this module.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from ..data.canonical import canonical_instance
from ..polynomials.polynomial import Monomial, Polynomial
from ..queries.evaluation import evaluate
from ..queries.generators import random_cq

__all__ = [
    "AxiomViolation",
    "falsify_nhcov",
    "falsify_nin",
    "falsify_nsur",
    "falsify_nk_hcov",
    "falsify_nk_bi",
    "admissible_probe_polynomials",
    "probe_polynomials",
]


@dataclass(frozen=True)
class AxiomViolation:
    """A concrete witness that a necessary-class axiom fails.

    ``axiom`` names the class, ``left ≼ right`` is the inequality that
    holds although the axiom forbids it (or whose required conclusion
    about ``right`` fails), and ``detail`` explains which conclusion
    broke.
    """

    axiom: str
    left: Polynomial
    right: Polynomial
    detail: str

    def __repr__(self) -> str:
        return (f"AxiomViolation({self.axiom}: {self.left!r} ≼ "
                f"{self.right!r} — {self.detail})")


def _variables(n: int) -> list[str]:
    return [f"x{i}" for i in range(1, n + 1)]


def falsify_nhcov(semiring, max_n: int = 3,
                  max_k: int = 3) -> AxiomViolation | None:
    """Search for ``x1⋯xn·y ≼K (x1+…+xn)^k`` (refuting ``Nhcov``)."""
    for n in range(1, max_n + 1):
        names = _variables(n)
        product = Polynomial.from_monomial(
            Monomial.from_variables(names + ["y"]))
        total = Polynomial(
            ((Monomial.variable(name), 1) for name in names))
        for k in range(1, max_k + 1):
            power = total.power(k)
            if semiring.poly_leq(product, power):
                return AxiomViolation(
                    "Nhcov", product, power,
                    f"covering axiom fails at n={n}, k={k}")
    return None


def _squarefree_submonomial(poly: Polynomial,
                            names: Iterable[str]) -> Monomial | None:
    """A monomial of ``poly`` that is a product of distinct variables
    from ``names`` (the Nin conclusion), or None."""
    names = set(names)
    for mono, _ in poly.items():
        if mono.is_squarefree() and mono.variables() <= names \
                and not mono.is_unit():
            return mono
    return None


def _full_support_monomial(poly: Polynomial,
                           names: Iterable[str]) -> Monomial | None:
    """A monomial of ``poly`` using exactly the variables ``names`` with
    positive exponents (the Nsur conclusion), or None."""
    names = set(names)
    for mono, _ in poly.items():
        if mono.variables() == names:
            return mono
    return None


def falsify_nin(semiring, probes: Iterable[Polynomial],
                max_n: int = 2) -> AxiomViolation | None:
    """Refute ``Nin``: find CQ-admissible ``P`` and variables with
    ``x1⋯xn ≼K P`` but no square-free sub-monomial in ``P``."""
    return _falsify_monomial_axiom(
        semiring, probes, max_n, "Nin", _squarefree_submonomial)


def falsify_nsur(semiring, probes: Iterable[Polynomial],
                 max_n: int = 2) -> AxiomViolation | None:
    """Refute ``Nsur``: ``x1⋯xn ≼K P`` without a full-support monomial."""
    return _falsify_monomial_axiom(
        semiring, probes, max_n, "Nsur", _full_support_monomial)


def _falsify_monomial_axiom(semiring, probes, max_n, axiom, conclusion):
    for poly in probes:
        universe = sorted(poly.variables() | {"y0"})
        for n in range(1, max_n + 1):
            for names in combinations(universe, n):
                product = Polynomial.from_monomial(
                    Monomial.from_variables(names))
                if not semiring.poly_leq(product, poly):
                    continue
                if conclusion(poly, names) is None:
                    return AxiomViolation(
                        axiom, product, poly,
                        f"≼ holds but the {axiom} conclusion fails for "
                        f"variables {names}")
    return None


def falsify_nk_hcov(semiring, k: int, probes: Iterable[Polynomial],
                    max_n: int = 2,
                    max_ell: int = 3) -> AxiomViolation | None:
    """Refute ``Nkhcov`` (Prop. 5.22): ``ℓ(x1⋯xn) ≼K P`` must imply
    that ``P`` uses all the variables and carries at least ``min(ℓ,k)``
    monomials (with multiplicity)."""
    for poly in probes:
        if poly.constant_term():
            continue
        universe = sorted(poly.variables() | {"y0"})
        for n in range(1, max_n + 1):
            for names in combinations(universe, n):
                base = Polynomial.from_monomial(
                    Monomial.from_variables(names))
                for ell in range(1, max_ell + 1):
                    scaled = base.scale(ell)
                    if not semiring.poly_leq(scaled, poly):
                        continue
                    used = frozenset().union(
                        *(m.variables() for m, _ in poly.items()))
                    if not set(names) <= used:
                        return AxiomViolation(
                            f"N{k}hcov", scaled, poly,
                            f"≼ holds but {set(names) - used} unused")
                    if poly.total_multiplicity() < min(ell, k):
                        return AxiomViolation(
                            f"N{k}hcov", scaled, poly,
                            f"≼ holds with only "
                            f"{poly.total_multiplicity()} < min({ell},{k}) "
                            "monomials")
    return None


def falsify_nk_bi(semiring, k: float, probes: Iterable[Polynomial],
                  max_ell: int = 3) -> AxiomViolation | None:
    """Refute the ``Nkbi``/``C∞bi`` axiom: ``ℓ·M ≼K P`` must give ``M``
    a coefficient of at least ``min(ℓ, k)`` in ``P`` (Sec. 5.2; the
    ``k = ∞`` case is the paper's ``C∞bi`` condition verbatim)."""
    seen_monomials: set[Monomial] = set()
    for poly in probes:
        seen_monomials.update(poly.monomials())
    candidates = sorted(seen_monomials) or [Monomial.variable("x1")]
    for poly in probes:
        if poly.constant_term():
            continue
        for mono in candidates:
            if mono.is_unit():
                continue
            for ell in range(1, max_ell + 1):
                scaled = Polynomial.from_monomial(mono, ell)
                if not semiring.poly_leq(scaled, poly):
                    continue
                required = ell if k == float("inf") else min(ell, int(k))
                if poly.coefficient(mono) < required:
                    return AxiomViolation(
                        f"N{'∞' if k == float('inf') else int(k)}bi",
                        scaled, poly,
                        f"≼ holds but coeff({mono!r}) = "
                        f"{poly.coefficient(mono)} < {required}")
    return None


def probe_polynomials(rng: random.Random, count: int = 40,
                      variables: tuple[str, ...] = ("x1", "x2"),
                      max_terms: int = 3,
                      max_degree: int = 2,
                      max_coeff: int = 3) -> list[Polynomial]:
    """Random small polynomials without constant terms."""
    probes = [
        # the pairs behind the paper's running examples:
        Polynomial.parse_terms([(1, ("x1", "x1")), (1, ("x2", "x2"))]),
        Polynomial.parse_terms([(2, ("x1",))]),
        Polynomial.parse_terms([(1, ("x1",)), (1, ("x2",))]),
        Polynomial.parse_terms([(1, ("x1", "x2"))]),
    ]
    for _ in range(count):
        terms = []
        for _ in range(rng.randint(1, max_terms)):
            degree = rng.randint(1, max_degree)
            word = tuple(rng.choice(variables) for _ in range(degree))
            terms.append((Monomial.from_variables(word),
                          rng.randint(1, max_coeff)))
        probes.append(Polynomial(terms))
    return probes


def admissible_probe_polynomials(rng: random.Random,
                                 count: int = 30) -> list[Polynomial]:
    """CQ-admissible probes: evaluations of random CQs over canonical
    instances (admissible by Def. 4.7)."""
    from ..semirings.provenance import NX

    probes = [
        # Ex. 4.6's canonical polynomials:
        Polynomial.parse_terms([(1, ("z1", "z1")), (1, ("z2", "z2"))]),
        Polynomial.parse_terms(
            [(1, ("z1", "z1")), (2, ("z1", "z2")), (1, ("z2", "z2"))]),
    ]
    while len(probes) < count:
        shape = random_cq(rng, max_atoms=2, max_vars=2)
        query = random_cq(rng, max_atoms=2, max_vars=2)
        tagged = canonical_instance(shape)
        poly = evaluate(query, tagged.instance, (), NX)
        if not poly.is_zero():
            probes.append(poly)
    return probes
