"""The semiring class taxonomy of Table 1.

Sufficient classes are defined by (in)equational axioms on the semiring:

* ``Shcov`` — ⊗-idempotence          (covering is sufficient, Prop. 4.1)
* ``Sin``   — 1-annihilation         (injective sufficient, Prop. 4.5)
* ``Ssur``  — ⊗-semi-idempotence     (surjective sufficient, Prop. 4.12)
* ``S¹/Sk`` — ⊕-idempotence / offset (UCQ locality, Prop. 5.1/5.12)

Necessary classes (``Nhcov``, ``Nin``, ``Nsur``, ``N¹in`` …) are defined
through conditions on (CQ-admissible) polynomials and are declared on
each semiring's :class:`~repro.semirings.base.SemiringProperties`.

The decidable classes are the intersections; this module computes them
all from a properties record, yielding the dispatch table used by
:mod:`repro.core.containment`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..semirings.base import Semiring, SemiringProperties

__all__ = ["Classification", "classify"]


@dataclass(frozen=True)
class Classification:
    """All Table-1 class memberships of one semiring."""

    name: str
    offset: float

    # Sufficient (axiomatic) classes.
    s_hcov: bool
    s_in: bool
    s_sur: bool
    s1: bool

    # CQ-level decidable classes.
    c_hom: bool
    c_hcov: bool
    c_in: bool
    c_sur: bool
    c_bi: bool

    # UCQ-level decidable classes.
    c1_in: bool
    c1_hcov: bool
    c2_hcov: bool
    c1_sur: bool
    c_inf_sur: bool
    c1_bi: bool
    ck_bi: bool
    c_inf_bi: bool

    # Small-model availability (Thm. 4.17 + Prop. 4.19).
    small_model: bool

    def cq_exact_class(self) -> str | None:
        """Name of the class whose CQ procedure decides containment, in
        dispatch priority order; None when only bounds exist."""
        for name, member in (
            ("Chom", self.c_hom),
            ("Chcov", self.c_hcov),
            ("Cin", self.c_in),
            ("Csur", self.c_sur),
            ("Cbi", self.c_bi),
        ):
            if member:
                return name
        return None

    def ucq_exact_class(self) -> str | None:
        """Name of the class whose UCQ procedure decides containment."""
        for name, member in (
            ("Chom", self.c_hom),
            ("C1in", self.c1_in),
            ("C1hcov", self.c1_hcov),
            ("C2hcov", self.c2_hcov),
            ("C1sur", self.c1_sur),
            ("C∞sur", self.c_inf_sur),
            ("C1bi", self.c1_bi),
            ("Ckbi", self.ck_bi),
            ("C∞bi", self.c_inf_bi),
        ):
            if member:
                return name
        return None

    def memberships(self) -> dict[str, bool]:
        """All class flags as a name → bool map (for reports)."""
        return {
            "Shcov": self.s_hcov, "Sin": self.s_in, "Ssur": self.s_sur,
            "S1": self.s1,
            "Chom": self.c_hom, "Chcov": self.c_hcov, "Cin": self.c_in,
            "Csur": self.c_sur, "Cbi": self.c_bi,
            "C1in": self.c1_in, "C1hcov": self.c1_hcov,
            "C2hcov": self.c2_hcov, "C1sur": self.c1_sur,
            "C∞sur": self.c_inf_sur, "C1bi": self.c1_bi,
            "Ckbi": self.ck_bi, "C∞bi": self.c_inf_bi,
            "small-model": self.small_model,
        }


def classify(semiring: Semiring | SemiringProperties,
             name: str | None = None) -> Classification:
    """Compute every Table-1 class membership for a semiring.

    Accepts either a semiring instance or a bare properties record.
    """
    if isinstance(semiring, Semiring):
        props = semiring.properties
        name = name or semiring.name
    else:
        props = semiring
        name = name or "K"
    s_hcov = props.mul_idempotent
    s_in = props.one_annihilating
    s_sur = props.mul_semi_idempotent or s_hcov
    s1 = props.add_idempotent
    finite_offset = not math.isinf(props.offset)
    return Classification(
        name=name,
        offset=props.offset,
        s_hcov=s_hcov,
        s_in=s_in,
        s_sur=s_sur,
        s1=s1,
        c_hom=s_hcov and s_in,
        c_hcov=s_hcov and props.in_nhcov,
        c_in=s_in and props.in_nin,
        c_sur=s_sur and props.in_nsur,
        c_bi=props.in_nin and props.in_nsur,
        c1_in=s_in and props.in_n1in,
        c1_hcov=s_hcov and s1 and props.in_n1hcov,
        c2_hcov=s_hcov and props.in_n2hcov,
        # ։1-sufficiency comes from Prop. 5.1, which needs ⊕-idempotence
        # (Sin ⊆ S¹ makes the analogous requirement vacuous for C1in).
        c1_sur=s_sur and s1 and props.in_n1sur,
        c_inf_sur=s_sur and props.in_ninf_sur,
        c1_bi=s1 and props.in_n1bi,
        ck_bi=finite_offset and props.offset >= 2 and props.in_nk_bi,
        c_inf_bi=props.in_ninf_bi,
        small_model=s1 and props.poly_order_decidable,
    )
