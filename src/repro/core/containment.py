"""Top-level containment decision procedures (the paper's Table 1).

:func:`decide_cq_containment` and :func:`decide_ucq_containment` answer
``Q1 ⊆K Q2`` for any registered semiring by dispatching on its
classification:

=========  ==========================================  ==============
class      CQ procedure                                UCQ procedure
=========  ==========================================  ==============
Chom       homomorphism ``Q2 → Q1``                    local ``→``
Chcov      homomorphic covering ``Q2 ⇉ Q1``            —
C1/2hcov   —                                           ``⇉1`` / ``⟨⟩⇉2⟨⟩``
Cin/C1in   injective ``Q2 →֒ Q1``                       local ``→֒``
Csur       surjective ``Q2 ։ Q1``                      ``։1`` / ``⟨⟩։∞⟨⟩``
Cbi        bijective ``Q2 →֒→ Q1``                      ``→֒1/→֒k/→֒∞``
S¹+order   small model (Thm. 4.17)                     small model
=========  ==========================================  ==============

For semirings outside every decidable class (bag semantics ``N``,
``R+``) the verdict reports the strongest applicable bounds: a failed
necessary condition still *refutes*, a satisfied sufficient condition
still *confirms*, and otherwise the verdict is honestly undecided —
which for ``N`` is exactly the open-problem / undecidability frontier
the paper describes.
"""

from __future__ import annotations

import math

from ..homomorphisms.covering import covers
from ..homomorphisms.search import HomKind
from ..homomorphisms.ucq_conditions import (bi_count_infty, bi_count_k,
                                            covering_2, covering_union,
                                            local_condition, sur_infty)
from ..queries.cq import CQ
from ..queries.ucq import UCQ, as_ucq
from .classes import Classification
from .context import DEFAULT_CONTEXT, DecisionContext
from .small_model import small_model_contained
from .verdict import Verdict

__all__ = ["decide_cq_containment", "decide_ucq_containment", "k_equivalent"]


def _check_arity(q1, q2) -> None:
    if q1.arity != q2.arity:
        raise ValueError(
            f"containment compares queries of equal arity, got "
            f"{q1.arity} and {q2.arity}")


def decide_cq_containment(q1: CQ, q2: CQ, semiring, *,
                          context: DecisionContext | None = None) -> Verdict:
    """Decide ``Q1 ⊆K Q2`` for conjunctive queries.

    ``context`` optionally reroutes classification and homomorphism
    search (e.g. through the caches of an
    :class:`repro.api.ContainmentEngine`).
    """
    if not isinstance(q1, CQ) or not isinstance(q2, CQ):
        raise TypeError("decide_cq_containment expects CQs; use "
                        "decide_ucq_containment for unions")
    _check_arity(q1, q2)
    ctx = context or DEFAULT_CONTEXT
    cls = ctx.classify(semiring)

    # A plain homomorphism Q2 → Q1 is necessary over EVERY positive
    # semiring (Sec. 3.3), giving a universal fast refutation.
    witness = ctx.find_homomorphism(q2, q1, HomKind.PLAIN)
    if witness is None:
        return Verdict(False, "no-homomorphism",
                       explanation="no homomorphism Q2 → Q1 exists, which "
                                   "is necessary over every positive "
                                   "semiring")

    if cls.c_hom:
        return Verdict(True, "homomorphism", certificate=witness,
                       explanation=f"{semiring.name} ∈ Chom (Thm. 3.3)")
    if cls.c_hcov:
        holds = covers(q2, q1, context=ctx)
        return Verdict(holds, "homomorphic-covering",
                       explanation=f"{semiring.name} ∈ Chcov (Thm. 4.3)")
    if cls.c_in:
        mapping = ctx.find_homomorphism(q2, q1, HomKind.INJECTIVE)
        return Verdict(mapping is not None, "injective-homomorphism",
                       certificate=mapping,
                       explanation=f"{semiring.name} ∈ Cin (Thm. 4.9)")
    if cls.c_sur:
        mapping = ctx.find_homomorphism(q2, q1, HomKind.SURJECTIVE)
        return Verdict(mapping is not None, "surjective-homomorphism",
                       certificate=mapping,
                       explanation=f"{semiring.name} ∈ Csur (Thm. 4.14)")
    if cls.c_bi:
        mapping = ctx.find_homomorphism(q2, q1, HomKind.BIJECTIVE)
        return Verdict(mapping is not None, "bijective-homomorphism",
                       certificate=mapping,
                       explanation=f"{semiring.name} ∈ Cbi (Thm. 4.10)")
    # No CQ-specific characterization: the UCQ machinery (on singleton
    # unions) and the small-model procedure still apply.
    return decide_ucq_containment(UCQ((q1,)), UCQ((q2,)), semiring,
                                  context=ctx)


def decide_ucq_containment(q1, q2, semiring, *,
                           context: DecisionContext | None = None) -> Verdict:
    """Decide ``Q1 ⊆K Q2`` for unions of conjunctive queries.

    ``context`` is forwarded as in :func:`decide_cq_containment`.
    """
    q1, q2 = as_ucq(q1), as_ucq(q2)
    if not q1.is_empty() and not q2.is_empty():
        _check_arity(q1, q2)
    ctx = context or DEFAULT_CONTEXT
    cls = ctx.classify(semiring)

    if q1.is_empty():
        return Verdict(True, "empty-union",
                       explanation="∅ ⊆K Q holds by requirement (C3)")

    # Universal fast refutation: each member of Q1 needs some member of
    # Q2 with a plain homomorphism to it (evaluate both sides on the
    # canonical instance of the uncovered member, all annotations 1).
    if not local_condition(q2, q1, HomKind.PLAIN, context=ctx):
        return Verdict(False, "no-local-homomorphism",
                       explanation="some member of Q1 admits no "
                                   "homomorphism from any member of Q2; "
                                   "necessary over every positive semiring")

    if cls.c_hom:
        return Verdict(True, "local-homomorphism",
                       explanation=f"{semiring.name} ∈ Chom (Thm. 5.2)")
    if cls.c1_in:
        holds = local_condition(q2, q1, HomKind.INJECTIVE, context=ctx)
        return Verdict(holds, "local-injective",
                       explanation=f"{semiring.name} ∈ C1in (Thm. 5.6)")
    if cls.c1_hcov:
        holds = covering_union(q2, q1, context=ctx)
        return Verdict(holds, "union-covering",
                       explanation=f"{semiring.name} ∈ C1hcov "
                                   "(Thm. 5.24, k = 1)")
    if cls.c2_hcov:
        holds = covering_2(q2, q1, context=ctx)
        return Verdict(holds, "union-covering-2",
                       explanation=f"{semiring.name} ∈ C2hcov "
                                   "(Thm. 5.24, k = 2)")
    if cls.c1_sur:
        holds = local_condition(q2, q1, HomKind.SURJECTIVE, context=ctx)
        return Verdict(holds, "local-surjective",
                       explanation=f"{semiring.name} ∈ C1sur (Cor. 5.18)")
    if cls.c_inf_sur:
        holds = sur_infty(q2, q1, context=ctx)
        return Verdict(holds, "sur-infty-matching",
                       explanation=f"{semiring.name} ∈ C∞sur (Thm. 5.17)")
    if cls.c1_bi:
        holds = local_condition(q2, q1, HomKind.BIJECTIVE, context=ctx)
        return Verdict(holds, "local-bijective",
                       explanation=f"{semiring.name} ∈ C1bi "
                                   "(Thm. 5.13, k = 1)")
    if cls.ck_bi:
        holds = bi_count_k(q2, q1, cls.offset, context=ctx)
        return Verdict(holds, "bi-count-k",
                       explanation=f"{semiring.name} ∈ Ckbi "
                                   f"(Thm. 5.13, k = {int(cls.offset)})")
    if cls.c_inf_bi:
        holds = bi_count_infty(q2, q1, context=ctx)
        return Verdict(holds, "bi-count-infty",
                       explanation=f"{semiring.name} ∈ C∞bi (Prop. 5.10 / "
                                   "Prop. 5.9)")
    if cls.small_model:
        holds = small_model_contained(q1, q2, semiring, context=ctx)
        return Verdict(holds, "small-model",
                       explanation=f"{semiring.name}: canonical-instance "
                                   "polynomial comparison (Thm. 4.17)")
    return _bounded_verdict(q1, q2, semiring, cls, ctx)


def _bounded_verdict(q1: UCQ, q2: UCQ, semiring, cls: Classification,
                     ctx: DecisionContext) -> Verdict:
    """Best-effort verdict from the known necessary and sufficient
    conditions when no exact procedure exists (e.g. bag semantics)."""
    props = semiring.properties

    necessary: list[tuple[str, bool]] = []
    if props.in_n2hcov:
        necessary.append(("⟨Q2⟩ ⇉2 ⟨Q1⟩ (Cor. 5.23)",
                          covering_2(q2, q1, context=ctx)))
    elif props.in_n1hcov or props.in_nhcov:
        necessary.append(("Q2 ⇉1 Q1", covering_union(q2, q1, context=ctx)))
    if props.in_nsur:
        necessary.append(
            ("։1 locally", local_condition(q2, q1, HomKind.SURJECTIVE,
                                           context=ctx)))
    if props.in_nin:
        necessary.append(
            ("→֒ locally", local_condition(q2, q1, HomKind.INJECTIVE,
                                           context=ctx)))
    for description, holds in necessary:
        if not holds:
            return Verdict(False, "necessary-condition",
                           certificate=description,
                           explanation=f"necessary condition failed: "
                                       f"{description}")

    sufficient: list[tuple[str, bool]] = []
    if cls.s_sur:
        sufficient.append(("⟨Q2⟩ ։∞ ⟨Q1⟩ (Cor. 5.16)",
                           sur_infty(q2, q1, context=ctx)))
    if cls.s_hcov:
        k = 1 if cls.s1 else 2
        condition = (covering_union(q2, q1, context=ctx) if k == 1
                     else covering_2(q2, q1, context=ctx))
        sufficient.append((f"⇉{k} (Prop. 5.21)", condition))
    if cls.s_in:
        sufficient.append(
            ("→֒ locally", local_condition(q2, q1, HomKind.INJECTIVE,
                                           context=ctx)))
    offset = cls.offset
    k_label = "∞" if math.isinf(offset) else str(int(offset))
    sufficient.append(
        (f"⟨Q2⟩ →֒{k_label} ⟨Q1⟩ (Prop. 5.12)",
         bi_count_k(q2, q1, offset, context=ctx)))
    for description, holds in sufficient:
        if holds:
            return Verdict(True, "sufficient-condition",
                           certificate=description,
                           explanation=f"sufficient condition holds: "
                                       f"{description}")

    return Verdict(
        None, "bounds-only",
        sufficient=False,
        necessary=True,
        explanation=f"{semiring.name} lies in no decidable class; all "
                    "known necessary conditions hold and all known "
                    "sufficient conditions fail — the gap is the open "
                    "problem / undecidability frontier of the paper",
    )


def k_equivalent(q1, q2, semiring, *,
                 context: DecisionContext | None = None) -> Verdict:
    """Decide ``Q1 ≡K Q2`` via mutual containment (requirement (C2))."""
    forward = (decide_cq_containment(q1, q2, semiring, context=context)
               if isinstance(q1, CQ) and isinstance(q2, CQ)
               else decide_ucq_containment(q1, q2, semiring,
                                           context=context))
    if forward.result is False:
        return Verdict(False, forward.method, certificate=forward.certificate,
                       explanation=f"Q1 ⊆K Q2 fails: {forward.explanation}")
    backward = (decide_cq_containment(q2, q1, semiring, context=context)
                if isinstance(q1, CQ) and isinstance(q2, CQ)
                else decide_ucq_containment(q2, q1, semiring,
                                            context=context))
    if backward.result is False:
        return Verdict(False, backward.method,
                       certificate=backward.certificate,
                       explanation=f"Q2 ⊆K Q1 fails: {backward.explanation}")
    if forward.result and backward.result:
        return Verdict(True, f"{forward.method}+{backward.method}",
                       explanation="both containments hold")
    return Verdict(None, "bounds-only",
                   explanation="one direction is undecided")
