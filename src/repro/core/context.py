"""Pluggable primitive-operation provider for the decision procedures.

The Table-1 dispatch in :mod:`repro.core.containment` is built from two
expensive primitives: semiring classification and homomorphism search.
:class:`DecisionContext` routes both through one object so callers (most
notably :class:`repro.api.ContainmentEngine`) can interpose caches
without the core procedures knowing anything about caching policy.  The
default context simply delegates to the plain functions, so existing
call sites are unaffected.
"""

from __future__ import annotations

from ..homomorphisms.search import HomKind, find_homomorphism
from .classes import Classification, classify

__all__ = ["DecisionContext", "DEFAULT_CONTEXT"]


class DecisionContext:
    """Provides classification and homomorphism search to the dispatch.

    Subclasses may memoize; implementations must be semantically
    transparent (same answers as the plain functions).
    """

    def classify(self, semiring) -> Classification:
        """Compute (or recall) the Table-1 classification of a semiring."""
        return classify(semiring)

    def find_homomorphism(self, source, target, kind: HomKind):
        """Search for a ``kind`` homomorphism ``source → target``.

        Returns a variable mapping or ``None``, exactly like
        :func:`repro.homomorphisms.find_homomorphism`.
        """
        return find_homomorphism(source, target, kind)

    def has_homomorphism(self, source, target, kind: HomKind) -> bool:
        """Existence check derived from :meth:`find_homomorphism`."""
        return self.find_homomorphism(source, target, kind) is not None


#: Shared stateless default used when no context is supplied.
DEFAULT_CONTEXT = DecisionContext()
