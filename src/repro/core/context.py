"""Pluggable primitive-operation provider for the decision procedures.

The Table-1 dispatch in :mod:`repro.core.containment` is built from a
handful of expensive primitives: semiring classification, homomorphism
search (existence and enumeration), homomorphic covering, the complete
description ``⟨Q⟩`` of a UCQ, and the canonical form (isomorphism key,
canonical renaming, automorphism group size) of a CCQ.
:class:`DecisionContext` routes
all of them through one object so callers (most notably
:class:`repro.api.ContainmentEngine`) can interpose caches without the
core procedures knowing anything about caching policy.

Every Table-1 code path — the CQ dispatch, the UCQ local conditions,
the covering conditions ``⇉1``/``⇉2``, the counting conditions
``→֒k``/``→֒∞``, the matching condition ``։∞``, and the bag-semantics
bounds search — accepts a context, so an engine's LRUs see the whole
decision surface rather than just the top-level searches.

The default context delegates to the plain functions, memoizing only
the complete description: :func:`_bounded_verdict` evaluates several
conditions over the same ``⟨Q1⟩``/``⟨Q2⟩`` within a single verdict, and
recomputing the Bell-number expansion each time is pure waste even
without an engine.

Subclasses must be semantically transparent: same answers as the plain
functions, whatever the caching policy.
"""

from __future__ import annotations

from functools import lru_cache

from ..homomorphisms.canonical import CanonicalForm
from ..homomorphisms.canonical import canonical_form as _memoized_canonical_form
from ..homomorphisms.covering import covered_atoms
from ..homomorphisms.search import HomKind, find_homomorphism, homomorphisms
from ..queries.ccq import complete_description_ucq
from .classes import Classification, classify

__all__ = ["DecisionContext", "DEFAULT_CONTEXT"]


@lru_cache(maxsize=1024)
def _cached_description(union) -> tuple:
    """Process-wide memo of ``⟨Q⟩`` keyed by the (immutable) UCQ."""
    return complete_description_ucq(union)


class DecisionContext:
    """Provides the decision-procedure primitives to the dispatch.

    Subclasses may memoize; implementations must be semantically
    transparent (same answers as the plain functions).
    """

    def classify(self, semiring) -> Classification:
        """Compute (or recall) the Table-1 classification of a semiring."""
        return classify(semiring)

    def find_homomorphism(self, source, target, kind: HomKind):
        """Search for a ``kind`` homomorphism ``source → target``.

        Returns a variable mapping or ``None``, exactly like
        :func:`repro.homomorphisms.find_homomorphism`.
        """
        return find_homomorphism(source, target, kind)

    def has_homomorphism(self, source, target, kind: HomKind) -> bool:
        """Existence check derived from :meth:`find_homomorphism`."""
        return self.find_homomorphism(source, target, kind) is not None

    def homomorphism_mappings(self, source, target,
                              kind: HomKind) -> tuple[dict, ...]:
        """All ``kind`` homomorphisms ``source → target`` as a tuple
        (the deduplicated enumeration of
        :func:`repro.homomorphisms.homomorphisms`)."""
        return tuple(homomorphisms(source, target, kind))

    def covered_atoms(self, source, target) -> frozenset:
        """The target atoms reached by some homomorphic image
        (:func:`repro.homomorphisms.covered_atoms`)."""
        # The base context IS the computation — threading itself back
        # in would recurse forever.  # repro-lint: disable=RL001
        return covered_atoms(source, target)

    def covers(self, source, target) -> bool:
        """Homomorphic covering ``source ⇉ target``, derived from
        :meth:`covered_atoms`."""
        return len(self.covered_atoms(source, target)) == len(
            set(target.atoms))

    def complete_description(self, union) -> tuple:
        """The complete description ``⟨Q⟩`` of a UCQ (Sec. 5.2),
        memoized — queries are immutable, so the expansion is a pure
        function of the union."""
        return _cached_description(union)

    def canonical_form(self, query) -> CanonicalForm:
        """The canonical labeling record of a (C)CQ (Sec. 5.2).

        One :class:`~repro.homomorphisms.canonical.CanonicalForm`
        bundles the isomorphism key, the capture-free canonical
        renaming and the automorphism group size — the primitives the
        counting conditions ``→֒k``/``→֒∞`` and the ``⇉2`` exemption
        consume per CCQ of a complete description.  The default
        delegates to the process-wide memo of
        :func:`repro.homomorphisms.canonical.canonical_form`; engines
        override it with an observable, snapshot-persisted LRU.
        """
        return _memoized_canonical_form(query)

    def eval_plan(self, query):
        """The columnar evaluation plan of a CQ (:mod:`repro.eval`).

        Plans are pure functions of the (immutable) query, so the
        default delegates to the process-wide memo of
        :func:`repro.eval.plan.cached_plan`; engines override this with
        their snapshot-persisted ``eval_plans`` LRU so warm-started
        workers skip planning altogether.  Imported lazily — the core
        dispatch must stay importable without the eval subsystem's
        numpy dependency.
        """
        from ..eval.plan import cached_plan
        return cached_plan(query)

    def poly_leq(self, semiring, p1, p2) -> bool:
        """Decide the polynomial order ``P1 ≼K P2`` (Prop. 4.19).

        The small-model procedure (Thm. 4.17) issues every one of its
        canonical-instance comparisons through this hook, so an engine
        can memoize the LP-backed tropical decisions (as revalidated
        certificates keyed by canonical pair) — the last cold spot of
        the Table-1 surface.  The default delegates to
        :meth:`repro.semirings.base.Semiring.poly_leq` unchanged.
        """
        return semiring.poly_leq(p1, p2)


#: Shared stateless default used when no context is supplied.
DEFAULT_CONTEXT = DecisionContext()
