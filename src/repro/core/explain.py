"""Certificate checking and enriched containment explanations.

The dispatcher's verdicts carry certificates (homomorphism mappings).
This module makes them *independently checkable* — a reviewer need not
trust the search — and combines syntactic refutations with semantic
witnesses from the oracle into a single explanation object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..homomorphisms.search import HomKind
from ..oracle.brute_force import Counterexample, find_counterexample
from ..queries.cq import CQ
from .containment import decide_cq_containment, decide_ucq_containment
from .verdict import Verdict

__all__ = ["check_homomorphism_certificate", "Explanation", "explain"]


def check_homomorphism_certificate(source: CQ, target: CQ, mapping: dict,
                                   kind: HomKind = HomKind.PLAIN) -> bool:
    """Verify that ``mapping`` is a homomorphism of the given kind.

    Checks (1) totality on the source variables, (2) positional head
    preservation, (3) every atom image occurring in the target, and
    (4) the multiset condition of ``kind`` — without running any search.
    """
    for var in _all_variables(source):
        if var not in mapping:
            return False
    for var, image in zip(source.head, target.head):
        if mapping.get(var, var) != image:
            return False
    target_counts: dict[Any, int] = {}
    for atom in target.atoms:
        target_counts[atom] = target_counts.get(atom, 0) + 1
    image_counts: dict[Any, int] = {}
    for atom in source.atoms:
        image = atom.substitute(mapping)
        if image not in target_counts:
            return False
        image_counts[image] = image_counts.get(image, 0) + 1
    if kind in (HomKind.INJECTIVE, HomKind.BIJECTIVE):
        if any(count > target_counts[atom]
               for atom, count in image_counts.items()):
            return False
    if kind in (HomKind.SURJECTIVE, HomKind.BIJECTIVE):
        if any(image_counts.get(atom, 0) < count
               for atom, count in target_counts.items()):
            return False
    return True


def _all_variables(query: CQ):
    return {v for atom in query.atoms for v in atom.variables()}


_METHOD_KINDS = {
    "homomorphism": HomKind.PLAIN,
    "injective-homomorphism": HomKind.INJECTIVE,
    "surjective-homomorphism": HomKind.SURJECTIVE,
    "bijective-homomorphism": HomKind.BIJECTIVE,
}


@dataclass(frozen=True)
class Explanation:
    """A verdict plus independently checkable evidence.

    ``certificate_valid`` — for positive homomorphism verdicts, the
    result of re-checking the certificate (None when not applicable).
    ``witness``           — for refutations, a semantic counterexample
    from the oracle (None when containment holds or no witness found
    within budget).
    """

    verdict: Verdict
    certificate_valid: bool | None
    witness: Counterexample | None

    def summary(self) -> str:
        """One-line human-readable account."""
        if self.verdict.result is True:
            check = {True: "certificate checked", False: "CERTIFICATE BAD",
                     None: "no checkable certificate"}[self.certificate_valid]
            return f"contained [{self.verdict.method}; {check}]"
        if self.verdict.result is False:
            where = ("witness found" if self.witness is not None
                     else "no witness within budget")
            return f"not contained [{self.verdict.method}; {where}]"
        return f"undecided [{self.verdict.explanation}]"


def explain(q1, q2, semiring, witness_budget: int = 1500, *,
            context=None) -> Explanation:
    """Decide ``Q1 ⊆K Q2`` and attach checkable evidence.

    ``context`` threads a :class:`~repro.core.context.DecisionContext`
    into the decision (pass ``engine.context`` so the explanation
    reuses — and warms — an engine's caches).
    """
    if isinstance(q1, CQ) and isinstance(q2, CQ):
        verdict = decide_cq_containment(q1, q2, semiring, context=context)
    else:
        verdict = decide_ucq_containment(q1, q2, semiring, context=context)
    certificate_valid = None
    if (verdict.result is True and verdict.certificate is not None
            and verdict.method in _METHOD_KINDS
            and isinstance(q1, CQ) and isinstance(q2, CQ)):
        certificate_valid = check_homomorphism_certificate(
            q2, q1, verdict.certificate, _METHOD_KINDS[verdict.method])
    witness = None
    if verdict.result is False:
        witness = find_counterexample(q1, q2, semiring,
                                      budget=witness_budget)
    return Explanation(verdict, certificate_valid, witness)
