"""The small-model containment procedure (Thm. 4.17, Prop. 4.19).

For ⊕-idempotent semirings ``K``, CQ containment reduces to finitely
many comparisons of CQ-admissible polynomials:

    ``Q1 ⊆K Q2``  iff  ``Q1^⟦Q⟧(t) ≼K Q2^⟦Q⟧(t)``
    for every CCQ ``Q ∈ ⟨Q1⟩`` and every tuple ``t`` of variables of
    ``Q``

where ``⟦Q⟧`` is the canonical ``N[X]``-instance of the CCQ.  Whenever
the polynomial order ``≼K`` is decidable (tropical semirings: LP,
Prop. 4.19; finite or lattice semirings: exhaustive valuation) this
decides containment — covering exactly the semirings (``T+``, ``T−``,
Viterbi-style) that have *no* homomorphism characterization.

We also apply the procedure to UCQs: for ⊕-idempotent ``K``, a sum is
below a value iff each summand is (positivity + idempotence), so
``Q1 ⊆K Q2`` reduces to the same canonical-instance tests ranging over
the CCQs of ``⟨Q1⟩``.  This extension is validated against the
brute-force oracle in the test suite.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from ..data.canonical import canonical_instance
from ..queries.ccq import CQWithInequalities, complete_description
from ..queries.evaluation import evaluate
from ..queries.ucq import as_ucq

__all__ = ["small_model_contained", "small_model_tests"]


def small_model_tests(q1) -> Iterator[tuple[CQWithInequalities, tuple]]:
    """The canonical test points of Thm. 4.17: each CCQ of ``⟨Q1⟩``
    paired with each head tuple over its variables."""
    q1 = as_ucq(q1)
    for member in q1:
        for ccq in complete_description(member):
            domain = tuple(ccq.variables()) + ccq.constants()
            for target in product(domain, repeat=ccq.arity):
                yield ccq, target


def small_model_contained(q1, q2, semiring, *, context=None) -> bool:
    """Decide ``Q1 ⊆K Q2`` via canonical-instance polynomial comparison.

    Requires ``semiring`` to be ⊕-idempotent and to implement
    ``poly_leq`` (Thm. 4.17 / Cor. 4.18).  Every polynomial comparison
    is routed through ``context.poly_leq`` (default:
    :data:`repro.core.context.DEFAULT_CONTEXT`), so engines can
    memoize the LP-backed order decisions per admissible pair.
    """
    from ..semirings.provenance import NX
    from .context import DEFAULT_CONTEXT

    if not semiring.properties.add_idempotent:
        raise ValueError(
            f"the small-model procedure needs an ⊕-idempotent semiring; "
            f"{semiring.name} is not (Thm. 4.17 applies to S¹ only)")
    ctx = context if context is not None else DEFAULT_CONTEXT
    q1, q2 = as_ucq(q1), as_ucq(q2)
    for ccq, target in small_model_tests(q1):
        tagged = canonical_instance(ccq)
        left = evaluate(q1, tagged.instance, target, NX)
        right = evaluate(q2, tagged.instance, target, NX)
        if not ctx.poly_leq(semiring, left, right):
            return False
    return True
