"""Containment verdicts.

Every decision entry point returns a :class:`Verdict` rather than a bare
boolean, because the paper's theory is not total: for semirings such as
bag semantics ``N`` the containment problem is open (CQs) or undecidable
(UCQs), and the best the library can honestly report is the value of the
known necessary and sufficient conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Verdict", "Undecided"]


class Undecided(RuntimeError):
    """Raised by :meth:`Verdict.unwrap` when no decision was reached."""


@dataclass(frozen=True)
class Verdict:
    """Outcome of a containment check ``Q1 ⊆K Q2``.

    ``result``      — True / False when decided, None when the theory
    only provides bounds for the semiring at hand.
    ``method``      — the procedure that produced the decision (e.g.
    ``"homomorphism"``, ``"small-model"``, ``"bi-count-k"``).
    ``certificate`` — evidence: a homomorphism mapping, a violated
    necessary condition name, a canonical-instance witness, ...
    ``sufficient``  — for undecided verdicts, the value of the strongest
    applicable *sufficient* condition (False means "cannot conclude").
    ``necessary``   — likewise for the strongest *necessary* condition
    (True means "cannot refute").
    ``explanation`` — human-readable summary.
    """

    result: bool | None
    method: str
    certificate: Any = None
    sufficient: bool | None = None
    necessary: bool | None = None
    explanation: str = ""

    @property
    def decided(self) -> bool:
        """True when the verdict carries a definite answer."""
        return self.result is not None

    def unwrap(self) -> bool:
        """The boolean answer; raises :class:`Undecided` if there is
        none."""
        if self.result is None:
            raise Undecided(
                f"containment undecided ({self.method}): {self.explanation}")
        return self.result

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "Verdict cannot be used as a bare boolean; inspect .result or "
            "call .unwrap()")
