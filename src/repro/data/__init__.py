"""K-instances and canonical instances."""

from .canonical import CanonicalInstance, canonical_instance
from .examples import movie_provenance_db, personnel_db, travel_costs_db
from .instance import Instance

__all__ = ["CanonicalInstance", "Instance", "canonical_instance",
           "movie_provenance_db", "personnel_db", "travel_costs_db"]
