"""Canonical instances ``⟦Q⟧`` (Sec. 4.6, after Green et al.).

The canonical instance of a CQ (or CCQ) ``Q`` is an ``N[X]``-instance
over ``Q``'s own variables-as-constants: every atom occurrence is tagged
with a unique fresh polynomial variable, and a tuple named by several
occurrences is annotated with the *sum* of their tags (see Ex. 4.6
continued: ``R^⟦Q12⟧(u, v) = x1 + x2``).

Evaluating any CQ on ``⟦Q⟧`` produces a CQ-admissible polynomial
(Def. 4.7); the small-model procedure (Thm. 4.17) and the brute-force
oracle both work on these instances, because the paper's completeness
arguments show counterexamples to containment always live there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..polynomials.polynomial import Polynomial
from ..queries.atoms import Atom
from ..queries.cq import CQ
from .instance import Instance

__all__ = ["CanonicalInstance", "canonical_instance"]


@dataclass(frozen=True)
class CanonicalInstance:
    """The canonical ``N[X]``-instance of a query, with its tagging.

    ``instance``   — the ``N[X]``-instance (domain = query variables and
    constants).
    ``tag_names``  — the fresh polynomial variables, one per atom
    occurrence, in sorted-atom order.
    ``tags``       — map from each distinct ground atom to the tuple of
    tag names of its occurrences.
    """

    instance: Instance
    tag_names: tuple[str, ...]
    tags: dict

    def domain(self) -> frozenset:
        """The active domain (the query's variables and constants)."""
        return self.instance.active_domain()


def canonical_instance(query: CQ, prefix: str = "z") -> CanonicalInstance:
    """Build ``⟦Q⟧`` for a CQ or CCQ.

    Fresh variables are named ``{prefix}1, {prefix}2, …`` in the order of
    the query's canonical (sorted) atom tuple, so the construction is
    deterministic.  Inequalities of a CCQ do not change ``⟦Q⟧`` itself —
    they constrain the *valuations* used when evaluating over it.
    """
    from ..semirings.provenance import NX

    tag_names: list[str] = []
    tags: dict[Atom, tuple[str, ...]] = {}
    relations: dict[str, dict[tuple, Polynomial]] = {}
    for position, atom in enumerate(query.atoms, start=1):
        tag = f"{prefix}{position}"
        tag_names.append(tag)
        tags.setdefault(atom, ())
        tags[atom] = tags[atom] + (tag,)
        row = tuple(atom.terms)  # Vars act as domain constants here.
        table = relations.setdefault(atom.relation, {})
        annotation = table.get(row, Polynomial.zero())
        table[row] = annotation.add(Polynomial.variable(tag))
    return CanonicalInstance(
        instance=Instance(NX, relations),
        tag_names=tuple(tag_names),
        tags=tags,
    )
