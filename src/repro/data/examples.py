"""Showcase datasets used by the runnable examples and the docs.

Small but realistic K-instances: a curated movie database annotated
with provenance, a travel network annotated with tropical costs, and an
access-controlled personnel directory.
"""

from __future__ import annotations

from ..semirings.access import ACCESS
from ..semirings.provenance import NX
from ..semirings.tropical import TPLUS
from .instance import Instance

__all__ = ["movie_provenance_db", "travel_costs_db", "personnel_db"]


def movie_provenance_db() -> Instance:
    """A film database over ``N[X]``: every base fact carries its own
    provenance token, so query answers are provenance polynomials."""
    var = NX.var
    return Instance(NX, {
        "Directed": {
            ("kurosawa", "ran"): var("d1"),
            ("kurosawa", "ikiru"): var("d2"),
            ("kubrick", "paths_of_glory"): var("d3"),
        },
        "ActsIn": {
            ("nakadai", "ran"): var("a1"),
            ("shimura", "ikiru"): var("a2"),
            ("douglas", "paths_of_glory"): var("a3"),
            ("nakadai", "ikiru"): var("a4"),
        },
        "Genre": {
            ("ran", "war"): var("g1"),
            ("ikiru", "drama"): var("g2"),
            ("paths_of_glory", "war"): var("g3"),
        },
    })


def travel_costs_db() -> Instance:
    """A flight network over ``T+``: annotations are ticket costs; query
    evaluation computes cheapest itineraries."""
    return Instance(TPLUS, {
        "Flight": {
            ("edinburgh", "london"): 60,
            ("london", "paris"): 80,
            ("edinburgh", "paris"): 190,
            ("paris", "scottsdale"): 540,
            ("london", "scottsdale"): 610,
        },
    })


def personnel_db() -> Instance:
    """A personnel directory over the clearance semiring: joining
    restricted tables yields answers at the stricter clearance."""
    level = ACCESS.level
    return Instance(ACCESS, {
        "Employee": {
            ("ada", "engineering"): level("public"),
            ("grace", "research"): level("confidential"),
            ("alan", "cryptanalysis"): level("secret"),
        },
        "Project": {
            ("engineering", "bridge"): level("public"),
            ("research", "reactor"): level("secret"),
            ("cryptanalysis", "enigma"): level("top-secret"),
        },
    })
