"""K-instances: annotated databases with finite support (Sec. 2).

A K-instance assigns to every relation symbol a *K-relation*: a total
map from tuples to semiring elements whose support (non-zero tuples) is
finite.  We store only the support.  Tuples range over an open domain of
hashable Python values; query variables (:class:`Var` objects) may
themselves serve as domain constants, which is how canonical instances
are built.
"""

from __future__ import annotations

import csv
import math
import os
import re
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["Instance", "format_annotation", "parse_annotation"]

_INT = re.compile(r"[+-]?\d+")
_FRACTION = re.compile(r"[+-]?\d+/\d+")
_NAME = re.compile(r"[A-Za-z_]\w*")


def parse_annotation(semiring, text: str) -> Any:
    """Parse one annotated-CSV cell into a ``semiring`` element.

    The accepted forms mirror the CLI's ``--fact`` syntax plus the
    literals the numeric semirings print: integers (normalized through
    the semiring — a count for ``N``, a cost for ``T+``, a truthy value
    for ``B``), ``true``/``false``, ``inf``/``-inf`` (the tropical
    zeros), ``p/q`` fractions (Viterbi/fuzzy/Łukasiewicz weights), and
    — for provenance-like semirings exposing ``var`` — bare identifiers
    as fresh annotation tokens.
    """
    text = text.strip()
    if _INT.fullmatch(text):
        return semiring.normalize(int(text))
    lowered = text.lower()
    if lowered in ("inf", "+inf", "∞"):
        return semiring.normalize(math.inf)
    if lowered in ("-inf", "-∞"):
        return semiring.normalize(-math.inf)
    if lowered == "true":
        return semiring.normalize(True)
    if lowered == "false":
        return semiring.normalize(False)
    if _FRACTION.fullmatch(text):
        from fractions import Fraction
        return semiring.normalize(Fraction(text))
    if _NAME.fullmatch(text) and hasattr(semiring, "var"):
        return semiring.var(text)
    raise ValueError(
        f"cannot parse annotation {text!r} for {semiring.name}")


def format_annotation(semiring, value: Any) -> str:
    """Render an annotation as a CSV cell :func:`parse_annotation` can
    read back.  Raises :class:`ValueError` for elements with no literal
    form (polynomials, witness sets, …)."""
    if value is True or value is False:
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    from fractions import Fraction
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    raise ValueError(
        f"annotation {value!r} of {semiring.name} has no CSV literal form")


def _parse_cell(text: str) -> Any:
    """A tuple cell: integer-looking cells become ints, the rest stay
    strings — matching how constants round-trip through ``str``."""
    return int(text) if _INT.fullmatch(text) else text


class Instance:
    """An immutable annotated database over a semiring.

    Construct via ``Instance(semiring, {"R": {(1, 2): annotation}})`` or
    incrementally with :meth:`with_fact`.  Annotations equal to the
    semiring zero are dropped; arities must be consistent per relation.
    """

    __slots__ = ("semiring", "_relations", "_arities")

    def __init__(self, semiring,
                 relations: Mapping[str, Mapping[tuple, Any]] | None = None):
        object.__setattr__(self, "semiring", semiring)
        cleaned: dict[str, dict[tuple, Any]] = {}
        arities: dict[str, int] = {}
        for relation, tuples in (relations or {}).items():
            for row, annotation in tuples.items():
                row = tuple(row)
                known = arities.setdefault(relation, len(row))
                if known != len(row):
                    raise ValueError(
                        f"inconsistent arity for relation {relation}")
                annotation = semiring.normalize(annotation)
                if semiring.is_zero(annotation):
                    continue
                cleaned.setdefault(relation, {})[row] = annotation
        object.__setattr__(self, "_relations", cleaned)
        object.__setattr__(self, "_arities", arities)

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Instance is immutable")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_facts(cls, semiring,
                   facts: Iterable[tuple[str, tuple, Any]]) -> "Instance":
        """Build from ``(relation, row, annotation)`` triples; repeated
        rows accumulate with ``⊕``."""
        relations: dict[str, dict[tuple, Any]] = {}
        for relation, row, annotation in facts:
            row = tuple(row)
            table = relations.setdefault(relation, {})
            if row in table:
                table[row] = semiring.add(table[row], annotation)
            else:
                table[row] = annotation
        return cls(semiring, relations)

    @classmethod
    def from_csv(cls, path: str | os.PathLike, semiring) -> "Instance":
        """Load an annotated-CSV file: ``relation, v1, …, vk, annotation``.

        Each row is one fact — the first cell names the relation, the
        last cell is the annotation (parsed by
        :func:`parse_annotation`), everything between is the tuple
        (integer-looking cells become ints, others stay strings).
        Blank lines and ``#`` comment lines are skipped; repeated rows
        accumulate with ``⊕``, zero annotations are dropped — exactly
        the :meth:`from_facts` semantics.  This is the shared ingest
        path of ``python -m repro eval`` and the columnar engine's
        cross-validation harness.
        """
        facts: list[tuple[str, tuple, Any]] = []
        with open(path, newline="", encoding="utf-8") as handle:
            for lineno, cells in enumerate(csv.reader(handle), start=1):
                if not cells or (len(cells) == 1 and not cells[0].strip()):
                    continue
                if cells[0].lstrip().startswith("#"):
                    continue
                if len(cells) < 2:
                    raise ValueError(
                        f"{path}:{lineno}: a fact row needs at least a "
                        "relation and an annotation cell")
                relation = cells[0].strip()
                if not relation:
                    raise ValueError(
                        f"{path}:{lineno}: empty relation name")
                try:
                    annotation = parse_annotation(semiring, cells[-1])
                except ValueError as error:
                    raise ValueError(f"{path}:{lineno}: {error}") from None
                row = tuple(_parse_cell(cell.strip())
                            for cell in cells[1:-1])
                facts.append((relation, row, annotation))
        return cls.from_facts(semiring, facts)

    def to_csv(self, path: str | os.PathLike) -> int:
        """Write the support as annotated CSV; returns the fact count.

        Rows come out deterministically ordered (relation, then tuple
        repr) and annotations through :func:`format_annotation`, so an
        instance over a numeric semiring round-trips through
        :meth:`from_csv` unchanged; symbolic annotations without a
        literal form raise :class:`ValueError`.
        """
        written = 0
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            for relation in self.relations():
                rows = sorted(self._relations[relation].items(),
                              key=lambda kv: repr(kv[0]))
                for row, annotation in rows:
                    writer.writerow(
                        [relation, *(str(value) for value in row),
                         format_annotation(self.semiring, annotation)])
                    written += 1
        return written

    def with_fact(self, relation: str, row: tuple, annotation: Any) -> "Instance":
        """A new instance with one more fact (``⊕``-accumulating)."""
        relations = {name: dict(table)
                     for name, table in self._relations.items()}
        table = relations.setdefault(relation, {})
        row = tuple(row)
        if row in table:
            table[row] = self.semiring.add(table[row], annotation)
        else:
            table[row] = annotation
        return Instance(self.semiring, relations)

    # -- access ----------------------------------------------------------

    def annotation(self, relation: str, row: tuple) -> Any:
        """The annotation of ``row`` in ``relation`` (zero if absent)."""
        table = self._relations.get(relation)
        if table is None:
            return self.semiring.zero
        return table.get(tuple(row), self.semiring.zero)

    def support(self, relation: str) -> Iterator[tuple[tuple, Any]]:
        """Iterate ``(row, annotation)`` over the support of a relation."""
        return iter(self._relations.get(relation, {}).items())

    def relations(self) -> tuple[str, ...]:
        """Relation names with non-empty support, sorted."""
        return tuple(sorted(self._relations))

    def arity(self, relation: str) -> int | None:
        """Arity of ``relation`` (None when never seen)."""
        return self._arities.get(relation)

    def active_domain(self) -> frozenset:
        """All values occurring in any supported tuple."""
        return frozenset(
            value
            for table in self._relations.values()
            for row in table
            for value in row
        )

    def fact_count(self) -> int:
        """Total size of the support."""
        return sum(len(table) for table in self._relations.values())

    def map_annotations(self, target_semiring, transform) -> "Instance":
        """A new instance over ``target_semiring`` with every annotation
        passed through ``transform`` — e.g. applying the universal
        morphism ``Evalν`` to a canonical ``N[X]``-instance."""
        return Instance(target_semiring, {
            relation: {row: transform(annotation)
                       for row, annotation in table.items()}
            for relation, table in self._relations.items()
        })

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Instance)
                and self.semiring is other.semiring
                and self._relations == other._relations)

    def __repr__(self) -> str:
        parts = []
        for relation in self.relations():
            rows = ", ".join(
                f"{row}↦{annotation!r}"
                for row, annotation in sorted(
                    self._relations[relation].items(), key=lambda kv: repr(kv[0]))
            )
            parts.append(f"{relation}: {{{rows}}}")
        return f"Instance[{self.semiring}]({'; '.join(parts)})"
