"""K-instances: annotated databases with finite support (Sec. 2).

A K-instance assigns to every relation symbol a *K-relation*: a total
map from tuples to semiring elements whose support (non-zero tuples) is
finite.  We store only the support.  Tuples range over an open domain of
hashable Python values; query variables (:class:`Var` objects) may
themselves serve as domain constants, which is how canonical instances
are built.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

__all__ = ["Instance"]


class Instance:
    """An immutable annotated database over a semiring.

    Construct via ``Instance(semiring, {"R": {(1, 2): annotation}})`` or
    incrementally with :meth:`with_fact`.  Annotations equal to the
    semiring zero are dropped; arities must be consistent per relation.
    """

    __slots__ = ("semiring", "_relations", "_arities")

    def __init__(self, semiring,
                 relations: Mapping[str, Mapping[tuple, Any]] | None = None):
        object.__setattr__(self, "semiring", semiring)
        cleaned: dict[str, dict[tuple, Any]] = {}
        arities: dict[str, int] = {}
        for relation, tuples in (relations or {}).items():
            for row, annotation in tuples.items():
                row = tuple(row)
                known = arities.setdefault(relation, len(row))
                if known != len(row):
                    raise ValueError(
                        f"inconsistent arity for relation {relation}")
                annotation = semiring.normalize(annotation)
                if semiring.is_zero(annotation):
                    continue
                cleaned.setdefault(relation, {})[row] = annotation
        object.__setattr__(self, "_relations", cleaned)
        object.__setattr__(self, "_arities", arities)

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Instance is immutable")

    # -- construction ----------------------------------------------------

    @classmethod
    def from_facts(cls, semiring,
                   facts: Iterable[tuple[str, tuple, Any]]) -> "Instance":
        """Build from ``(relation, row, annotation)`` triples; repeated
        rows accumulate with ``⊕``."""
        relations: dict[str, dict[tuple, Any]] = {}
        for relation, row, annotation in facts:
            row = tuple(row)
            table = relations.setdefault(relation, {})
            if row in table:
                table[row] = semiring.add(table[row], annotation)
            else:
                table[row] = annotation
        return cls(semiring, relations)

    def with_fact(self, relation: str, row: tuple, annotation: Any) -> "Instance":
        """A new instance with one more fact (``⊕``-accumulating)."""
        relations = {name: dict(table)
                     for name, table in self._relations.items()}
        table = relations.setdefault(relation, {})
        row = tuple(row)
        if row in table:
            table[row] = self.semiring.add(table[row], annotation)
        else:
            table[row] = annotation
        return Instance(self.semiring, relations)

    # -- access ----------------------------------------------------------

    def annotation(self, relation: str, row: tuple) -> Any:
        """The annotation of ``row`` in ``relation`` (zero if absent)."""
        table = self._relations.get(relation)
        if table is None:
            return self.semiring.zero
        return table.get(tuple(row), self.semiring.zero)

    def support(self, relation: str) -> Iterator[tuple[tuple, Any]]:
        """Iterate ``(row, annotation)`` over the support of a relation."""
        return iter(self._relations.get(relation, {}).items())

    def relations(self) -> tuple[str, ...]:
        """Relation names with non-empty support, sorted."""
        return tuple(sorted(self._relations))

    def arity(self, relation: str) -> int | None:
        """Arity of ``relation`` (None when never seen)."""
        return self._arities.get(relation)

    def active_domain(self) -> frozenset:
        """All values occurring in any supported tuple."""
        return frozenset(
            value
            for table in self._relations.values()
            for row in table
            for value in row
        )

    def fact_count(self) -> int:
        """Total size of the support."""
        return sum(len(table) for table in self._relations.values())

    def map_annotations(self, target_semiring, transform) -> "Instance":
        """A new instance over ``target_semiring`` with every annotation
        passed through ``transform`` — e.g. applying the universal
        morphism ``Evalν`` to a canonical ``N[X]``-instance."""
        return Instance(target_semiring, {
            relation: {row: transform(annotation)
                       for row, annotation in table.items()}
            for relation, table in self._relations.items()
        })

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Instance)
                and self.semiring is other.semiring
                and self._relations == other._relations)

    def __repr__(self) -> str:
        parts = []
        for relation in self.relations():
            rows = ", ".join(
                f"{row}↦{annotation!r}"
                for row, annotation in sorted(
                    self._relations[relation].items(), key=lambda kv: repr(kv[0]))
            )
            parts.append(f"{relation}: {{{rows}}}")
        return f"Instance[{self.semiring}]({'; '.join(parts)})"
