"""Columnar evaluation of UCQs over annotated instances.

The subsystem splits along the obvious seams — :mod:`~repro.eval.plan`
(static join plans, numpy-free, engine-cacheable),
:mod:`~repro.eval.columns` (K-relations transposed into interned id
columns plus an encoded annotation column),
:mod:`~repro.eval.kernels` (per-semiring ⊕/⊗ kernel dispatch with a
generic object-array fallback), :mod:`~repro.eval.join` (vectorized
hash joins) and :mod:`~repro.eval.engine` (the ``evaluate`` entry
point, byte-identical to the tuple-at-a-time reference evaluator).
"""

from .columns import ColumnarInstance, ColumnarRelation, ValueInterner
from .engine import AnswerTable, evaluate
from .kernels import GenericObjectOps, ops_for
from .plan import AtomStep, EvalPlan, build_plan, cached_plan

__all__ = [
    "AnswerTable",
    "AtomStep",
    "ColumnarInstance",
    "ColumnarRelation",
    "EvalPlan",
    "GenericObjectOps",
    "ValueInterner",
    "build_plan",
    "cached_plan",
    "evaluate",
    "ops_for",
]
