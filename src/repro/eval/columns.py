"""Columnar storage of K-instances.

An :class:`Instance` stores a K-relation as a dict from tuples to
annotations — the right shape for point lookups and incremental
construction, the wrong one for scanning a million rows.  This module
transposes: a :class:`ColumnarRelation` holds one int64 array per
attribute position (domain values interned to dense ids) plus one
annotation column encoded by the semiring's
:class:`~repro.semirings.base.VectorizedOps` kernels (object dtype on
the generic fallback path).

Interning uses a plain dict, so it conflates exactly the values Python
dict keys conflate (``1``/``True``, ``1``/``1.0``) — deliberately: the
dict-backed :class:`Instance` already merges such rows at construction,
and the columnar evaluator must reproduce the reference evaluator's
equality semantics bit for bit.

Annotation encoding is *optimistic*: the semiring's declared dtype
kernels are tried first, and an ``OverflowError`` from any relation's
``encode`` (counts beyond int64, tropical costs outside the
float64-exact range) demotes the whole instance to
:class:`~repro.eval.kernels.GenericObjectOps` — correctness never
depends on the fast path being applicable.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..data.instance import Instance
from ..semirings.base import Semiring, VectorizedOps
from .kernels import GenericObjectOps, ops_for

__all__ = ["ColumnarInstance", "ColumnarRelation", "ValueInterner"]


class ValueInterner:
    """Bidirectional map between domain values and dense int ids."""

    __slots__ = ("_ids", "_values")

    def __init__(self):
        self._ids: dict[Any, int] = {}
        self._values: list[Any] = []

    def intern(self, value: Any) -> int:
        """The id of ``value``, allocating one on first sight."""
        found = self._ids.get(value)
        if found is None:
            found = len(self._values)
            self._ids[value] = found
            self._values.append(value)
        return found

    def lookup(self, value: Any) -> int | None:
        """The id of ``value``, or ``None`` if it was never interned."""
        return self._ids.get(value)

    def value(self, ident: int) -> Any:
        """The value behind an id."""
        return self._values[ident]

    def values(self, idents: np.ndarray) -> list[Any]:
        """Decode a whole id column."""
        table = self._values
        return [table[ident] for ident in idents]

    def __len__(self) -> int:
        return len(self._values)


class ColumnarRelation:
    """One K-relation as columns: ``arity`` id arrays + annotations."""

    __slots__ = ("name", "arity", "columns", "annotations", "row_count")

    def __init__(self, name: str, arity: int,
                 columns: tuple[np.ndarray, ...],
                 annotations: np.ndarray):
        self.name = name
        self.arity = arity
        self.columns = columns
        self.annotations = annotations
        self.row_count = len(annotations)


class ColumnarInstance:
    """A K-instance transposed into columns, ready for the executor.

    ``semiring`` is the *evaluation* semiring (defaults to the
    instance's own), ``ops`` the kernel set actually in use, and
    ``interner`` the shared domain dictionary across all relations.
    """

    __slots__ = ("semiring", "ops", "interner", "relations")

    def __init__(self, semiring: Semiring, ops: VectorizedOps,
                 interner: ValueInterner,
                 relations: dict[str, ColumnarRelation]):
        self.semiring = semiring
        self.ops = ops
        self.interner = interner
        self.relations = relations

    @classmethod
    def from_instance(cls, instance: Instance,
                      semiring: Semiring | None = None
                      ) -> "ColumnarInstance":
        """Transpose ``instance``; see the module docstring for the
        kernel-demotion contract."""
        semiring = semiring or instance.semiring
        interner = ValueInterner()
        raw: dict[str, tuple[int, list[list[int]], list[Any]]] = {}
        for name in instance.relations():
            arity = instance.arity(name)
            id_columns: list[list[int]] = [[] for _ in range(arity)]
            annotations: list[Any] = []
            for row, annotation in instance.support(name):
                for position, value in enumerate(row):
                    id_columns[position].append(interner.intern(value))
                annotations.append(annotation)
            raw[name] = (arity, id_columns, annotations)
        ops = ops_for(semiring)
        for attempt_ops in (ops, GenericObjectOps(semiring)):
            try:
                relations = {
                    name: ColumnarRelation(
                        name, arity,
                        tuple(np.asarray(column, dtype=np.int64)
                              for column in id_columns),
                        attempt_ops.encode(annotations),
                    )
                    for name, (arity, id_columns, annotations) in raw.items()
                }
                return cls(semiring, attempt_ops, interner, relations)
            except OverflowError:
                if isinstance(attempt_ops, GenericObjectOps):
                    raise
        raise AssertionError("unreachable")  # pragma: no cover
