"""Columnar UCQ evaluation: plans + joins + kernels, end to end.

:func:`evaluate` is the columnar counterpart of
:func:`repro.queries.evaluation.evaluate_all` and is contractually
**byte-identical** to it: same answer tuples, same normalized
annotation values, for every registered semiring (the randomized
cross-validation suite in ``tests/test_eval_engine.py`` enforces this).
The correspondence, member by member:

* every support-hitting valuation of a CQ appears as exactly one
  frontier row of :func:`repro.eval.join.run_plan` (the joins range
  over the support, as the backtracking search does);
* the row's ⊗-annotation is the product over the plan's atom steps —
  commutative and canonical, so the different multiplication order
  does not show;
* head grouping + ``segment_add`` replays the per-head ⊕-accumulation,
  UCQ members merge into one answer map, and ⊕-zeros are dropped only
  at the very end (zero *products* flow through joins, exactly like
  the reference keeps them until its final filter).

Plan lookups go through the supplied
:class:`~repro.core.context.DecisionContext` — the default memoizes
process-wide, a :class:`~repro.api.engine.CachingDecisionContext`
routes into the owning engine's snapshot-persisted ``eval_plans`` LRU.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from ..core.context import DEFAULT_CONTEXT, DecisionContext
from ..data.instance import Instance
from ..queries.atoms import is_var
from ..queries.cq import CQ
from ..queries.ucq import UCQ
from ..semirings.base import Semiring
from .columns import ColumnarInstance
from .join import pack_rows, run_plan

__all__ = ["AnswerTable", "evaluate"]


class AnswerTable:
    """The K-annotated answer relation of one evaluation.

    Rows are ``(head_tuple, annotation)`` pairs with non-zero
    annotations, in a deterministic (grouping) order; :meth:`to_dict`
    gives the exact shape of
    :func:`repro.queries.evaluation.evaluate_all` for comparisons.
    """

    __slots__ = ("semiring", "arity", "rows")

    def __init__(self, semiring: Semiring, arity: int,
                 rows: list[tuple[tuple, Any]]):
        self.semiring = semiring
        self.arity = arity
        self.rows = rows

    def to_dict(self) -> dict[tuple, Any]:
        """``head tuple → annotation`` (the reference evaluator's shape)."""
        return dict(self.rows)

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<AnswerTable arity={self.arity} rows={len(self.rows)} "
                f"semiring={self.semiring.name}>")


def _member_answers(cq: CQ, columnar: ColumnarInstance,
                    context: DecisionContext) -> list[tuple[tuple, Any]]:
    """One CQ member's aggregated ``(head, annotation)`` pairs.

    Zeros are *not* dropped here — members merge first, the union-level
    filter runs last, mirroring the reference.
    """
    plan = context.eval_plan(cq)
    ops = columnar.ops
    if not plan.steps:
        # The empty conjunction has exactly one (empty) valuation.
        return [(tuple(plan.head), columnar.semiring.one)]
    frontier = run_plan(plan, columnar)
    if frontier is None:
        return []
    var_columns = [frontier.columns[term] for term in plan.head
                   if is_var(term)]
    key = pack_rows(var_columns, frontier.row_count)
    _, representatives, group_ids = np.unique(
        key, return_index=True, return_inverse=True)
    aggregated = ops.decode(ops.segment_add(
        frontier.annotations, group_ids.astype(np.int64),
        len(representatives)))
    decoded_columns = [
        columnar.interner.values(column[representatives])
        for column in var_columns
    ]
    answers = []
    for group, annotation in enumerate(aggregated):
        variable_values = iter(
            column[group] for column in decoded_columns)
        head = tuple(next(variable_values) if is_var(term) else term
                     for term in plan.head)
        answers.append((head, annotation))
    return answers


def evaluate(query, instance: Instance | ColumnarInstance,
             semiring: Semiring | None = None, *,
             context: DecisionContext = DEFAULT_CONTEXT) -> AnswerTable:
    """Evaluate a CQ or UCQ columnar-ly; all non-zero answers.

    ``instance`` may be a plain :class:`Instance` (transposed on the
    fly) or a pre-built :class:`ColumnarInstance` for repeated
    evaluations over the same data.  ``semiring`` defaults to the
    instance's; passing one that differs from a pre-built columnar
    instance's is an error (the annotation columns are already encoded
    for a specific kernel set).
    """
    if isinstance(instance, ColumnarInstance):
        if semiring is not None and semiring is not instance.semiring:
            raise ValueError(
                "pre-built ColumnarInstance is encoded for "
                f"{instance.semiring.name}, not {semiring.name}")
        columnar = instance
    else:
        columnar = ColumnarInstance.from_instance(instance, semiring)
    semiring = columnar.semiring
    if isinstance(query, CQ):
        members: tuple[CQ, ...] = (query,)
        arity = query.arity
    elif isinstance(query, UCQ):
        members = query.cqs
        arity = query.arity if len(query) else 0
    else:
        raise TypeError(f"expected CQ or UCQ, got {type(query).__name__}")
    answers: dict[tuple, Any] = {}
    for cq in members:
        for head, value in _member_answers(cq, columnar, context):
            if head in answers:
                answers[head] = semiring.add(answers[head], value)
            else:
                answers[head] = value
    rows = [(head, value) for head, value in answers.items()
            if not semiring.is_zero(value)]
    return AnswerTable(semiring, arity, rows)
