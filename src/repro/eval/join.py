"""Vectorized hash joins over columnar K-relations.

The executor runs an :class:`~repro.eval.plan.EvalPlan` step by step,
maintaining a *frontier*: one int64 id column per bound variable plus
the running ⊗-annotation column.  Each step filters its relation by
constants and intra-atom repeated variables, equi-joins the result
against the frontier on the shared variables (cross product when there
are none — the planner makes that a last resort), multiplies
annotations, and applies the inequality filters that just became fully
bound.

Join machinery is semiring-independent — annotations only ever flow
through fancy indexing and the kernel set's ``mul`` — and is built from
sorting primitives: multi-column keys are packed into a single int64
per row (progressively re-densified so the key space never overflows),
matches are found with ``searchsorted`` against the sorted distinct
left keys, and one-to-many matches are expanded with the
``repeat``/``arange`` trick instead of any Python-level loop.

Zero annotations are *kept* through the pipeline: the support carries
no ⊕-zeros, but ⊗ may produce them (Łukasiewicz), and the reference
evaluator only drops zeros from the final answer map — parity requires
doing the same.
"""

from __future__ import annotations

import numpy as np

from ..queries.atoms import Var
from .columns import ColumnarInstance
from .plan import EvalPlan

__all__ = ["Frontier", "join_indices", "pack_pairs", "pack_rows",
           "run_plan"]

#: Packed join keys are re-densified before they could exceed this.
_KEY_LIMIT = 2 ** 62


def _ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), …`` concatenated — the arange-per-group trick."""
    total = int(counts.sum())
    if not total:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts,
                                                        counts)


def pack_rows(columns: list[np.ndarray], row_count: int) -> np.ndarray:
    """One int64 key per row; keys are equal iff the rows are equal."""
    key = np.zeros(row_count, dtype=np.int64)
    cardinality = 1
    for column in columns:
        uniques, codes = np.unique(column, return_inverse=True)
        width = max(len(uniques), 1)
        if cardinality * width >= _KEY_LIMIT:
            dense, key = np.unique(key, return_inverse=True)
            cardinality = max(len(dense), 1)
        key = key * width + codes
        cardinality *= width
    return key


def pack_pairs(left_columns: list[np.ndarray],
               right_columns: list[np.ndarray]
               ) -> tuple[np.ndarray, np.ndarray]:
    """Consistent join keys for both sides of an equi-join.

    Per key column the two sides are densified *together*, so equal
    values get equal codes across sides — a per-side :func:`pack_rows`
    would not line up.
    """
    left_count = len(left_columns[0])
    left_key = np.zeros(left_count, dtype=np.int64)
    right_key = np.zeros(len(right_columns[0]), dtype=np.int64)
    cardinality = 1
    for left_column, right_column in zip(left_columns, right_columns):
        combined = np.concatenate([left_column, right_column])
        uniques, codes = np.unique(combined, return_inverse=True)
        width = max(len(uniques), 1)
        if cardinality * width >= _KEY_LIMIT:
            combined_keys = np.concatenate([left_key, right_key])
            dense, rekeyed = np.unique(combined_keys, return_inverse=True)
            left_key = rekeyed[:left_count]
            right_key = rekeyed[left_count:]
            cardinality = max(len(dense), 1)
        left_key = left_key * width + codes[:left_count]
        right_key = right_key * width + codes[left_count:]
        cardinality *= width
    return left_key, right_key


def join_indices(left_key: np.ndarray, right_key: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """All matching ``(left_row, right_row)`` pairs of an equi-join."""
    empty = np.zeros(0, dtype=np.int64)
    if not len(left_key) or not len(right_key):
        return empty, empty
    order = np.argsort(left_key, kind="stable")
    sorted_left = left_key[order]
    uniques, starts = np.unique(sorted_left, return_index=True)
    counts = np.diff(np.append(starts, len(sorted_left)))
    positions = np.searchsorted(uniques, right_key)
    positions = np.minimum(positions, len(uniques) - 1)
    matched = uniques[positions] == right_key
    groups = positions[matched]
    match_counts = counts[groups]
    right_rows = np.repeat(np.nonzero(matched)[0], match_counts)
    offsets = np.repeat(starts[groups], match_counts) + _ranges(match_counts)
    return order[offsets], right_rows


def cross_indices(left_count: int, right_count: int
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs of the full cross product."""
    left_rows = np.repeat(np.arange(left_count, dtype=np.int64),
                          right_count)
    right_rows = np.tile(np.arange(right_count, dtype=np.int64),
                         left_count)
    return left_rows, right_rows


class Frontier:
    """The executor's intermediate table."""

    __slots__ = ("columns", "annotations", "row_count")

    def __init__(self, columns: dict[Var, np.ndarray],
                 annotations: np.ndarray):
        self.columns = columns
        self.annotations = annotations
        self.row_count = len(annotations)

    def select(self, keep: np.ndarray) -> "Frontier":
        """The sub-frontier of the rows selected by a boolean mask."""
        return Frontier({var: column[keep]
                         for var, column in self.columns.items()},
                        self.annotations[keep])


def _filtered_relation(step, relation, interner):
    """Apply const/dup filters; ``(columns per out var, annotations)``.

    Returns ``None`` when a constant was never interned — no row can
    match, the member evaluates to the empty table.
    """
    keep = None
    for position, constant in step.const_filters:
        ident = interner.lookup(constant)
        if ident is None:
            return None
        mask = relation.columns[position] == ident
        keep = mask if keep is None else keep & mask
    for later, first in step.dup_filters:
        mask = relation.columns[later] == relation.columns[first]
        keep = mask if keep is None else keep & mask
    if keep is None:
        columns = {var: relation.columns[position]
                   for var, position in step.out_vars}
        return columns, relation.annotations
    rows = np.nonzero(keep)[0]
    columns = {var: relation.columns[position][rows]
               for var, position in step.out_vars}
    return columns, relation.annotations[rows]


def run_plan(plan: EvalPlan, instance: ColumnarInstance) -> Frontier | None:
    """Execute ``plan``; ``None`` means the answer table is empty.

    The returned frontier has one id column per query variable and the
    un-aggregated ⊗-annotation per surviving valuation; head grouping
    and the final ⊕-fold are the engine's job.
    """
    ops = instance.ops
    frontier: Frontier | None = None
    for step in plan.steps:
        relation = instance.relations.get(step.relation)
        if relation is None or relation.arity != step.arity:
            return None
        filtered = _filtered_relation(step, relation, instance.interner)
        if filtered is None:
            return None
        columns, annotations = filtered
        if frontier is None:
            frontier = Frontier(dict(columns), annotations)
        elif step.join_vars:
            left_key, right_key = pack_pairs(
                [frontier.columns[var] for var in step.join_vars],
                [columns[var] for var in step.join_vars])
            left_rows, right_rows = join_indices(left_key, right_key)
            merged = {var: column[left_rows]
                      for var, column in frontier.columns.items()}
            for var in step.new_vars:
                merged[var] = columns[var][right_rows]
            frontier = Frontier(
                merged, ops.mul(frontier.annotations[left_rows],
                                annotations[right_rows]))
        else:
            left_rows, right_rows = cross_indices(frontier.row_count,
                                                  len(annotations))
            merged = {var: column[left_rows]
                      for var, column in frontier.columns.items()}
            for var in step.new_vars:
                merged[var] = columns[var][right_rows]
            frontier = Frontier(
                merged, ops.mul(frontier.annotations[left_rows],
                                annotations[right_rows]))
        for x, y in step.ineq_checks:
            frontier = frontier.select(
                frontier.columns[x] != frontier.columns[y])
        if not frontier.row_count:
            return None
    return frontier
