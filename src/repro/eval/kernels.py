"""Kernel dispatch: columnar ⊕/⊗ for *every* registered semiring.

Numeric semirings declare exact dtype kernels through
:meth:`repro.semirings.base.Semiring.vectorized_ops`
(see :mod:`repro.semirings._vectorized`).  Everything else — Why/Lin
frozensets, provenance polynomials, ``Fraction``-valued Viterbi/fuzzy
semirings (floats would break byte-identical agreement), product
semirings — runs on :class:`GenericObjectOps`: object-dtype columns
whose element-wise operations call the scalar semiring through
``np.frompyfunc`` and whose segment fold replays exactly the
first-value-then-``add`` accumulation of
:func:`repro.queries.evaluation.evaluate_all`.

:func:`ops_for` is the single dispatch point.  A declared kernel that
*refuses* an actual payload (``OverflowError`` from ``encode`` — e.g.
``N`` counts beyond int64) is demoted to the generic path by the caller
(:meth:`repro.eval.columns.ColumnarInstance.from_instance`), so
exactness never depends on the dtype fast path being applicable.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..semirings.base import Semiring, VectorizedOps

__all__ = ["GenericObjectOps", "ops_for"]


class GenericObjectOps(VectorizedOps):
    """Object-dtype fallback kernels: scalar semiring ops, element-wise.

    Works for every semiring by construction — ``encode`` stores the
    normalized Python elements themselves, so ``decode`` is the
    identity and agreement with the tuple-at-a-time evaluator is
    trivial.  Throughput is bounded by the Python-level operations, but
    the join machinery around it (interning, hashing, expansion) is
    still vectorized.
    """

    dtype = None

    def __init__(self, semiring: Semiring):
        self.semiring = semiring
        self._add = np.frompyfunc(semiring.add, 2, 1)
        self._mul = np.frompyfunc(semiring.mul, 2, 1)

    def encode(self, values: Sequence[Any]) -> np.ndarray:
        array = np.empty(len(values), dtype=object)
        for index, value in enumerate(values):
            array[index] = value
        return array

    def decode(self, array: np.ndarray) -> list:
        return list(array)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._add(a, b)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._mul(a, b)

    def segment_add(self, values: np.ndarray, group_ids: np.ndarray,
                    group_count: int) -> np.ndarray:
        out = np.empty(group_count, dtype=object)
        filled = np.zeros(group_count, dtype=bool)
        add = self.semiring.add
        for index in range(len(values)):
            group = group_ids[index]
            if filled[group]:
                out[group] = add(out[group], values[index])
            else:
                out[group] = values[index]
                filled[group] = True
        return out


def ops_for(semiring: Semiring) -> VectorizedOps:
    """The columnar kernels for ``semiring``.

    Prefers the semiring's declared exact dtype kernels and falls back
    to :class:`GenericObjectOps`.  Callers that feed real payloads
    through a declared kernel must additionally catch
    ``OverflowError`` and retry generically.
    """
    declared = semiring.vectorized_ops()
    if declared is not None:
        return declared
    return GenericObjectOps(semiring)
