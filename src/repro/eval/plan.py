"""Static join plans for columnar CQ evaluation.

A plan fixes, per CQ, everything the executor in
:mod:`repro.eval.join` needs that does not depend on the data: the atom
order, and per atom the constant filters, intra-atom repeated-variable
constraints, which variables join against the already-built frontier,
which are newly bound, and which inequality pairs become fully bound.

Atom order follows the most-constrained-first idea of
:mod:`repro.homomorphisms.search`, transplanted to the data-free
setting: greedily pick the atom with the most variables already bound
by earlier steps (so every join has equality keys and cross products
are a last resort), breaking ties toward more constants and repeated
variables (selective filters first), then fewer new variables, then the
canonical atom order for determinism.

Plans are immutable, hashable and numpy-free, so they ride the engine's
cache plumbing like every other derived structure: the module-level
:func:`cached_plan` memo backs the default
:class:`~repro.core.context.DecisionContext`, and
``ContainmentEngine`` routes the same call through its ``eval_plans``
LRU layer (snapshot-portable — plans contain only query terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from ..queries.atoms import Var, is_var
from ..queries.ccq import CQWithInequalities
from ..queries.cq import CQ

__all__ = ["AtomStep", "EvalPlan", "build_plan", "cached_plan"]


@dataclass(frozen=True)
class AtomStep:
    """One atom's contribution to the join pipeline."""

    relation: str
    arity: int
    #: ``(position, constant)`` filters from constant terms.
    const_filters: tuple[tuple[int, Any], ...]
    #: ``(later, first)`` position pairs of repeated variables.
    dup_filters: tuple[tuple[int, int], ...]
    #: Distinct variables with their first position, in term order.
    out_vars: tuple[tuple[Var, int], ...]
    #: Subset of ``out_vars``' variables already bound by earlier steps.
    join_vars: tuple[Var, ...]
    #: Variables this step binds for the first time.
    new_vars: tuple[Var, ...]
    #: Inequality pairs that become fully bound after this step.
    ineq_checks: tuple[tuple[Var, Var], ...]


@dataclass(frozen=True)
class EvalPlan:
    """A complete, data-independent evaluation plan for one CQ."""

    head: tuple
    steps: tuple[AtomStep, ...]


def _atom_shape(atom):
    """``(const_filters, dup_filters, out_vars)`` of one atom."""
    const_filters = []
    dup_filters = []
    first_position: dict[Var, int] = {}
    for position, term in enumerate(atom.terms):
        if not is_var(term):
            const_filters.append((position, term))
        elif term in first_position:
            dup_filters.append((position, first_position[term]))
        else:
            first_position[term] = position
    out_vars = tuple(sorted(first_position.items(), key=lambda kv: kv[1]))
    return tuple(const_filters), tuple(dup_filters), out_vars


def build_plan(query: CQ) -> EvalPlan:
    """Compile ``query`` into an :class:`EvalPlan`.

    Raises :class:`ValueError` for non-range-restricted queries (a head
    variable that no atom binds), which the tuple-at-a-time evaluator
    cannot answer either.
    """
    inequalities = (tuple(sorted((tuple(sorted(pair)) for pair in
                                  query.inequalities)))
                    if isinstance(query, CQWithInequalities) else ())
    shapes = [(atom, *_atom_shape(atom)) for atom in query.atoms]
    bound: set[Var] = set()
    pending_ineqs = list(inequalities)
    steps: list[AtomStep] = []
    remaining = list(range(len(shapes)))
    while remaining:
        def priority(index: int):
            atom, const_filters, dup_filters, out_vars = shapes[index]
            already = sum(1 for var, _ in out_vars if var in bound)
            return (-already, -(len(const_filters) + len(dup_filters)),
                    len(out_vars), atom.sort_key())

        index = min(remaining, key=priority)
        remaining.remove(index)
        atom, const_filters, dup_filters, out_vars = shapes[index]
        join_vars = tuple(var for var, _ in out_vars if var in bound)
        new_vars = tuple(var for var, _ in out_vars if var not in bound)
        bound.update(new_vars)
        ready = tuple(pair for pair in pending_ineqs
                      if pair[0] in bound and pair[1] in bound)
        pending_ineqs = [pair for pair in pending_ineqs
                         if pair not in ready]
        steps.append(AtomStep(
            relation=atom.relation, arity=atom.arity,
            const_filters=const_filters, dup_filters=dup_filters,
            out_vars=out_vars, join_vars=join_vars, new_vars=new_vars,
            ineq_checks=ready,
        ))
    if pending_ineqs:
        raise ValueError(
            f"inequality variables never bound by any atom: {pending_ineqs}")
    unbound = [term for term in query.head
               if is_var(term) and term not in bound]
    if unbound:
        raise ValueError(
            f"query is not range-restricted: head variables {unbound} "
            "appear in no atom")
    return EvalPlan(head=tuple(query.head), steps=tuple(steps))


@lru_cache(maxsize=4096)
def cached_plan(query: CQ) -> EvalPlan:
    """Process-wide plan memo backing the default decision context."""
    return build_plan(query)
