"""Homomorphism search, covering, isomorphism and UCQ conditions."""

from .cores import core_of, is_core, retracts
from .covering import covered_atoms, covers
from .isomorphism import (are_isomorphic, automorphism_count, canonical_key,
                          isomorphism_classes)
from .search import (HomKind, find_homomorphism, has_homomorphism,
                     homomorphisms)
from .ucq_conditions import (bi_count_infty, bi_count_k, covering_2,
                             covering_union, local_condition, sur_infty)

__all__ = [
    "HomKind", "are_isomorphic", "automorphism_count", "bi_count_infty",
    "bi_count_k", "canonical_key", "core_of", "covered_atoms", "covering_2",
    "covering_union", "covers", "find_homomorphism", "has_homomorphism",
    "homomorphisms", "is_core", "isomorphism_classes", "local_condition",
    "retracts", "sur_infty",
]
