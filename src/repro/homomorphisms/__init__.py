"""Homomorphism search, covering, isomorphism and UCQ conditions."""

from .canonical import CanonicalForm, canonical_form, compute_canonical_form
from .cores import core_of, is_core, retracts
from .covering import covered_atoms, covers
from .isomorphism import (are_isomorphic, automorphism_count, canonical_key,
                          canonical_rename, endomorphisms, is_automorphism,
                          isomorphism_classes)
from .search import (HomKind, find_homomorphism, has_homomorphism,
                     homomorphisms)
from .ucq_conditions import (bi_count_infty, bi_count_k, covering_2,
                             covering_union, local_condition, sur_infty)

__all__ = [
    "CanonicalForm", "HomKind", "are_isomorphic", "automorphism_count",
    "bi_count_infty", "bi_count_k", "canonical_form", "canonical_key",
    "canonical_rename", "compute_canonical_form", "core_of",
    "covered_atoms", "covering_2", "covering_union", "covers",
    "endomorphisms", "find_homomorphism", "has_homomorphism",
    "homomorphisms", "is_automorphism", "is_core", "isomorphism_classes",
    "local_condition", "retracts", "sur_infty",
]
