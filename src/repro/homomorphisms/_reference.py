"""The pre-plan reference homomorphism searcher (kept for validation).

This is the original generate-and-test backtracker that
:mod:`repro.homomorphisms.search` replaced with an indexed, plan-driven
matcher: it tries every distinct target atom as a candidate for every
source atom in body order, and checks inequality preservation only
after a full mapping is built.  It is deliberately kept verbatim so

* ``benchmarks/bench_hom_search.py`` can measure the speedup of the
  indexed search against the exact pre-rewrite baseline, and
* the property tests can assert old/new answer equivalence on random
  query pairs (the two implementations must enumerate the same mapping
  *sets*; enumeration order is not part of the contract).

Nothing in the library proper may import this module.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..queries.atoms import Atom, Var, is_var
from ..queries.cq import CQ
from .search import HomKind

__all__ = [
    "reference_homomorphisms",
    "reference_find_homomorphism",
    "reference_has_homomorphism",
]


def _target_inequality_ok(source: CQ, target: CQ, mapping: dict) -> bool:
    """Check inequality preservation for the fully built ``mapping``."""
    source_pairs = getattr(source, "inequalities", frozenset())
    if not source_pairs:
        return True
    target_pairs = getattr(target, "inequalities", frozenset())
    target_existential = set(
        target.existential_vars()) if isinstance(target, CQ) else set()
    for pair in source_pairs:
        x, y = tuple(pair)
        image_x = mapping.get(x, x)
        image_y = mapping.get(y, y)
        if image_x == image_y:
            return False
        both_vars = is_var(image_x) and is_var(image_y)
        if both_vars:
            if (image_x in target_existential
                    and image_y in target_existential
                    and frozenset((image_x, image_y)) in target_pairs):
                continue
            return False
        if not is_var(image_x) and not is_var(image_y):
            continue  # two distinct constants are always separated
        return False
    return True


def _compatible(atom: Atom, candidate: Atom, mapping: dict) -> dict | None:
    """Try to extend ``mapping`` so that ``atom`` maps onto ``candidate``."""
    if atom.relation != candidate.relation or atom.arity != candidate.arity:
        return None
    extension: dict | None = None
    for term, image in zip(atom.terms, candidate.terms):
        if is_var(term):
            current = mapping.get(term)
            if extension is not None and term in extension:
                current = extension[term]
            if current is None:
                if extension is None:
                    extension = {}
                extension[term] = image
            elif current != image:
                return None
        elif term != image:
            return None
    if extension is None:
        return mapping
    merged = dict(mapping)
    merged.update(extension)
    return merged


def reference_homomorphisms(source: CQ, target: CQ,
                            kind: HomKind = HomKind.PLAIN) -> Iterator[dict]:
    """Enumerate homomorphisms with the pre-rewrite naive backtracker."""
    if source.arity != target.arity:
        return
    mapping: dict[Var, Any] = {}
    for var, image in zip(source.head, target.head):
        if mapping.setdefault(var, image) != image:
            return
    if kind is HomKind.BIJECTIVE and len(source.atoms) != len(target.atoms):
        return
    if kind is HomKind.SURJECTIVE and len(source.atoms) < len(target.atoms):
        return
    target_counts: dict[Atom, int] = {}
    for atom in target.atoms:
        target_counts[atom] = target_counts.get(atom, 0) + 1
    distinct_targets = tuple(target_counts)
    seen: set = set()
    for result in _search(source.atoms, 0, mapping, distinct_targets,
                          target_counts, {}, kind):
        key = frozenset(result.items())
        if key in seen:
            continue
        seen.add(key)
        if _target_inequality_ok(source, target, result):
            yield result


def _search(atoms: tuple[Atom, ...], index: int, mapping: dict,
            candidates: tuple[Atom, ...], target_counts: dict,
            image_counts: dict, kind: HomKind) -> Iterator[dict]:
    if index == len(atoms):
        if kind in (HomKind.SURJECTIVE, HomKind.BIJECTIVE):
            covered = all(
                image_counts.get(atom, 0) >= count
                for atom, count in target_counts.items()
            )
            if not covered:
                return
        yield dict(mapping)
        return
    atom = atoms[index]
    for candidate in candidates:
        extended = _compatible(atom, candidate, mapping)
        if extended is None:
            continue
        used = image_counts.get(candidate, 0) + 1
        if kind in (HomKind.INJECTIVE, HomKind.BIJECTIVE):
            if used > target_counts[candidate]:
                continue
        image_counts[candidate] = used
        yield from _search(atoms, index + 1, extended, candidates,
                           target_counts, image_counts, kind)
        if used == 1:
            del image_counts[candidate]
        else:
            image_counts[candidate] = used - 1


def reference_find_homomorphism(source: CQ, target: CQ,
                                kind: HomKind = HomKind.PLAIN) -> dict | None:
    """The first homomorphism found by the reference search, or None."""
    for mapping in reference_homomorphisms(source, target, kind):
        return mapping
    return None


def reference_has_homomorphism(source: CQ, target: CQ,
                               kind: HomKind = HomKind.PLAIN) -> bool:
    """Existence check via the reference search."""
    return reference_find_homomorphism(source, target, kind) is not None
