"""The original permutation-based isomorphism machinery (reference).

Before PR 5, :mod:`repro.homomorphisms.isomorphism` computed canonical
keys, canonical renamings and automorphism counts by minimizing a
serialization over *all* permutations of the existential variables —
factorial time, unusable past ~10 existentials.  The production path
now delegates to the refinement-based engine in
:mod:`repro.homomorphisms.canonical`; this module preserves the
exhaustive algorithm as an executable specification for the
equivalence property tests (``tests/test_canonical_labeling.py``) and
the agreement sweep in ``benchmarks/bench_canonical.py``.

Two historical bugs are fixed here as well, so the reference states
the intended semantics rather than the buggy ones:

* serializations label variables with integers, not strings (the old
  ``"e10" < "e2"`` string order disagreed with label order for ten or
  more labels);
* the reference renaming draws capture-free fresh names through
  :func:`repro.homomorphisms.canonical.fresh_existential_labels`, so a
  head variable literally named ``e0`` is never captured.
"""

from __future__ import annotations

from itertools import permutations

from ..queries.atoms import Var, is_var
from ..queries.cq import CQ
from .canonical import fresh_existential_labels

__all__ = [
    "reference_automorphism_count",
    "reference_canonical_key",
    "reference_canonical_rename",
    "reference_serialize",
]


def reference_serialize(query: CQ, mapping: dict) -> tuple:
    """A hashable normal form of ``query`` under an existential-variable
    labeling (variable → integer label); free variables serialize by
    first head position, constants by type and representation."""
    head_positions: dict[Var, int] = {}
    for position, var in enumerate(query.head):
        head_positions.setdefault(var, position)

    def term_key(term):
        if is_var(term):
            if term in mapping:
                return (1, mapping[term])
            return (0, head_positions[term])
        return (2, type(term).__name__, repr(term))

    atoms = tuple(sorted(
        (atom.relation, tuple(term_key(term) for term in atom.terms))
        for atom in query.atoms
    ))
    inequalities = tuple(sorted(
        tuple(sorted(term_key(var) for var in pair))
        for pair in getattr(query, "inequalities", frozenset())
    ))
    return (atoms, inequalities)


def reference_canonical_key(query: CQ) -> tuple:
    """Canonical form by exhaustive minimization over all labelings.

    Factorial in the number of existential variables — the executable
    specification the refinement engine is tested against.
    """
    existential = query.existential_vars()
    best = None
    for ordering in permutations(range(len(existential))):
        mapping = dict(zip(existential, ordering))
        candidate = reference_serialize(query, mapping)
        if best is None or candidate < best:
            best = candidate
    if best is None:  # no existential variables
        best = reference_serialize(query, {})
    return (type(query).__name__, query.arity, best)


def reference_automorphism_count(query: CQ) -> int:
    """``|Aut|`` by exhaustive enumeration of label permutations."""
    existential = query.existential_vars()
    identity = reference_serialize(
        query, {var: index for index, var in enumerate(existential)})
    count = 0
    for ordering in permutations(range(len(existential))):
        mapping = dict(zip(existential, ordering))
        if reference_serialize(query, mapping) == identity:
            count += 1
    return count


def reference_canonical_rename(query: CQ) -> CQ:
    """Canonical renaming via the exhaustive minimization, with
    capture-free fresh names."""
    existential = query.existential_vars()
    best = None
    best_mapping: dict = {}
    for ordering in permutations(range(len(existential))):
        mapping = dict(zip(existential, ordering))
        candidate = reference_serialize(query, mapping)
        if best is None or candidate < best:
            best = candidate
            best_mapping = mapping
    labels = fresh_existential_labels(query, len(existential))
    return query.substitute(
        {var: Var(labels[label]) for var, label in best_mapping.items()})
