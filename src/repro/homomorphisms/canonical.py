"""Refinement-based canonical labeling of (C)CQs.

The isomorphism machinery of Sec. 5.2 — canonical keys for the
``→֒k``/``→֒∞`` class counting, canonical renaming for the normalizer,
and automorphism group sizes for the finite-offset reconstruction —
used to minimize a serialization over *all* permutations of the
existential variables, which is factorial and hangs past ~10
existentials.  This module replaces that with the standard
individualization-refinement (IR) scheme of practical graph
canonization (McKay's *nauty* family), adapted to the variable/atom
incidence structure of conjunctive queries:

1. **Color refinement.**  Existential variables are partitioned by an
   iterated invariant: each variable's color is refined by the multiset
   of its atom occurrences — relation, arity, argument position, the
   repetition pattern inside the atom, and the colors (or fixed
   encodings) of the co-occurring terms — plus the multiset of colors
   of its inequality neighbors.  Head variables (encoded by first head
   position) and constants are *fixed*: they never enter the partition
   and anchor it instead.  The first pass subsumes the classic initial
   invariants (relation/arity/position profiles, constants, inequality
   degrees); iteration propagates them to a fixpoint.
2. **Individualization-refinement search.**  If refinement leaves a
   non-singleton cell, the first such cell is the *target*: each of its
   variables is individualized in turn and refinement re-run, building
   an invariant search tree whose leaves are discrete partitions, i.e.
   complete labelings.  The canonical labeling is the leaf minimizing
   the pair *(node-invariant trace, serialization)* — both
   renaming-invariant, so isomorphic queries pick corresponding leaves.
3. **Automorphism pruning and counting.**  A leaf serializing equal to
   the first leaf witnesses an automorphism (compose the two
   labelings); discovered generators prune sibling branches lying in
   the same orbit, and a subtree that yields an automorphism is
   abandoned wholesale (it is the isomorphic image of an explored one).
   The group order falls out of the orbit-stabilizer theorem along the
   first root-to-leaf path: the product, over its branch nodes, of the
   orbit size of the chosen variable under the generators fixing the
   preceding choices pointwise.

The net effect: symmetric inputs (complete CCQs over interchangeable
variables, the worst case for the factorial scheme) canonicalize in a
quadratic number of tree nodes, and a 20-existential complete CCQ gets
key, renaming and ``|Aut|`` in milliseconds
(``benchmarks/bench_canonical.py`` pins this, plus agreement with the
preserved factorial reference in
:mod:`repro.homomorphisms._reference_iso`).

Serializations label variables with *integers* (never strings like
``"e10"``, whose lexicographic order disagrees with label order past
ten labels), and the canonical renaming is capture-free: fresh
existential names skip every head-variable name, so ``Q(e0) :- R(e0,
x)`` can never collapse its existential into the head.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..queries.atoms import Var, is_var
from ..queries.cq import CQ

__all__ = [
    "CanonicalForm",
    "canonical_form",
    "compute_canonical_form",
    "fresh_existential_labels",
]


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical labeling record of one query, computed in one pass.

    ``key`` is a hashable normal form equal across (and only across)
    isomorphic queries; ``renaming`` maps every existential variable to
    its capture-free canonical name; ``labeling`` maps it to its
    canonical integer label; ``automorphisms`` is the order of the
    automorphism group (existential renamings fixing the query).
    """

    key: tuple
    renaming: tuple[tuple[Var, Var], ...]
    labeling: tuple[tuple[Var, int], ...]
    automorphisms: int

    def renaming_map(self) -> dict[Var, Var]:
        """The canonical renaming as a substitution dict."""
        return dict(self.renaming)


def fresh_existential_labels(query: CQ, count: int) -> list[str]:
    """``count`` canonical existential names that avoid capture.

    Names are drawn from ``e0, e1, …`` skipping every *head*-variable
    name — the variables that survive a renaming unchanged, and the
    only ones a fresh existential name could be captured by (all
    existentials are substituted simultaneously).  Skipping exactly the
    head names keeps the scheme idempotent: a canonically-renamed query
    has the same head, hence the same fresh-name sequence.
    """
    forbidden = {var.name for var in query.head}
    labels: list[str] = []
    index = 0
    while len(labels) < count:
        name = f"e{index}"
        if name not in forbidden:
            labels.append(name)
        index += 1
    return labels


#: Leading tags of the term encodings used *inside refinement*: an
#: existential encodes as ``(_EVAR, color, link)``, a head variable as
#: ``(_HEAD, first head position, link)``, a constant as ``(_CONST,
#: type name, repr, link)`` — disjoint tags keep mixed comparisons
#: int-vs-int at every tuple position.
_EVAR, _HEAD, _CONST = 0, 1, 2


class _Structure:
    """Integer-indexed incidence view of one query.

    Existential variables become indices ``0..n-1`` (in sorted-name
    order); every per-variable table below is a list indexed by them,
    so the refinement loop touches no ``Var`` hashing at all.
    """

    __slots__ = ("query", "evars", "n", "atom_signatures", "occurrences",
                 "atom_templates", "serial_templates", "ineq_colors",
                 "ineq_fixed", "ineq_serial", "head_positions")

    def __init__(self, query: CQ):
        self.query = query
        head_positions: dict[Var, int] = {}
        for position, var in enumerate(query.head):
            head_positions.setdefault(var, position)
        self.head_positions = head_positions
        head = set(query.head)
        body_vars = {v for atom in query.atoms for v in atom.variables()}
        self.evars = tuple(sorted(body_vars - head))
        self.n = len(self.evars)
        index = {var: i for i, var in enumerate(self.evars)}

        def fixed_refine_code(term) -> tuple:
            if is_var(term):
                return (_HEAD, head_positions[term])
            return (_CONST, type(term).__name__, repr(term))

        def fixed_serial_code(term) -> tuple:
            if is_var(term):
                return (0, head_positions[term])
            return (2, type(term).__name__, repr(term))

        occurrences: list[list] = [[] for _ in self.evars]
        atom_templates = []
        serial_templates = []
        atom_signatures = []
        for atom_index, atom in enumerate(query.atoms):
            atom_signatures.append((atom.relation, len(atom.terms)))
            first_seen: dict = {}
            refine_entries = []
            serial_entries = []
            for position, term in enumerate(atom.terms):
                link = first_seen.setdefault(term, position)
                var_index = index.get(term) if is_var(term) else None
                if var_index is None:
                    refine_entries.append(
                        (None, fixed_refine_code(term) + (link,)))
                    serial_entries.append((None, fixed_serial_code(term)))
                else:
                    occurrences[var_index].append((atom_index, position))
                    refine_entries.append((var_index, link))
                    serial_entries.append((var_index, None))
            atom_templates.append(tuple(refine_entries))
            serial_templates.append((atom.relation, tuple(serial_entries)))
        self.atom_signatures = tuple(atom_signatures)
        self.occurrences = [tuple(occ) for occ in occurrences]
        self.atom_templates = tuple(atom_templates)
        self.serial_templates = tuple(serial_templates)

        pairs = getattr(query, "inequalities", frozenset())
        ineq_colors: list[list[int]] = [[] for _ in self.evars]
        ineq_fixed: list[list[tuple]] = [[] for _ in self.evars]
        ineq_serial = []
        for pair in pairs:
            x, y = tuple(pair)
            xi, yi = index.get(x), index.get(y)
            for mine, other, other_index in ((xi, y, yi), (yi, x, xi)):
                if mine is None:
                    continue
                if other_index is not None:
                    ineq_colors[mine].append(other_index)
                else:
                    ineq_fixed[mine].append(fixed_refine_code(other))
            ineq_serial.append((
                (xi, None) if xi is not None else (None, fixed_serial_code(x)),
                (yi, None) if yi is not None else (None, fixed_serial_code(y)),
            ))
        self.ineq_colors = [tuple(ns) for ns in ineq_colors]
        self.ineq_fixed = [tuple(sorted(fs)) for fs in ineq_fixed]
        self.ineq_serial = tuple(ineq_serial)

    def serialize(self, labeling: list[int]) -> tuple:
        """The hashable normal form under a complete integer labeling:
        existential variables encode as ``(1, label)``, head variables
        as ``(0, first head position)``, constants as ``(2, type name,
        repr)``."""
        atoms = tuple(sorted(
            (relation, tuple(
                (1, labeling[var_index]) if var_index is not None else fixed
                for var_index, fixed in entries))
            for relation, entries in self.serial_templates
        ))

        def encode(entry):
            var_index, fixed = entry
            return (1, labeling[var_index]) if var_index is not None \
                else fixed

        inequalities = tuple(sorted(
            tuple(sorted((encode(x), encode(y))))
            for x, y in self.ineq_serial
        ))
        return (atoms, inequalities)


def _refine(struct: _Structure, colors: list[int]) -> list[int]:
    """Iterated color refinement to a fixpoint.

    New colors are ranks of sorted signatures, so the color *order* is
    itself renaming-invariant — the property the IR tree relies on.
    """
    n = struct.n
    while True:
        atom_codes = [
            tuple((_EVAR, colors[entry[0]], entry[1])
                  if entry[0] is not None else entry[1]
                  for entry in template)
            for template in struct.atom_templates
        ]
        signatures = []
        for i in range(n):
            occurrence_sig = sorted(
                (struct.atom_signatures[atom_index], position,
                 atom_codes[atom_index])
                for atom_index, position in struct.occurrences[i]
            )
            ineq_sig = sorted(colors[j] for j in struct.ineq_colors[i])
            signatures.append((colors[i], tuple(occurrence_sig),
                               tuple(ineq_sig), struct.ineq_fixed[i]))
        ranks = {signature: rank for rank, signature
                 in enumerate(sorted(set(signatures)))}
        refined = [ranks[signature] for signature in signatures]
        if refined == colors:
            return colors
        colors = refined
        if len(ranks) == n:
            return colors


def _individualize(colors: list[int], var_index: int) -> list[int]:
    """Split one variable into its own cell, preceding its cellmates."""
    marks = [(color, 1) for color in colors]
    marks[var_index] = (colors[var_index], 0)
    ranks = {mark: rank for rank, mark in enumerate(sorted(set(marks)))}
    return [ranks[mark] for mark in marks]


def _cells(colors: list[int]) -> list[list[int]]:
    """The ordered partition: cells in color order, members in index
    (= sorted variable name) order."""
    cells: dict[int, list[int]] = {}
    for var_index, color in enumerate(colors):
        cells.setdefault(color, []).append(var_index)
    return [cells[color] for color in sorted(cells)]


def _orbit_union(n: int, generators) -> list[int]:
    """Orbit representative per index under the generated group."""
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != x:
            parent[x], x = root, parent[x]
        return root

    for generator in generators:
        for x in range(n):
            root_a, root_b = find(x), find(generator[x])
            if root_a != root_b:
                parent[root_a] = root_b
    return [find(x) for x in range(n)]


class _CanonicalSearch:
    """One individualization-refinement search over a query structure.

    Tracks the first leaf (automorphism anchor), the best leaf
    (canonical choice, minimal ``(trace, serialization)``), discovered
    automorphism generators, and the first-path branch levels that the
    orbit-stabilizer group-order computation reads afterwards.
    """

    def __init__(self, struct: _Structure):
        self.struct = struct
        self.first_trace: tuple | None = None
        self.first_ser = None
        self.first_inverse: list[int] | None = None
        self.best_trace: tuple | None = None
        self.best_ser = None
        self.best_labeling: list[int] | None = None
        self.best_inverse: list[int] | None = None
        self.generators: list[tuple[int, ...]] = []
        self.first_levels: list[tuple[tuple, int]] = []

    # -- trace comparisons (end-of-trace sorts before any element) -----

    def _prefix_equal(self, trace: tuple, reference: tuple) -> bool:
        if len(trace) > len(reference):
            return False
        return reference[:len(trace)] == trace

    def _prefix_compare(self, trace: tuple, reference: tuple) -> int:
        for ours, theirs in zip(trace, reference):
            if ours != theirs:
                return -1 if ours < theirs else 1
        if len(trace) > len(reference):
            return 1  # the reference path reached its leaf first
        return 0

    def _leaf_compare(self, trace: tuple, serialization) -> int:
        for ours, theirs in zip(trace, self.best_trace):
            if ours != theirs:
                return -1 if ours < theirs else 1
        if len(trace) != len(self.best_trace):
            return -1 if len(trace) < len(self.best_trace) else 1
        if serialization != self.best_ser:
            return -1 if serialization < self.best_ser else 1
        return 0

    # -- the search -----------------------------------------------------

    def run(self) -> None:
        colors = _refine(self.struct, [0] * self.struct.n)
        self._node(colors, 0, (), (), None)

    def _record(self, inverse: list[int], labeling: list[int]) -> None:
        """Derive the automorphism carrying one equal-serialization
        labeling onto another and store it as a generator."""
        generator = tuple(inverse[label] for label in labeling)
        if any(generator[x] != x for x in range(len(generator))):
            self.generators.append(generator)

    def _invert(self, labeling: list[int]) -> list[int]:
        inverse = [0] * len(labeling)
        for var_index, label in enumerate(labeling):
            inverse[label] = var_index
        return inverse

    def _leaf(self, labeling: list[int], trace: tuple, div_depth):
        serialization = self.struct.serialize(labeling)
        if self.first_ser is None:
            self.first_trace = trace
            self.first_ser = serialization
            self.first_inverse = self._invert(labeling)
            self.best_trace = trace
            self.best_ser = serialization
            self.best_labeling = list(labeling)
            self.best_inverse = self.first_inverse
            return None
        if serialization == self.first_ser:
            self._record(self.first_inverse, labeling)
            return div_depth  # subtree ≅ an explored one: backjump
        comparison = self._leaf_compare(trace, serialization)
        if comparison < 0:
            self.best_trace = trace
            self.best_ser = serialization
            self.best_labeling = list(labeling)
            self.best_inverse = self._invert(labeling)
        elif comparison == 0:
            self._record(self.best_inverse, labeling)
        return None

    def _node(self, colors: list[int], depth: int, prefix: tuple,
              trace: tuple, div_depth):
        counts: dict[int, int] = {}
        for color in colors:
            counts[color] = counts.get(color, 0) + 1
        invariant = tuple(sorted(counts.items()))
        trace = trace + (invariant,)
        if self.first_ser is not None:
            equals_first = self._prefix_equal(trace, self.first_trace)
            if (not equals_first
                    and self._prefix_compare(trace, self.best_trace) > 0):
                return None  # holds neither the canonical nor a first-equal leaf
        target = next((cell for cell in _cells(colors) if len(cell) > 1),
                      None)
        if target is None:
            return self._leaf(colors, trace, div_depth)
        if div_depth is None:
            self.first_levels.append((prefix, target[0]))
        explored: list[int] = []
        orbit_map: list[int] | None = None
        seen_generators = -1
        for index, candidate in enumerate(target):
            if explored:
                if len(self.generators) != seen_generators:
                    applicable = [
                        generator for generator in self.generators
                        if all(generator[p] == p for p in prefix)
                    ]
                    orbit_map = (_orbit_union(self.struct.n, applicable)
                                 if applicable else None)
                    seen_generators = len(self.generators)
                if orbit_map is not None and any(
                        orbit_map[candidate] == orbit_map[done]
                        for done in explored):
                    continue
            child_div = div_depth
            if child_div is None and not (index == 0
                                          and self.first_ser is None):
                child_div = depth
            child_colors = _refine(self.struct,
                                   _individualize(colors, candidate))
            signal = self._node(child_colors, depth + 1,
                                prefix + (candidate,), trace, child_div)
            explored.append(candidate)
            if signal is not None:
                if signal < depth:
                    return signal
                # signal == depth: this candidate's subtree was the
                # automorphic image of an explored one; keep looping.
        return None

    def group_order(self) -> int:
        """``|Aut|`` by orbit-stabilizer along the first path."""
        order = 1
        for prefix, chosen in self.first_levels:
            fixing = [generator for generator in self.generators
                      if all(generator[p] == p for p in prefix)]
            if not fixing:
                continue
            orbit_map = _orbit_union(self.struct.n, fixing)
            orbit = orbit_map[chosen]
            order *= orbit_map.count(orbit)
        return order


def compute_canonical_form(query: CQ) -> CanonicalForm:
    """Canonical key, capture-free renaming and ``|Aut|`` in one pass.

    This is the uncached computation; callers wanting process-wide
    memoization use :func:`canonical_form`, and
    :class:`repro.api.ContainmentEngine` routes it through its own
    observable, snapshot-persisted LRU layer instead.
    """
    struct = _Structure(query)
    search = _CanonicalSearch(struct)
    search.run()
    labeling = search.best_labeling or []
    key = (type(query).__name__, query.arity, search.best_ser)
    labels = fresh_existential_labels(query, struct.n)
    renaming = tuple(
        (var, Var(labels[labeling[i]]))
        for i, var in enumerate(struct.evars))
    named_labeling = tuple(
        (var, labeling[i]) for i, var in enumerate(struct.evars))
    return CanonicalForm(
        key=key,
        renaming=renaming,
        labeling=named_labeling,
        automorphisms=search.group_order(),
    )


@lru_cache(maxsize=8192)
def canonical_form(query: CQ) -> CanonicalForm:
    """Process-wide memo of :func:`compute_canonical_form`.

    Queries are immutable, so the form is a pure function of the query.
    This default memo backs the plain module functions and
    :class:`repro.core.DecisionContext`; engines carry their own LRU so
    the layer shows up in ``cache_stats()`` and snapshots.
    """
    return compute_canonical_form(query)
