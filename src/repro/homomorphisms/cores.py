"""Cores of conjunctive queries.

The *core* of a CQ is its smallest retract: the image of an
endomorphism that cannot be shrunk further.  Under set semantics
(``Chom``) a CQ is equivalent to its core, and two CQs are equivalent
iff their cores are isomorphic — the classical Chandra–Merlin
minimization that the paper generalizes away from: over ``Cbi``
semirings the core construction is *unsound* (folding loses
multiplicities), which `repro.optimize.minimize_cq` handles by checking
``K``-equivalence per deletion instead.

This module provides the classical object itself, used to cross-check
the optimizer under ``B`` and to exhibit the contrast.
"""

from __future__ import annotations

from ..queries.cq import CQ
from .search import HomKind, homomorphisms

__all__ = ["core_of", "is_core", "retracts"]


def retracts(query: CQ):
    """Proper retracts of ``query``: subqueries induced by endomorphism
    images with strictly fewer distinct atoms."""
    seen: set[CQ] = set()
    atom_set = set(query.atoms)
    for mapping in homomorphisms(query, query, HomKind.PLAIN):
        image = {atom.substitute(mapping) for atom in query.atoms}
        if len(image) < len(atom_set):
            candidate = CQ(query.head, tuple(sorted(image)))
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def core_of(query: CQ) -> CQ:
    """The core: repeatedly retract until no proper retract exists.

    The result is unique up to isomorphism (a classical fact); with the
    deterministic enumeration order the returned representative is
    reproducible.  Duplicate atoms never survive (a set-semantics core
    is a set of atoms).
    """
    current = CQ(query.head, tuple(sorted(set(query.atoms))))
    while True:
        candidate = next(iter(retracts(current)), None)
        if candidate is None:
            return current
        current = candidate


def is_core(query: CQ) -> bool:
    """True iff the query has no proper retract (and no duplicates)."""
    if len(set(query.atoms)) != len(query.atoms):
        return False
    return next(iter(retracts(query)), None) is None
