"""Homomorphic covering ``Q2 ⇉ Q1`` (Sec. 4.1).

``Q2`` homomorphically covers ``Q1`` iff for every atom of ``Q1`` there
is a homomorphism from ``Q2`` to ``Q1`` whose image contains that atom.
This is the characterizing condition of the class ``Chcov``
(⊗-idempotent semirings with the ``Nhcov`` necessity axiom; the lineage
semiring is the flagship member, Thm. 4.3).  Checking it is
NP-complete.

Both functions accept an optional ``context``
(:class:`repro.core.decision-context-like <repro.core.DecisionContext>`
duck type) through which callers such as
:class:`repro.api.ContainmentEngine` interpose result caches; with no
context the plain lazy computation runs — enumeration stops as soon as
every target atom is covered.
"""

from __future__ import annotations

from ..queries.cq import CQ
from .search import HomKind, homomorphisms

__all__ = ["covers", "covered_atoms"]


def covered_atoms(source: CQ, target: CQ, *, context=None) -> frozenset:
    """The atoms of ``target`` that occur in the image of some
    homomorphism from ``source``."""
    if context is not None:
        return context.covered_atoms(source, target)
    remaining = set(target.atoms)
    covered = set()
    for mapping in homomorphisms(source, target, HomKind.PLAIN):
        image = {atom.substitute(mapping) for atom in source.atoms}
        newly = remaining & image
        covered |= newly
        remaining -= newly
        if not remaining:
            break
    return frozenset(covered)


def covers(source: CQ, target: CQ, *, context=None) -> bool:
    """Decide ``source ⇉ target`` (homomorphic covering).

    Coverage is judged per distinct atom *value*: an atom occurring
    twice in ``target`` is covered as soon as its value appears in some
    homomorphic image (images cannot distinguish occurrences).
    """
    if context is not None:
        return context.covers(source, target)
    return len(covered_atoms(source, target,
                             context=context)) == len(set(target.atoms))
