"""Homomorphic covering ``Q2 ⇉ Q1`` (Sec. 4.1).

``Q2`` homomorphically covers ``Q1`` iff for every atom of ``Q1`` there
is a homomorphism from ``Q2`` to ``Q1`` whose image contains that atom.
This is the characterizing condition of the class ``Chcov``
(⊗-idempotent semirings with the ``Nhcov`` necessity axiom; the lineage
semiring is the flagship member, Thm. 4.3).  Checking it is
NP-complete.
"""

from __future__ import annotations

from ..queries.cq import CQ
from .search import HomKind, homomorphisms

__all__ = ["covers", "covered_atoms"]


def covered_atoms(source: CQ, target: CQ) -> frozenset:
    """The atoms of ``target`` that occur in the image of some
    homomorphism from ``source``."""
    remaining = set(target.atoms)
    covered = set()
    for mapping in homomorphisms(source, target, HomKind.PLAIN):
        image = {atom.substitute(mapping) for atom in source.atoms}
        newly = remaining & image
        covered |= newly
        remaining -= newly
        if not remaining:
            break
    return frozenset(covered)


def covers(source: CQ, target: CQ) -> bool:
    """Decide ``source ⇉ target`` (homomorphic covering).

    Coverage is judged per distinct atom *value*: an atom occurring
    twice in ``target`` is covered as soon as its value appears in some
    homomorphic image (images cannot distinguish occurrences).
    """
    return len(covered_atoms(source, target)) == len(set(target.atoms))
