"""Isomorphism, canonical forms and automorphisms of (C)CQs (Sec. 5.2).

Two CCQs are isomorphic when they coincide up to a renaming of their
existential variables (heads are fixed).  The UCQ conditions ``→֒k`` and
``→֒∞`` count CCQs per isomorphism class (``⟨Q⟩[Q≃]`` in the paper), so
we compute a *canonical key* and group by it.

The paper's key structural fact, "all endomorphisms of CCQs are
automorphisms", makes the automorphism group the only degree of freedom
a complete CCQ has; its size enters the reconstruction of the ``→֒k``
condition for finite ``k`` (see :mod:`repro.homomorphisms.ucq_conditions`).

All three primitives — key, renaming, group size — delegate to the
refinement-based canonical labeling engine of
:mod:`repro.homomorphisms.canonical`, which computes them in one
individualization-refinement pass instead of minimizing over all
(factorially many) permutations of the existential variables.  The old
exhaustive algorithm survives as an executable specification in
:mod:`repro.homomorphisms._reference_iso`.  Callers holding a
:class:`repro.core.DecisionContext` can route the computation through
an engine's observable LRU via ``context.canonical_form``;
the plain functions here use the process-wide memo.
"""

from __future__ import annotations

from ..queries.cq import CQ
from .canonical import canonical_form

__all__ = [
    "are_isomorphic",
    "automorphism_count",
    "canonical_key",
    "canonical_rename",
    "endomorphisms",
    "is_automorphism",
    "isomorphism_classes",
]


def canonical_key(query: CQ) -> tuple:
    """Canonical form: equal across (and only across) isomorphic
    queries.  Computed by refinement-based canonical labeling — see
    :func:`repro.homomorphisms.canonical.canonical_form`."""
    return canonical_form(query).key


def are_isomorphic(first: CQ, second: CQ) -> bool:
    """True iff the queries coincide up to existential renaming."""
    return canonical_form(first).key == canonical_form(second).key


def automorphism_count(query: CQ) -> int:
    """Size of the automorphism group (existential renamings fixing the
    query; inequalities are preserved by any bijection on a complete
    CCQ, and are checked explicitly otherwise).  Read off the
    individualization-refinement search tree by orbit-stabilizer."""
    return canonical_form(query).automorphisms


def isomorphism_classes(queries, *, context=None) -> dict[tuple, list]:
    """Group a multiset of queries by isomorphism class.

    Returns canonical key → list of members (multiplicities preserved).
    ``context`` optionally routes the canonical-form computation
    through a :class:`repro.core.DecisionContext` (an engine's LRU).
    """
    form = canonical_form if context is None else context.canonical_form
    classes: dict[tuple, list] = {}
    for query in queries:
        classes.setdefault(form(query).key, []).append(query)
    return classes


def canonical_rename(query: CQ) -> CQ:
    """Rename existential variables to the canonical labeling.

    Applies the renaming that realizes :func:`canonical_key` — so two
    isomorphic queries become *equal* (heads unchanged).  Fresh names
    are capture-free: they skip every head-variable name, so a head
    variable literally named ``e0`` can never absorb an existential
    (``Q(e0) :- R(e0, x)`` renames ``x`` to ``e1``, not ``e0``).  Used
    by the normalizer to give equivalent queries identical normal
    forms; idempotent by construction.
    """
    form = canonical_form(query)
    if not form.renaming:
        return query
    return query.substitute(form.renaming_map())


def endomorphisms(query: CQ):
    """All homomorphisms from a query to itself.

    For *complete* CCQs the paper's key structural lemma (Sec. 5.2)
    states that every endomorphism is an automorphism: the pairwise
    inequalities forbid collapsing existential variables, so a CCQ
    cannot be "folded" into itself.  The test suite verifies the lemma
    on random complete descriptions through this function.
    """
    from .search import HomKind, homomorphisms

    return list(homomorphisms(query, query, HomKind.PLAIN))


def is_automorphism(query: CQ, mapping: dict) -> bool:
    """True iff ``mapping`` permutes the variables and fixes the query
    (atom multiset and inequalities)."""
    variables = set()
    for atom in query.atoms:
        variables.update(atom.variables())
    images = {mapping.get(var, var) for var in variables}
    if images != variables:
        return False
    image_atoms = tuple(sorted(
        atom.substitute(mapping) for atom in query.atoms))
    if image_atoms != query.atoms:
        return False
    source_pairs = getattr(query, "inequalities", frozenset())
    image_pairs = {
        frozenset((mapping.get(x, x), mapping.get(y, y)))
        for pair in source_pairs for x, y in (tuple(pair),)
    }
    return image_pairs == set(source_pairs)
