"""Isomorphism, canonical forms and automorphisms of (C)CQs (Sec. 5.2).

Two CCQs are isomorphic when they coincide up to a renaming of their
existential variables (heads are fixed).  The UCQ conditions ``→֒k`` and
``→֒∞`` count CCQs per isomorphism class (``⟨Q⟩[Q≃]`` in the paper), so
we compute a *canonical key* — the lexicographically least serialization
over all existential-variable bijections — and group by it.

The paper's key structural fact, "all endomorphisms of CCQs are
automorphisms", makes the automorphism group the only degree of freedom
a complete CCQ has; its size enters the reconstruction of the ``→֒k``
condition for finite ``k`` (see :mod:`repro.homomorphisms.ucq_conditions`).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations

from ..queries.atoms import Var, is_var
from ..queries.ccq import CQWithInequalities
from ..queries.cq import CQ

__all__ = [
    "canonical_key",
    "are_isomorphic",
    "automorphism_count",
    "isomorphism_classes",
]


def _serialize(query: CQ, mapping: dict) -> tuple:
    """A hashable normal form of ``query`` under an existential-variable
    renaming; free variables serialize positionally."""
    head_positions = {var: f"u{pos}" for pos, var in enumerate(query.head)}

    def term_key(term):
        if is_var(term):
            if term in mapping:
                return ("e", mapping[term])
            return ("u", head_positions[term])
        return ("c", repr(term))

    atoms = tuple(sorted(
        (atom.relation, tuple(term_key(term) for term in atom.terms))
        for atom in query.atoms
    ))
    inequalities = tuple(sorted(
        tuple(sorted(term_key(var) for var in pair))
        for pair in getattr(query, "inequalities", frozenset())
    ))
    return (atoms, inequalities)


@lru_cache(maxsize=4096)
def canonical_key(query: CQ) -> tuple:
    """Canonical form: minimal serialization over all renamings.

    Exponential in the number of existential variables, which complete
    descriptions keep small; results are cached (queries are immutable).
    """
    existential = query.existential_vars()
    labels = tuple(range(len(existential)))
    best = None
    for ordering in permutations(labels):
        mapping = {var: f"e{label}"
                   for var, label in zip(existential, ordering)}
        candidate = _serialize(query, mapping)
        if best is None or candidate < best:
            best = candidate
    if best is None:  # no existential variables
        best = _serialize(query, {})
    return (type(query).__name__, query.arity, best)


def are_isomorphic(first: CQ, second: CQ) -> bool:
    """True iff the queries coincide up to existential renaming."""
    return canonical_key(first) == canonical_key(second)


@lru_cache(maxsize=4096)
def automorphism_count(query: CQ) -> int:
    """Size of the automorphism group (existential renamings fixing the
    query; inequalities are preserved by any bijection on a complete
    CCQ, and are checked explicitly otherwise)."""
    existential = query.existential_vars()
    identity = _serialize(query, {var: f"e{i}"
                                  for i, var in enumerate(existential)})
    count = 0
    for ordering in permutations(range(len(existential))):
        mapping = {var: f"e{label}"
                   for var, label in zip(existential, ordering)}
        if _serialize(query, mapping) == identity:
            count += 1
    return count


def isomorphism_classes(queries) -> dict[tuple, list]:
    """Group a multiset of queries by isomorphism class.

    Returns canonical key → list of members (multiplicities preserved).
    """
    classes: dict[tuple, list] = {}
    for query in queries:
        classes.setdefault(canonical_key(query), []).append(query)
    return classes


def canonical_rename(query: CQ) -> CQ:
    """Rename existential variables to the canonical labeling.

    Applies the permutation that realizes :func:`canonical_key`, naming
    existential variables ``e0, e1, …`` — so two isomorphic queries
    become *equal* (heads unchanged).  Used by the normalizer to give
    equivalent queries identical normal forms.
    """
    existential = query.existential_vars()
    best = None
    best_mapping: dict = {}
    for ordering in permutations(range(len(existential))):
        mapping = {var: f"e{label}"
                   for var, label in zip(existential, ordering)}
        candidate = _serialize(query, mapping)
        if best is None or candidate < best:
            best = candidate
            best_mapping = mapping
    return query.substitute(
        {var: Var(label) for var, label in best_mapping.items()})


def endomorphisms(query: CQ):
    """All homomorphisms from a query to itself.

    For *complete* CCQs the paper's key structural lemma (Sec. 5.2)
    states that every endomorphism is an automorphism: the pairwise
    inequalities forbid collapsing existential variables, so a CCQ
    cannot be "folded" into itself.  The test suite verifies the lemma
    on random complete descriptions through this function.
    """
    from .search import HomKind, homomorphisms

    return list(homomorphisms(query, query, HomKind.PLAIN))


def is_automorphism(query: CQ, mapping: dict) -> bool:
    """True iff ``mapping`` permutes the variables and fixes the query
    (atom multiset and inequalities)."""
    variables = set()
    for atom in query.atoms:
        variables.update(atom.variables())
    images = {mapping.get(var, var) for var in variables}
    if images != variables:
        return False
    image_atoms = tuple(sorted(
        atom.substitute(mapping) for atom in query.atoms))
    if image_atoms != query.atoms:
        return False
    source_pairs = getattr(query, "inequalities", frozenset())
    image_pairs = {
        frozenset((mapping.get(x, x), mapping.get(y, y)))
        for pair in source_pairs for x, y in (tuple(pair),)
    }
    return image_pairs == set(source_pairs)
