"""Homomorphism search between conjunctive queries (Sec. 3.3–4.4).

A homomorphism (containment mapping) from ``Q2 = ∃v2 φ2(u2, v2)`` to
``Q1 = ∃v1 φ1(u1, v1)`` maps the variables of ``Q2`` to terms of ``Q1``
such that the head is preserved positionally and every atom of ``φ2``
lands in ``φ1``.  The paper classifies semirings by four refinements,
all acting on the *multiset* image ``h(φ2)`` (each occurrence of a
``Q2``-atom contributes one image occurrence):

* ``PLAIN``      — ``Q2 → Q1``:  every image atom occurs in ``φ1``.
* ``INJECTIVE``  — ``Q2 →֒ Q1``: ``h(φ2) ⊆ φ1`` as multisets.
* ``SURJECTIVE`` — ``Q2 ։ Q1``:  ``φ1 ⊆ h(φ2)`` as multisets.
* ``BIJECTIVE`` — ``Q2 →֒→ Q1``: ``h(φ2) = φ1`` as multisets.

Between CCQs, homomorphisms must additionally *preserve inequalities*:
for each constrained pair ``x ≠ y`` of the source, every valuation of
the target must be guaranteed to separate ``h(x)`` and ``h(y)`` — which
holds exactly when the images are existential target variables joined by
a target inequality, or two distinct constants.

Deciding existence is NP-complete for each kind (Cor. 3.4, 4.4, 4.9,
4.15), so the search is engineered rather than naive.  It is an
indexed, plan-driven backtracking join:

* the target is indexed by ``(relation, arity)`` — once per query
  object, cached on the immutable CQ — and each source atom gets a
  static candidate list filtered by its constants and the head
  bindings; an atom with zero candidates refutes immediately;
* source atoms are matched *most-constrained-first*: a greedy plan
  repeatedly picks the atom with the fewest compatible candidates,
  breaking ties toward atoms whose variables are already bound, so
  early clashes prune maximal subtrees;
* bindings are forward-checked against the candidate lists and stored
  in one mutable mapping with trail-based undo (no dict copies on the
  search path);
* inequality preservation is checked *incrementally* as each pair of
  constrained variables becomes fully bound, instead of post-hoc on
  complete mappings;
* ``SURJECTIVE``/``BIJECTIVE`` branches additionally maintain the
  still-uncovered target multiset and are cut as soon as the remaining
  source atoms — counted per ``(relation, arity)`` profile — can no
  longer cover it.

The enumeration contract matches the original generate-and-test
searcher (kept in :mod:`repro.homomorphisms._reference`): the same
*set* of deduplicated variable mappings is produced, though not
necessarily in the same order.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterator

from ..queries.atoms import Atom, Var, is_var
from ..queries.cq import CQ

__all__ = [
    "HomKind",
    "homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
]

_UNBOUND = object()


class HomKind(Enum):
    """The four homomorphism refinements of the paper."""

    PLAIN = "plain"
    INJECTIVE = "injective"
    SURJECTIVE = "surjective"
    BIJECTIVE = "bijective"


def _relation_profile(atoms) -> dict[tuple[str, int], int]:
    """Occurrence counts per ``(relation, arity)`` signature."""
    profile: dict[tuple[str, int], int] = {}
    for atom in atoms:
        key = (atom.relation, len(atom.terms))
        profile[key] = profile.get(key, 0) + 1
    return profile


def _target_info(target: CQ):
    """Per-target matching structures, computed once per CQ object.

    Returns ``(target_counts, index, target_profile)`` where ``index``
    maps ``(relation, arity)`` to the distinct atoms of that signature.
    Cached on the (immutable) query.
    """
    cache = target._hom_cache
    info = cache.get("target")
    if info is None:
        target_counts: dict[Atom, int] = {}
        index: dict[tuple[str, int], tuple[Atom, ...]] = {}
        buckets: dict[tuple[str, int], list[Atom]] = {}
        profile: dict[tuple[str, int], int] = {}
        for atom in target.atoms:
            key = (atom.relation, len(atom.terms))
            profile[key] = profile.get(key, 0) + 1
            count = target_counts.get(atom)
            if count is None:
                target_counts[atom] = 1
                buckets.setdefault(key, []).append(atom)
            else:
                target_counts[atom] = count + 1
        for key, bucket in buckets.items():
            index[key] = tuple(bucket)
        info = (target_counts, index, profile)
        cache["target"] = info
    return info


def _target_ineq_info(target: CQ):
    """``(existential-variable set, inequality pairs)`` of the target,
    needed only when the source carries inequalities.  Cached."""
    cache = target._hom_cache
    info = cache.get("ineq")
    if info is None:
        info = (set(target.existential_vars()),
                getattr(target, "inequalities", frozenset()))
        cache["ineq"] = info
    return info


def _source_info(source: CQ):
    """Per-source matching structures, computed once per CQ object.

    Returns ``(atom_vars, neighbors, source_profile)``: the distinct
    variables of each body atom (in body order), the inequality
    adjacency of the source variables, and the ``(relation, arity)``
    occurrence profile.  Cached.
    """
    cache = source._hom_cache
    info = cache.get("source")
    if info is None:
        atom_vars = []
        grounded = []
        for atom in source.atoms:
            distinct: dict[Var, None] = {}
            constants = False
            for term in atom.terms:
                if is_var(term):
                    distinct[term] = None
                else:
                    constants = True
            atom_vars.append(tuple(distinct))
            grounded.append(constants)
        neighbors: dict[Var, tuple[Var, ...]] = {}
        for pair in getattr(source, "inequalities", frozenset()):
            x, y = tuple(pair)
            neighbors[x] = neighbors.get(x, ()) + (y,)
            neighbors[y] = neighbors.get(y, ()) + (x,)
        info = (tuple(atom_vars), tuple(grounded), neighbors,
                _relation_profile(source.atoms))
        cache["source"] = info
    return info


def _static_candidates(atom: Atom, bucket: tuple[Atom, ...],
                       mapping: dict) -> tuple[Atom, ...]:
    """The distinct target atoms ``atom`` could map onto given only its
    constants and the (head) bindings of ``mapping``."""
    result = []
    for candidate in bucket:
        for term, image in zip(atom.terms, candidate.terms):
            if is_var(term):
                bound = mapping.get(term, _UNBOUND)
                if bound is not _UNBOUND and bound != image:
                    break
            elif term != image:
                break
        else:
            result.append(candidate)
    return tuple(result)


def _plan_order(counts: list[int], atom_vars: list[tuple[Var, ...]],
                bound: set) -> tuple[int, ...]:
    """Greedy most-constrained-first ordering of the source atoms.

    Repeatedly picks the unplanned atom minimizing (candidate count,
    unbound-variable count, original position); planning an atom binds
    its variables for subsequent picks.
    """
    total = len(counts)
    if total <= 1:
        return tuple(range(total))
    if total == 2:
        first, second = counts
        if second < first:
            return (1, 0)
        if second == first:
            unbound = [sum(1 for v in atom_vars[i] if v not in bound)
                       for i in (0, 1)]
            if unbound[1] < unbound[0]:
                return (1, 0)
        return (0, 1)
    bound = set(bound)
    remaining = list(range(total))
    order: list[int] = []
    while remaining:
        best = -1
        best_key = None
        for i in remaining:
            unbound = 0
            for var in atom_vars[i]:
                if var not in bound:
                    unbound += 1
            key = (counts[i], unbound, i)
            if best_key is None or key < best_key:
                best_key = key
                best = i
        remaining.remove(best)
        order.append(best)
        bound.update(atom_vars[best])
    return tuple(order)


def homomorphisms(source: CQ, target: CQ,
                  kind: HomKind = HomKind.PLAIN) -> Iterator[dict]:
    """Enumerate the homomorphisms of the given kind from ``source`` to
    ``target`` (deduplicated on the variable mapping).

    Queries must have equal arity; the head is matched positionally
    (``h(u2) = u1``).
    """
    if source.arity != target.arity:
        return
    mapping: dict[Var, Any] = {}
    for var, image in zip(source.head, target.head):
        current = mapping.setdefault(var, image)
        if current != image:
            return
    source_atoms = source.atoms
    n_source, n_target = len(source_atoms), len(target.atoms)
    covering = kind is HomKind.SURJECTIVE or kind is HomKind.BIJECTIVE
    capped = kind is HomKind.INJECTIVE or kind is HomKind.BIJECTIVE
    if kind is HomKind.BIJECTIVE and n_source != n_target:
        return
    if kind is HomKind.SURJECTIVE and n_source < n_target:
        return

    target_counts, index, target_profile = _target_info(target)
    atom_vars, grounded, neighbors, source_profile = _source_info(source)

    # -- relation-profile feasibility for the covering kinds ------------
    if covering:
        if kind is HomKind.BIJECTIVE:
            if source_profile != target_profile:
                return
        else:
            for signature, need in target_profile.items():
                if need > source_profile.get(signature, 0):
                    return

    # -- inequality preservation machinery ------------------------------
    if neighbors:
        target_existential, target_pairs = _target_ineq_info(target)

        def pair_separated(image_x, image_y) -> bool:
            if image_x == image_y:
                return False
            if is_var(image_x):
                return (is_var(image_y)
                        and image_x in target_existential
                        and image_y in target_existential
                        and frozenset((image_x, image_y)) in target_pairs)
            return not is_var(image_y)  # two distinct constants

        # Pairs of head variables are fully bound before the search.
        if len(mapping) > 1:
            for x, partners in neighbors.items():
                image_x = mapping.get(x, _UNBOUND)
                if image_x is _UNBOUND:
                    continue
                for y in partners:
                    image_y = mapping.get(y, _UNBOUND)
                    if (image_y is not _UNBOUND
                            and not pair_separated(image_x, image_y)):
                        return
    else:
        pair_separated = None  # type: ignore[assignment]

    # -- static candidate lists and the matching plan -------------------
    candidates: list[tuple[Atom, ...]] = []
    counts: list[int] = []
    unconstrained = not mapping
    for position, atom in enumerate(source_atoms):
        bucket = index.get((atom.relation, len(atom.terms)))
        if not bucket:
            return
        if unconstrained and not grounded[position]:
            options = bucket  # nothing to filter on yet
        else:
            options = _static_candidates(atom, bucket, mapping)
            if not options:
                return
        candidates.append(options)
        counts.append(len(options))
    order = _plan_order(counts, atom_vars, mapping)
    plan_atoms = tuple(source_atoms[i] for i in order)
    plan_candidates = tuple(candidates[i] for i in order)

    # -- covering bookkeeping (SURJECTIVE / BIJECTIVE only) -------------
    # suffix_profiles[p]: what plan positions >= p can still contribute,
    # per (relation, arity) signature; compared against the uncovered
    # target multiset to cut doomed branches early.
    suffix_profiles: list[dict[tuple[str, int], int]] = []
    uncovered: dict[Atom, int] = {}
    uncovered_profile: dict[tuple[str, int], int] = {}
    uncovered_total = 0
    if covering:
        profile: dict[tuple[str, int], int] = {}
        suffix_profiles.append(profile)
        for atom in reversed(plan_atoms):
            profile = dict(profile)
            key = (atom.relation, len(atom.terms))
            profile[key] = profile.get(key, 0) + 1
            suffix_profiles.append(profile)
        suffix_profiles.reverse()
        uncovered = dict(target_counts)
        uncovered_profile = dict(target_profile)
        uncovered_total = n_target
    capacity: dict[Atom, int] = dict(target_counts) if capped else {}

    # -- flat iterative backtracking over the plan ----------------------
    n = n_source
    seen: set[frozenset] = set()
    cursors = [0] * n
    trails: list[list[Var]] = [[] for _ in range(n)]
    frame_choice: list[Atom | None] = [None] * n
    frame_covered = [False] * n
    mapping_get = mapping.get
    pos = 0
    while True:
        atom = plan_atoms[pos]
        options = plan_candidates[pos]
        total = len(options)
        cursor = cursors[pos]
        advanced = False
        while cursor < total:
            candidate = options[cursor]
            cursor += 1
            if capped and not capacity[candidate]:
                continue
            # forward-check the binding, trailing newly bound variables
            trail: list[Var] = []
            ok = True
            for term, image in zip(atom.terms, candidate.terms):
                if is_var(term):
                    current = mapping_get(term, _UNBOUND)
                    if current is _UNBOUND:
                        mapping[term] = image
                        trail.append(term)
                    elif current != image:
                        ok = False
                        break
                elif term != image:
                    ok = False
                    break
            if ok and neighbors and trail:
                # incremental inequality preservation on the new pairs
                for var in trail:
                    partners = neighbors.get(var)
                    if not partners:
                        continue
                    image_x = mapping[var]
                    for partner in partners:
                        image_y = mapping_get(partner, _UNBOUND)
                        if (image_y is not _UNBOUND
                                and not pair_separated(image_x, image_y)):
                            ok = False
                            break
                    if not ok:
                        break
            if not ok:
                for var in trail:
                    del mapping[var]
                continue
            covered_here = False
            if covering:
                need = uncovered.get(candidate, 0)
                if need:
                    covered_here = True
                    uncovered[candidate] = need - 1
                    uncovered_profile[(candidate.relation,
                                       len(candidate.terms))] -= 1
                    uncovered_total -= 1
                # prune: can the remaining atoms still cover the rest?
                feasible = uncovered_total <= n - pos - 1
                if feasible and uncovered_total:
                    remaining = suffix_profiles[pos + 1]
                    for signature, need in uncovered_profile.items():
                        if need and need > remaining.get(signature, 0):
                            feasible = False
                            break
                if not feasible:
                    if covered_here:
                        uncovered[candidate] += 1
                        uncovered_profile[(candidate.relation,
                                           len(candidate.terms))] += 1
                        uncovered_total += 1
                    for var in trail:
                        del mapping[var]
                    continue
            if capped:
                capacity[candidate] -= 1
            cursors[pos] = cursor
            trails[pos] = trail
            frame_choice[pos] = candidate
            frame_covered[pos] = covered_here
            advanced = True
            break
        if advanced:
            pos += 1
            if pos < n:
                cursors[pos] = 0
                continue
            if not uncovered_total:  # always 0 for the non-covering kinds
                key = frozenset(mapping.items())
                if key not in seen:
                    seen.add(key)
                    yield dict(mapping)
            pos -= 1
        else:
            cursors[pos] = 0
            pos -= 1
            if pos < 0:
                return
        # undo the frame at `pos` before retrying its next candidate
        candidate = frame_choice[pos]
        if capped:
            capacity[candidate] += 1
        if frame_covered[pos]:
            uncovered[candidate] += 1
            uncovered_profile[(candidate.relation,
                               len(candidate.terms))] += 1
            uncovered_total += 1
        for var in trails[pos]:
            del mapping[var]


def find_homomorphism(source: CQ, target: CQ,
                      kind: HomKind = HomKind.PLAIN) -> dict | None:
    """The first homomorphism of the given kind, or None."""
    for mapping in homomorphisms(source, target, kind):
        return mapping
    return None


def has_homomorphism(source: CQ, target: CQ,
                     kind: HomKind = HomKind.PLAIN) -> bool:
    """Existence check: ``Q2 → Q1`` / ``→֒`` / ``։`` / ``→֒→``."""
    return find_homomorphism(source, target, kind) is not None
