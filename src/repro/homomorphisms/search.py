"""Homomorphism search between conjunctive queries (Sec. 3.3–4.4).

A homomorphism (containment mapping) from ``Q2 = ∃v2 φ2(u2, v2)`` to
``Q1 = ∃v1 φ1(u1, v1)`` maps the variables of ``Q2`` to terms of ``Q1``
such that the head is preserved positionally and every atom of ``φ2``
lands in ``φ1``.  The paper classifies semirings by four refinements,
all acting on the *multiset* image ``h(φ2)`` (each occurrence of a
``Q2``-atom contributes one image occurrence):

* ``PLAIN``      — ``Q2 → Q1``:  every image atom occurs in ``φ1``.
* ``INJECTIVE``  — ``Q2 →֒ Q1``: ``h(φ2) ⊆ φ1`` as multisets.
* ``SURJECTIVE`` — ``Q2 ։ Q1``:  ``φ1 ⊆ h(φ2)`` as multisets.
* ``BIJECTIVE``  — ``Q2 →֒→ Q1``: ``h(φ2) = φ1`` as multisets.

Between CCQs, homomorphisms must additionally *preserve inequalities*:
for each constrained pair ``x ≠ y`` of the source, every valuation of
the target must be guaranteed to separate ``h(x)`` and ``h(y)`` — which
holds exactly when the images are existential target variables joined by
a target inequality, or two distinct constants.

Deciding existence is NP-complete for each kind (Cor. 3.4, 4.4, 4.9,
4.15); the search is a backtracking join over the target's atom
occurrences with multiset-count pruning.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterator

from ..queries.atoms import Atom, Var, is_var
from ..queries.ccq import CQWithInequalities
from ..queries.cq import CQ

__all__ = [
    "HomKind",
    "homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
]


class HomKind(Enum):
    """The four homomorphism refinements of the paper."""

    PLAIN = "plain"
    INJECTIVE = "injective"
    SURJECTIVE = "surjective"
    BIJECTIVE = "bijective"


def _target_inequality_ok(source: CQ, target: CQ, mapping: dict) -> bool:
    """Check inequality preservation for the fully built ``mapping``."""
    source_pairs = getattr(source, "inequalities", frozenset())
    if not source_pairs:
        return True
    target_pairs = getattr(target, "inequalities", frozenset())
    target_existential = set(
        target.existential_vars()) if isinstance(target, CQ) else set()
    for pair in source_pairs:
        x, y = tuple(pair)
        image_x = mapping.get(x, x)
        image_y = mapping.get(y, y)
        if image_x == image_y:
            return False
        both_vars = is_var(image_x) and is_var(image_y)
        if both_vars:
            if (image_x in target_existential
                    and image_y in target_existential
                    and frozenset((image_x, image_y)) in target_pairs):
                continue
            return False
        if not is_var(image_x) and not is_var(image_y):
            continue  # two distinct constants are always separated
        return False
    return True


def _compatible(atom: Atom, candidate: Atom, mapping: dict) -> dict | None:
    """Try to extend ``mapping`` so that ``atom`` maps onto ``candidate``.

    Returns the (possibly extended) mapping, or None on clash.  The
    returned dict is the same object when nothing new was bound.
    """
    if atom.relation != candidate.relation or atom.arity != candidate.arity:
        return None
    extension: dict | None = None
    for term, image in zip(atom.terms, candidate.terms):
        if is_var(term):
            current = mapping.get(term)
            if extension is not None and term in extension:
                current = extension[term]
            if current is None:
                if extension is None:
                    extension = {}
                extension[term] = image
            elif current != image:
                return None
        elif term != image:
            return None
    if extension is None:
        return mapping
    merged = dict(mapping)
    merged.update(extension)
    return merged


def homomorphisms(source: CQ, target: CQ,
                  kind: HomKind = HomKind.PLAIN) -> Iterator[dict]:
    """Enumerate the homomorphisms of the given kind from ``source`` to
    ``target`` (deduplicated on the variable mapping).

    Queries must have equal arity; the head is matched positionally
    (``h(u2) = u1``).
    """
    if source.arity != target.arity:
        return
    mapping: dict[Var, Any] = {}
    for var, image in zip(source.head, target.head):
        if mapping.setdefault(var, image) != image:
            return
    if kind is HomKind.BIJECTIVE and len(source.atoms) != len(target.atoms):
        return
    if kind is HomKind.SURJECTIVE and len(source.atoms) < len(target.atoms):
        return
    target_counts: dict[Atom, int] = {}
    for atom in target.atoms:
        target_counts[atom] = target_counts.get(atom, 0) + 1
    distinct_targets = tuple(target_counts)
    seen: set = set()
    for result in _search(source.atoms, 0, mapping, distinct_targets,
                          target_counts, {}, kind):
        key = frozenset(result.items())
        if key in seen:
            continue
        seen.add(key)
        if _target_inequality_ok(source, target, result):
            yield result


def _search(atoms: tuple[Atom, ...], index: int, mapping: dict,
            candidates: tuple[Atom, ...], target_counts: dict,
            image_counts: dict, kind: HomKind) -> Iterator[dict]:
    if index == len(atoms):
        if kind in (HomKind.SURJECTIVE, HomKind.BIJECTIVE):
            covered = all(
                image_counts.get(atom, 0) >= count
                for atom, count in target_counts.items()
            )
            if not covered:
                return
        yield dict(mapping)
        return
    atom = atoms[index]
    for candidate in candidates:
        extended = _compatible(atom, candidate, mapping)
        if extended is None:
            continue
        used = image_counts.get(candidate, 0) + 1
        if kind in (HomKind.INJECTIVE, HomKind.BIJECTIVE):
            if used > target_counts[candidate]:
                continue
        image_counts[candidate] = used
        yield from _search(atoms, index + 1, extended, candidates,
                           target_counts, image_counts, kind)
        if used == 1:
            del image_counts[candidate]
        else:
            image_counts[candidate] = used - 1


def find_homomorphism(source: CQ, target: CQ,
                      kind: HomKind = HomKind.PLAIN) -> dict | None:
    """The first homomorphism of the given kind, or None."""
    for mapping in homomorphisms(source, target, kind):
        return mapping
    return None


def has_homomorphism(source: CQ, target: CQ,
                     kind: HomKind = HomKind.PLAIN) -> bool:
    """Existence check: ``Q2 → Q1`` / ``→֒`` / ``։`` / ``→֒→``."""
    return find_homomorphism(source, target, kind) is not None
