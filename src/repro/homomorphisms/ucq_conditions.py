"""UCQ-level containment conditions (Sec. 5, Table 1).

Each function implements one syntactic condition between UCQs ``Q2`` and
``Q1`` (read: candidates for "``Q1 ⊆K Q2``"):

* :func:`local_condition` — "for each ``Q1 ∈ Q1`` there is ``Q2 ∈ Q2``
  with a homomorphism of the given kind" — the ⊕-idempotent local checks
  ``→``, ``→֒``, ``։1`` and ``→֒1`` of Thm. 5.2/5.6 and Cor. 5.18.
* :func:`covering_union` — ``Q2 ⇉1 Q1``: atoms may be covered by
  *different* members (Ex. 5.20, Thm. 5.24 k = 1).
* :func:`covering_2` — ``⟨Q2⟩ ⇉2 ⟨Q1⟩`` for offset-2 ⊗-idempotent
  semirings (Thm. 5.24 k = 2; new necessary condition for bag semantics,
  Cor. 5.23).
* :func:`bi_count_infty` — ``⟨Q2⟩ →֒∞ ⟨Q1⟩``: isomorphism-class counting
  (Def. 5.8, decides ``N[X]``-containment by Prop. 5.9).
* :func:`bi_count_k` — ``⟨Q2⟩ →֒k ⟨Q1⟩`` for finite offsets
  (Thm. 5.13).  The paper defers the exact definition to its full
  version; we reconstruct it as class counting with the requirement
  capped at ``⌈k/|Aut|⌉`` — one copy of a CCQ with automorphism group of
  size ``g`` already contributes ``g`` equal summands, and offset ``k``
  makes copies beyond that threshold redundant (this matches Ex. 5.7
  continued and is validated against the oracle).
* :func:`sur_infty` — ``⟨Q2⟩ ։∞ ⟨Q1⟩``: every CCQ occurrence of
  ``⟨Q1⟩`` is matched to a *unique* surjectively-mapping CCQ occurrence
  of ``⟨Q2⟩`` (Def. 5.14); by Hall's theorem this is a bipartite
  matching problem (Thm. 5.17), solved with Hopcroft–Karp.

Every function accepts an optional ``context``
(:class:`repro.core.DecisionContext`-like) that reroutes the expensive
primitives — homomorphism existence, atom covering, the complete
description ``⟨Q⟩`` and the canonical form (isomorphism key +
automorphism group size) — through a caller-provided cache; with no
context the plain functions run.
"""

from __future__ import annotations

import math

import networkx as nx

from ..queries.ccq import complete_description_ucq
from ..queries.cq import CQ
from ..queries.ucq import UCQ, as_ucq
from .covering import covered_atoms
from .isomorphism import automorphism_count, isomorphism_classes
from .search import HomKind, has_homomorphism

__all__ = [
    "local_condition",
    "covering_union",
    "covering_2",
    "bi_count_infty",
    "bi_count_k",
    "sur_infty",
]


def _exists(context, source: CQ, target: CQ, kind: HomKind) -> bool:
    """Existence primitive, routed through ``context`` when given."""
    if context is not None:
        return context.has_homomorphism(source, target, kind)
    return has_homomorphism(source, target, kind)


def _description(context, union: UCQ) -> tuple:
    """``⟨Q⟩`` primitive, routed through ``context`` when given."""
    if context is not None:
        return context.complete_description(union)
    return complete_description_ucq(union)


def _automorphisms(context, query: CQ) -> int:
    """``|Aut|`` primitive, routed through ``context`` when given."""
    if context is not None:
        return context.canonical_form(query).automorphisms
    return automorphism_count(query)


def local_condition(source: UCQ | CQ, target: UCQ | CQ,
                    kind: HomKind, finder=None, *, context=None) -> bool:
    """``Q2 (hom-kind)1 Q1``: each target member has a source preimage.

    ``finder`` optionally overrides the existence check (signature of
    :func:`has_homomorphism`); otherwise ``context`` routes it through
    a cache-providing :class:`repro.core.DecisionContext`.
    """
    source, target = as_ucq(source), as_ucq(target)
    if finder is None:
        finder = (has_homomorphism if context is None
                  else context.has_homomorphism)
    return all(
        any(finder(cq2, cq1, kind) for cq2 in source)
        for cq1 in target
    )


def _union_covers(source: UCQ, target_cq: CQ, context=None) -> bool:
    remaining = set(target_cq.atoms)
    for cq2 in source:
        remaining -= covered_atoms(cq2, target_cq, context=context)
        if not remaining:
            return True
    return not remaining


def covering_union(source: UCQ | CQ, target: UCQ | CQ, *,
                   context=None) -> bool:
    """``Q2 ⇉1 Q1``: every atom of every target member is in the image
    of a homomorphism from *some* source member (Sec. 5.4).

    The paper notes ``Q2 ⇉1 Q1`` iff ``⟨Q2⟩ ⇉1 ⟨Q1⟩``, so the check runs
    directly on the given queries.
    """
    source, target = as_ucq(source), as_ucq(target)
    return all(_union_covers(source, cq1, context) for cq1 in target)


def covering_2(source: UCQ | CQ, target: UCQ | CQ, *,
               context=None) -> bool:
    """``⟨Q2⟩ ⇉2 ⟨Q1⟩`` (Sec. 5.4, for ``S²hcov`` semirings).

    Requires (1) ``⟨Q2⟩ ⇉1 ⟨Q1⟩`` and (2) every CCQ of ``⟨Q1⟩`` that has
    no nontrivial automorphism *and multiplicity greater than one* is
    reached by homomorphisms from two distinct CCQ occurrences of
    ``⟨Q2⟩`` (which may be isomorphic or equal queries — footnote 7), or
    the counting fallback ``min(⟨Q1⟩[Q≃], 2) ≤ ⟨Q2⟩[Q≃]`` holds.

    Reconstruction notes (validated against the oracle):

    * The paper's formal bullet list omits the multiplicity-one
      exemption that its introductory sentence states ("… having
      multiplicity more than one in ⟨Q1⟩ has to be covered by two CCQs
      …").  The exemption is semantically forced: a CCQ occurring once
      needs no duplicated support — ``S(v),S(v) ⊆K S(v)`` holds over
      every ⊗-idempotent ``K`` although only one covering CCQ exists.
    * Class multiplicities are counted on *set-reduced* bodies
      (duplicate atoms dropped): over ⊗-idempotent semirings a CCQ is
      equivalent to its set reduct, so ``{S(v)} ∪ {S(v),S(v)}``
      contributes multiplicity two to the class of ``S(v)``.
    * A CCQ with a nontrivial automorphism already contributes
      ``|Aut| ≥ 2`` equal summands per source, which offset 2
      saturates, hence its exemption (as in the paper).
    """
    description2 = _description(context, as_ucq(source))
    description1 = _description(context, as_ucq(target))
    union2 = UCQ(description2)
    if not all(_union_covers(union2, ccq1, context)
               for ccq1 in description1):
        return False
    reduced1 = [_set_reduce(ccq) for ccq in description1]
    reduced2 = [_set_reduce(ccq) for ccq in description2]
    classes1 = isomorphism_classes(reduced1, context=context)
    classes2 = isomorphism_classes(reduced2, context=context)
    for key, members in classes1.items():
        if len(members) < 2:
            continue
        representative = members[0]
        if _automorphisms(context, representative) > 1:
            continue
        preimages = sum(
            1 for ccq2 in reduced2
            if _exists(context, ccq2, representative, HomKind.PLAIN)
        )
        if preimages >= 2:
            continue
        if min(len(members), 2) <= len(classes2.get(key, ())):
            continue
        return False
    return True


def _set_reduce(ccq):
    """Drop duplicate atoms (a K-equivalence over ⊗-idempotent K)."""
    from ..queries.ccq import CQWithInequalities

    unique = sorted(set(ccq.atoms))
    pairs = tuple(tuple(pair) for pair in
                  getattr(ccq, "inequalities", frozenset()))
    return CQWithInequalities(ccq.head, unique, pairs)


def bi_count_infty(source: UCQ | CQ, target: UCQ | CQ, *,
                   context=None) -> bool:
    """``⟨Q2⟩ →֒∞ ⟨Q1⟩`` (Def. 5.8): every isomorphism class occurs in
    ``⟨Q2⟩`` at least as often as in ``⟨Q1⟩``."""
    classes2 = isomorphism_classes(_description(context, as_ucq(source)),
                                   context=context)
    classes1 = isomorphism_classes(_description(context, as_ucq(target)),
                                   context=context)
    return all(
        len(members) <= len(classes2.get(key, ()))
        for key, members in classes1.items()
    )


def bi_count_k(source: UCQ | CQ, target: UCQ | CQ, k: float, *,
               context=None) -> bool:
    """``⟨Q2⟩ →֒k ⟨Q1⟩`` for ``k ∈ N ∪ {∞}`` (Thm. 5.13).

    Reconstructed definition: for every isomorphism class ``C`` with
    automorphism group size ``g``,

        ``min(⟨Q1⟩[C], ⌈k / g⌉)  ≤  ⟨Q2⟩[C]``.

    With ``k = ∞`` this degenerates to Def. 5.8; with ``k = 1`` it
    degenerates to per-class presence, equivalent to the local bijective
    condition ``→֒1``.
    """
    if math.isinf(k):
        return bi_count_infty(source, target, context=context)
    k = int(k)
    if k < 1:
        raise ValueError("offset must be at least 1")
    classes2 = isomorphism_classes(_description(context, as_ucq(source)),
                                   context=context)
    classes1 = isomorphism_classes(_description(context, as_ucq(target)),
                                   context=context)
    for key, members in classes1.items():
        group = _automorphisms(context, members[0])
        required = min(len(members), math.ceil(k / group))
        if required > len(classes2.get(key, ())):
            return False
    return True


def sur_infty(source: UCQ | CQ, target: UCQ | CQ, *, context=None) -> bool:
    """``⟨Q2⟩ ։∞ ⟨Q1⟩`` (Def. 5.14): a matching assigning to every CCQ
    occurrence of ``⟨Q1⟩`` a unique surjectively-mapping occurrence of
    ``⟨Q2⟩``."""
    description2 = _description(context, as_ucq(source))
    description1 = _description(context, as_ucq(target))
    if not description1:
        return True
    graph = nx.Graph()
    left = [("t", index) for index in range(len(description1))]
    graph.add_nodes_from(left, bipartite=0)
    graph.add_nodes_from(
        (("s", index) for index in range(len(description2))), bipartite=1)
    for i, ccq1 in enumerate(description1):
        for j, ccq2 in enumerate(description2):
            if _exists(context, ccq2, ccq1, HomKind.SURJECTIVE):
                graph.add_edge(("t", i), ("s", j))
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left)
    return all(node in matching for node in left)
