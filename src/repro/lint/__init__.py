"""``repro.lint`` — the project's AST-based invariant checker.

The conventions the engine's correctness and warm-path performance
rest on (context threading, the single cache-layer registry, semiring
declaration coherence, determinism discipline, pickle-boundary safety)
are machine-enforced here rather than by review, and an interprocedural
layer — a project-wide call graph, per-function CFGs and a forward
taint engine — checks the service invariants no single file shows:
event-loop blocking (RL101), fork-safety (RL102), shared-state
ownership (RL103) and cache-key completeness (RL104).  Run it as::

    python -m repro lint                  # self-check the package
    python -m repro lint --json           # machine-readable report
    python -m repro lint --select RL1XX   # only the dataflow rules
    python -m repro lint --stats          # per-rule timings
    python -m repro lint PATH ...         # lint specific trees

Exit code 0 means clean; 1 means findings (CI gates on this).  See
:mod:`repro.lint.rules` for the per-file rules (RL001–RL005),
:mod:`repro.lint.rules_flow` for the dataflow rules (RL101–RL104), and
the README's "Static analysis" section for the pragma and ``owner=``
annotation syntax.
"""

from .callgraph import CallGraph, get_call_graph
from .cfg import CFG, build_cfg
from .dataflow import TaintAnalysis, run_forward
from .model import Finding, Project, RULES, Rule, SourceFile
from .report import LintReport, render_json, render_text
from .runner import (collect_project, default_target, match_rule,
                     run_lint, select_rules)

__all__ = ["CFG", "CallGraph", "Finding", "LintReport", "Project",
           "RULES", "Rule", "SourceFile", "TaintAnalysis", "build_cfg",
           "collect_project", "default_target", "get_call_graph",
           "match_rule", "render_json", "render_text", "run_forward",
           "run_lint", "select_rules"]
