"""``repro.lint`` — the project's AST-based invariant checker.

The conventions the engine's correctness and warm-path performance
rest on (context threading, the single cache-layer registry, semiring
declaration coherence, determinism discipline, pickle-boundary safety)
are machine-enforced here rather than by review.  Run it as::

    python -m repro lint            # self-check the installed package
    python -m repro lint --json     # machine-readable report
    python -m repro lint PATH ...   # lint specific files/directories

Exit code 0 means clean; 1 means findings (CI gates on this).  See
:mod:`repro.lint.rules` for the rule catalogue (RL001–RL005) and the
README's "Static analysis" section for the pragma syntax.
"""

from .model import Finding, Project, RULES, Rule, SourceFile
from .report import LintReport, render_json, render_text
from .runner import collect_project, default_target, run_lint

__all__ = ["Finding", "LintReport", "Project", "RULES", "Rule",
           "SourceFile", "collect_project", "default_target",
           "render_json", "render_text", "run_lint"]
