"""Project-wide call graph with import, alias and receiver typing.

The per-file rules (RL001–RL005) resolve names through imports one
file at a time; the dataflow rules (RL101–RL104) need to answer
*whole-project* questions — "is a blocking LP solve reachable from
this ``async def``?", "does the worker entry point touch a pre-fork
socket?" — which require following calls across modules, through
package re-exports, and through *methods* whose receiver type must be
inferred.  :class:`CallGraph` is that shared substrate:

* every module-level function, class and method under analysis becomes
  a node, identified as ``"module:Class.method"`` / ``"module:func"``
  (external callables keep their plain dotted name, ``"pickle.dump"``);
* class bases are resolved (project classes by qualname, external ones
  by dotted name) so method lookup can walk the MRO *and* — class
  hierarchy analysis — include subclass overrides, since a receiver's
  static type is often a base class;
* receiver types come from a deliberately small, high-precision
  inference: constructor calls, annotated parameters, and ``self.attr``
  assignments in ``__init__`` (ternaries and ``or``-defaults union both
  arms).  Anything else stays *untyped* and produces **no** edge — for
  lint rules a missing edge is a missed finding, never a false one.

Like everything in :mod:`repro.lint`, the graph is built purely from
the AST; nothing under analysis is imported.  Build cost is linear in
project size; :func:`get_call_graph` memoizes one graph per
:class:`~repro.lint.model.Project` so the RL1xx rules share it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import Project, SourceFile

__all__ = ["CallGraph", "CallSite", "ClassInfo", "FunctionInfo",
           "get_call_graph", "import_map", "resolve_relative"]

#: Builtin callables worth resolving by bare name (rules match on
#: these; everything else unresolved stays edge-less).
_BUILTIN_CALLS = frozenset({"open", "input", "print", "exec", "eval",
                            "compile", "iter", "next"})

#: Builtin container constructors, typed so method calls on them
#: resolve to harmless external ids instead of project methods.
_BUILTIN_TYPES = {"set": "builtins.set", "frozenset": "builtins.frozenset",
                  "dict": "builtins.dict", "list": "builtins.list",
                  "tuple": "builtins.tuple", "deque": "collections.deque"}

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def resolve_relative(module: str | None, is_package: bool,
                     node: ast.ImportFrom) -> str | None:
    """The absolute module an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module
    if module is None:
        return None
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    if node.module:
        parts.extend(node.module.split("."))
    return ".".join(parts) if parts else None


def import_map(sf: SourceFile) -> dict[str, tuple[str, str | None]]:
    """``local alias → (origin module, symbol)`` for a file.

    ``symbol`` is ``None`` for whole-module imports (``import x.y``;
    ``from x import y_module`` is indistinguishable from a symbol
    import and recorded with its name).
    """
    is_package = sf.path.name == "__init__.py"
    mapping: dict[str, tuple[str, str | None]] = {}
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ImportFrom):
            origin = resolve_relative(sf.module, is_package, node)
            if origin is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = (origin, alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    mapping[alias.asname] = (alias.name, None)
                else:
                    root = alias.name.split(".")[0]
                    mapping.setdefault(root, (root, None))
    return mapping


def _dotted(expr: ast.AST) -> str | None:
    """``"a.b.c"`` for a pure ``Name``/``Attribute`` chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``targets`` are the candidate callees: project ids
    (``"module:Class.method"``) and/or external dotted names.  Empty
    when the receiver could not be typed — rules treat that as "no
    information", never as a violation.
    """

    node: ast.Call
    targets: tuple[str, ...]


@dataclass
class FunctionInfo:
    """One function or method node of the graph."""

    qualname: str                 # "module:func" / "module:Class.method"
    module: str
    name: str
    sf: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None        # owning class qualname ("module:Class")
    is_async: bool = False


@dataclass
class ClassInfo:
    """One class node: resolved bases, methods and inferred attr types."""

    qualname: str                 # "module:Class"
    name: str
    module: str
    sf: SourceFile
    node: ast.ClassDef
    bases: tuple[str, ...] = ()   # class qualnames or external dotted names
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, frozenset[str]] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, typed attributes and resolved call edges."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, tuple[CallSite, ...]] = {}
        self._imports: dict[str, dict[str, tuple[str, str | None]]] = {}
        self._module_functions: dict[str, set[str]] = {}
        self._module_classes: dict[str, set[str]] = {}
        self._subclasses: dict[str, set[str]] = {}
        self._build()

    # -- construction --------------------------------------------------

    @staticmethod
    def _module_of(sf: SourceFile) -> str:
        return sf.module if sf.module is not None else sf.display

    def _build(self) -> None:
        for sf in self.project.files:
            module = self._module_of(sf)
            self._imports[module] = import_map(sf)
            self._module_functions[module] = set()
            self._module_classes[module] = set()
            self._register_scope(sf, module, sf.tree.body, prefix="",
                                 cls=None)
        self._resolve_bases()
        self._infer_attr_types()
        for info in self.functions.values():
            self.calls[info.qualname] = tuple(self._collect_calls(info))

    def _register_scope(self, sf: SourceFile, module: str, body,
                        prefix: str, cls: str | None) -> None:
        for node in body:
            if isinstance(node, _FUNCTION_DEFS):
                name = prefix + node.name
                qualname = f"{module}:{name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module, name=node.name,
                    sf=sf, node=node, cls=cls,
                    is_async=isinstance(node, ast.AsyncFunctionDef))
                if not prefix:
                    self._module_functions[module].add(node.name)
                # Nested defs become their own nodes (their calls must
                # not be attributed to the enclosing function).
                self._register_scope(sf, module, node.body,
                                     prefix=name + ".", cls=cls)
            elif isinstance(node, ast.ClassDef) and not prefix:
                class_id = f"{module}:{node.name}"
                info = ClassInfo(qualname=class_id, name=node.name,
                                 module=module, sf=sf, node=node)
                self.classes[class_id] = info
                self._module_classes[module].add(node.name)
                for item in node.body:
                    if isinstance(item, _FUNCTION_DEFS):
                        method_id = f"{module}:{node.name}.{item.name}"
                        info.methods[item.name] = method_id
                        self.functions[method_id] = FunctionInfo(
                            qualname=method_id, module=module,
                            name=item.name, sf=sf, node=item, cls=class_id,
                            is_async=isinstance(item, ast.AsyncFunctionDef))
                        self._register_scope(
                            sf, module, item.body,
                            prefix=f"{node.name}.{item.name}.",
                            cls=class_id)

    # -- symbol resolution ---------------------------------------------

    def _resolve_symbol(self, module: str, name: str,
                        depth: int = 0) -> tuple[str, str] | None:
        """``(kind, id)`` for ``name`` looked up in ``module``.

        Kinds: ``"func"``/``"class"`` (project ids), ``"module"`` (a
        project module's dotted name) or ``"external"`` (dotted name).
        Follows one-hop-at-a-time package re-exports up to 8 levels.
        """
        if depth > 8:
            return None
        if module in self._module_functions:
            if name in self._module_functions[module]:
                return ("func", f"{module}:{name}")
            if name in self._module_classes[module]:
                return ("class", f"{module}:{name}")
            submodule = f"{module}.{name}"
            if submodule in self._module_functions:
                return ("module", submodule)
            entry = self._imports[module].get(name)
            if entry is not None:
                origin, symbol = entry
                if symbol is None:
                    return ("module", origin) \
                        if origin in self._module_functions \
                        else ("external", origin)
                return self._resolve_symbol(origin, symbol, depth + 1)
            return None  # project module, but the symbol is not visible
        return ("external", f"{module}.{name}")

    def _class_id_for(self, sf: SourceFile, name: str) -> str | None:
        """The type id a bare name refers to, or None."""
        module = self._module_of(sf)
        if name in self._module_classes.get(module, ()):
            return f"{module}:{name}"
        entry = self._imports.get(module, {}).get(name)
        if entry is not None:
            origin, symbol = entry
            if symbol is None:
                return None
            resolved = self._resolve_symbol(origin, symbol)
            if resolved is not None and resolved[0] in ("class",
                                                        "external"):
                return resolved[1]
            return None
        return _BUILTIN_TYPES.get(name)

    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            bases: list[str] = []
            for base in info.node.bases:
                resolved = None
                if isinstance(base, ast.Name):
                    resolved = self._class_id_for(info.sf, base.id)
                elif isinstance(base, ast.Attribute):
                    resolved = self._resolve_dotted(info.sf, base)
                if resolved is not None:
                    bases.append(resolved)
                    if ":" in resolved:
                        self._subclasses.setdefault(
                            resolved, set()).add(info.qualname)
            info.bases = tuple(bases)

    def _resolve_dotted(self, sf: SourceFile,
                        expr: ast.AST) -> str | None:
        """Resolve an ``a.b.c`` chain to a class/function/external id."""
        dotted = _dotted(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        module = self._module_of(sf)
        entry = self._imports.get(module, {}).get(head)
        if entry is None:
            return None
        origin, symbol = entry
        current = origin if symbol is None else None
        if current is None:
            resolved = self._resolve_symbol(origin, symbol)
            if resolved is None:
                return None
            kind, ident = resolved
            if kind != "module":
                return ident if not rest else None
            current = ident
        if not rest:
            return None
        parts = rest.split(".")
        for index, part in enumerate(parts):
            last = index == len(parts) - 1
            resolved = self._resolve_symbol(current, part)
            if resolved is None:
                return None
            kind, ident = resolved
            if kind == "module":
                current = ident
                if last:
                    return None
                continue
            return ident if last else None
        return None

    def resolve_value(self, sf: SourceFile,
                      expr: ast.AST) -> str | None:
        """The id a bare ``Name``/``Attribute`` expression denotes in
        ``sf`` (class, function or external dotted name), or None.

        Used by rules that classify constructor calls outside normal
        call-edge collection (e.g. RL102 typing module-level globals).
        """
        if isinstance(expr, ast.Name):
            ident = self._class_id_for(sf, expr.id)
            if ident is not None:
                return ident
            module = self._module_of(sf)
            entry = self._imports.get(module, {}).get(expr.id)
            if entry is not None and entry[1] is not None:
                resolved = self._resolve_symbol(*entry)
                return resolved[1] if resolved is not None else None
            if expr.id in _BUILTIN_CALLS and entry is None \
                    and expr.id not in self._module_functions.get(module,
                                                                  ()):
                return expr.id
            return None
        if isinstance(expr, ast.Attribute):
            return self._resolve_dotted(sf, expr)
        return None

    # -- class queries --------------------------------------------------

    def mro(self, class_id: str) -> list[str]:
        """The project-visible linearization of ``class_id``."""
        order: list[str] = []
        stack = [class_id]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return order

    def subclasses(self, class_id: str) -> set[str]:
        """Every transitive project subclass of ``class_id``."""
        found: set[str] = set()
        stack = [class_id]
        while stack:
            for sub in self._subclasses.get(stack.pop(), ()):
                if sub not in found:
                    found.add(sub)
                    stack.append(sub)
        return found

    def is_subclass(self, class_id: str, base_id: str) -> bool:
        """True when ``class_id`` is ``base_id`` or inherits from it."""
        return base_id in self.mro(class_id)

    def lookup_method(self, class_id: str, name: str) -> tuple[str, ...]:
        """Candidate implementations of ``obj.name()`` for a receiver
        statically typed ``class_id``: the MRO match plus — class
        hierarchy analysis — every subclass override."""
        if ":" not in class_id:
            return (f"{class_id}.{name}",)
        targets: list[str] = []
        for ancestor in self.mro(class_id):
            info = self.classes.get(ancestor)
            if info is None:
                if "." in ancestor or ancestor.startswith("builtins"):
                    continue
                continue
            method = info.methods.get(name)
            if method is not None:
                targets.append(method)
                break
        for sub in self.subclasses(class_id):
            method = self.classes[sub].methods.get(name)
            if method is not None and method not in targets:
                targets.append(method)
        return tuple(targets)

    def class_attr_types(self, class_id: str,
                         attr: str) -> frozenset[str]:
        """Inferred types of ``self.attr`` on ``class_id`` (MRO union)."""
        found: set[str] = set()
        for ancestor in self.mro(class_id):
            info = self.classes.get(ancestor)
            if info is not None:
                found |= info.attr_types.get(attr, frozenset())
        return frozenset(found)

    # -- type inference --------------------------------------------------

    def _annotation_types(self, sf: SourceFile,
                          annotation: ast.AST | None) -> frozenset[str]:
        """Class ids an annotation may denote (``None`` arms dropped)."""
        if annotation is None:
            return frozenset()
        if isinstance(annotation, ast.Constant):
            return frozenset()  # string annotations are not chased
        if isinstance(annotation, ast.BinOp) \
                and isinstance(annotation.op, ast.BitOr):
            return (self._annotation_types(sf, annotation.left)
                    | self._annotation_types(sf, annotation.right))
        if isinstance(annotation, ast.Subscript):
            # Optional[X] / Union[X, Y]: type arguments carry the info.
            value = annotation.slice
            if isinstance(value, ast.Tuple):
                types: frozenset[str] = frozenset()
                for element in value.elts:
                    types |= self._annotation_types(sf, element)
                return types
            return self._annotation_types(sf, value)
        if isinstance(annotation, ast.Name):
            if annotation.id == "None":
                return frozenset()
            ident = self._class_id_for(sf, annotation.id)
            return frozenset((ident,)) if ident else frozenset()
        if isinstance(annotation, ast.Attribute):
            ident = self._resolve_dotted(sf, annotation)
            return frozenset((ident,)) if ident else frozenset()
        return frozenset()

    def _expr_types(self, sf: SourceFile, expr: ast.AST,
                    env: dict[str, frozenset[str]],
                    cls: str | None) -> frozenset[str]:
        """Conservative value typing: constructors, typed names, unions."""
        if isinstance(expr, ast.Call):
            ident = None
            if isinstance(expr.func, ast.Name):
                ident = self._class_id_for(sf, expr.func.id)
            elif isinstance(expr.func, ast.Attribute):
                ident = self._resolve_dotted(sf, expr.func)
            if ident is not None:
                is_class = (ident in self.classes if ":" in ident
                            else ident[:1].isupper()
                            or ident in _BUILTIN_TYPES.values()
                            or ident.rsplit(".", 1)[-1][:1].isupper())
                if is_class:
                    return frozenset((ident,))
            return frozenset()
        if isinstance(expr, ast.Name):
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.IfExp):
            return (self._expr_types(sf, expr.body, env, cls)
                    | self._expr_types(sf, expr.orelse, env, cls))
        if isinstance(expr, ast.BoolOp):
            types: frozenset[str] = frozenset()
            for value in expr.values:
                types |= self._expr_types(sf, value, env, cls)
            return types
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and cls is not None:
            return self.class_attr_types(cls, expr.attr)
        return frozenset()

    def _parameter_env(self, info: FunctionInfo
                       ) -> dict[str, frozenset[str]]:
        env: dict[str, frozenset[str]] = {}
        args = info.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            types = self._annotation_types(info.sf, arg.annotation)
            if types:
                env[arg.arg] = types
        return env

    def _infer_attr_types(self) -> None:
        """``self.attr`` types from every method body (union across
        assignments; constructor calls and annotated params only)."""
        for info in self.classes.values():
            for method_name, method_id in info.methods.items():
                method = self.functions[method_id]
                env = self._parameter_env(method)
                for node in ast.walk(method.node):
                    target = value = None
                    if isinstance(node, ast.Assign) \
                            and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    types = frozenset()
                    if isinstance(node, ast.AnnAssign):
                        types |= self._annotation_types(info.sf,
                                                        node.annotation)
                    if value is not None:
                        types |= self._expr_types(info.sf, value, env,
                                                  info.qualname)
                    if types:
                        merged = info.attr_types.get(target.attr,
                                                     frozenset())
                        info.attr_types[target.attr] = merged | types

    # -- call collection --------------------------------------------------

    def _local_env(self, info: FunctionInfo) -> dict[str, frozenset[str]]:
        """Parameter + straight-line local variable types."""
        env = self._parameter_env(info)
        for node in self._own_nodes(info.node):
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not isinstance(target, ast.Name):
                continue
            types = frozenset()
            if isinstance(node, ast.AnnAssign):
                types |= self._annotation_types(info.sf, node.annotation)
            if value is not None:
                types |= self._expr_types(info.sf, value, env, info.cls)
            if types:
                env[target.id] = env.get(target.id, frozenset()) | types
        return env

    @staticmethod
    def _own_nodes(func: ast.AST):
        """Walk a function body, skipping nested function/lambda scopes
        (their calls belong to their own graph nodes, and a lambda's
        body does not run where it is defined)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (*_FUNCTION_DEFS, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _collect_calls(self, info: FunctionInfo) -> list[CallSite]:
        env = self._local_env(info)
        nested = {node.name: f"{info.qualname.split(':', 1)[1]}.{node.name}"
                  for node in ast.walk(info.node)
                  if isinstance(node, _FUNCTION_DEFS) and node is not info.node}
        sites = []
        for node in self._own_nodes(info.node):
            if isinstance(node, ast.Call):
                targets = self._resolve_call(info, env, nested, node)
                sites.append(CallSite(node=node, targets=targets))
        return sites

    def _resolve_call(self, info: FunctionInfo,
                      env: dict[str, frozenset[str]],
                      nested: dict[str, str],
                      call: ast.Call) -> tuple[str, ...]:
        sf, module, cls = info.sf, info.module, info.cls
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in nested:
                return (f"{module}:{nested[name]}",)
            if name in self._module_functions.get(module, ()):
                return (f"{module}:{name}",)
            ident = self._class_id_for(sf, name)
            if ident is not None:
                return self._constructor_targets(ident)
            entry = self._imports.get(module, {}).get(name)
            if entry is not None and entry[1] is not None:
                resolved = self._resolve_symbol(*entry)
                if resolved is None:
                    return ()
                kind, target = resolved
                if kind == "func":
                    return (target,)
                if kind == "class":
                    return self._constructor_targets(target)
                if kind == "external":
                    return (target,)
                return ()
            if name in _BUILTIN_CALLS and entry is None:
                return (name,)
            return ()
        if isinstance(func, ast.Attribute):
            method = func.attr
            value = func.value
            dotted = self._resolve_dotted(sf, func)
            if dotted is not None:
                if ":" in dotted:
                    kind = ("class" if dotted in self.classes else "func")
                    return ((dotted,) if kind == "func"
                            else self._constructor_targets(dotted))
                return (dotted,)
            if isinstance(value, ast.Name):
                if value.id == "self" and cls is not None:
                    return self.lookup_method(cls, method)
                receiver = env.get(value.id, frozenset())
                receiver |= frozenset(
                    filter(None, (self._class_id_for(sf, value.id),))
                ) if value.id not in env else frozenset()
                return self._method_targets(receiver, method)
            if isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name) \
                    and value.value.id == "self" and cls is not None:
                receiver = self.class_attr_types(cls, value.attr)
                return self._method_targets(receiver, method)
            if isinstance(value, ast.Call):
                receiver = self._expr_types(sf, value, env, cls)
                return self._method_targets(receiver, method)
        return ()

    def _method_targets(self, receiver: frozenset[str],
                        method: str) -> tuple[str, ...]:
        targets: list[str] = []
        for type_id in receiver:
            for target in self.lookup_method(type_id, method):
                if target not in targets:
                    targets.append(target)
        return tuple(targets)

    def _constructor_targets(self, class_id: str) -> tuple[str, ...]:
        """Calling a class runs ``__init__`` (when the project has it)."""
        if ":" not in class_id:
            return (class_id,)
        targets = [t for t in self.lookup_method(class_id, "__init__")]
        return tuple(targets)

    # -- reachability ------------------------------------------------------

    def reachable(self, roots) -> set[str]:
        """Every project function reachable from ``roots`` (inclusive)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls.get(current, ()):
                for target in site.targets:
                    if target in self.functions and target not in seen:
                        stack.append(target)
        return seen


def get_call_graph(project: Project) -> CallGraph:
    """The memoized :class:`CallGraph` of ``project`` (built once; the
    RL1xx rules all share it)."""
    graph = getattr(project, "_callgraph", None)
    if graph is None or graph.project is not project:
        graph = CallGraph(project)
        project._callgraph = graph
    return graph
