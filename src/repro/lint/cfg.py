"""Per-function control-flow graphs for the dataflow rules.

A :class:`CFG` is a set of basic blocks over the *statements* of one
function body.  Compound statements contribute their header node to the
block preceding their subtrees (the dataflow transfer functions use the
header to model bindings such as ``for target in iter:``), and their
bodies become separate blocks wired with the usual edges:

* ``if``/``else`` fork and rejoin;
* loops get a back edge and an exit edge (``orelse`` supported);
* ``break``/``continue``/``return``/``raise`` terminate their block
  (``return``/``raise`` jump to the synthetic exit block);
* ``try`` is approximated soundly for forward may-analyses: every block
  of the protected body gains an edge to each handler, since an
  exception may fire anywhere inside it; ``finally`` runs on the join.

The graphs are built from the AST only and are deliberately small —
just enough structure for the worklist engine in
:mod:`repro.lint.dataflow` to reach a fixpoint over branchy code
(loops with ``break``, early returns, exception fallbacks) without
falsely merging facts straight-line analysis would get wrong.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "build_cfg"]


@dataclass(eq=False)  # identity hash/eq: blocks key worklist maps
class Block:
    """A straight-line run of statements with outgoing edges."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: list["Block"] = field(default_factory=list)

    def link(self, other: "Block") -> None:
        """Add an edge to ``other`` (self-loops and duplicates elided)."""
        if other is not self and other not in self.successors:
            self.successors.append(other)

    def __repr__(self) -> str:
        lines = [getattr(s, "lineno", "?") for s in self.statements]
        return f"Block({self.index}, lines={lines})"


@dataclass
class CFG:
    """Entry/exit plus every block of one function."""

    entry: Block
    exit: Block
    blocks: list[Block]

    def containing_block(self, stmt: ast.stmt) -> Block | None:
        """The block whose statement list holds ``stmt`` (by identity)."""
        for block in self.blocks:
            if any(s is stmt for s in block.statements):
                return block
        return None


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.exit = self._new()
        self._loop_stack: list[tuple[Block, Block]] = []  # (head, after)

    def _new(self) -> Block:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        entry = self._new()
        tail = self._body(func.body, entry)
        tail.link(self.exit)
        # Keep block list in creation order but move exit last for
        # readable dumps; order is irrelevant to the worklist engine.
        self.blocks.remove(self.exit)
        self.blocks.append(self.exit)
        return CFG(entry=entry, exit=self.exit, blocks=self.blocks)

    def _body(self, statements: list[ast.stmt], current: Block) -> Block:
        """Wire ``statements`` starting at ``current``; return the open
        block that control falls out of (it may be unreachable after a
        ``return`` — harmless for a may-analysis)."""
        for stmt in statements:
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: Block) -> Block:
        if isinstance(stmt, ast.If):
            current.statements.append(stmt)
            after = self._new()
            then_entry = self._new()
            current.link(then_entry)
            self._body(stmt.body, then_entry).link(after)
            if stmt.orelse:
                else_entry = self._new()
                current.link(else_entry)
                self._body(stmt.orelse, else_entry).link(after)
            else:
                current.link(after)
            return after
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = self._new()
            current.link(head)
            head.statements.append(stmt)  # models the loop binding
            after = self._new()
            body_entry = self._new()
            head.link(body_entry)
            head.link(after)  # zero iterations / condition false
            self._loop_stack.append((head, after))
            self._body(stmt.body, body_entry).link(head)
            self._loop_stack.pop()
            if stmt.orelse:
                else_entry = self._new()
                head.link(else_entry)
                self._body(stmt.orelse, else_entry).link(after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.statements.append(stmt)  # models ``as`` bindings
            return self._body(stmt.body, current)
        if isinstance(stmt, ast.Try):
            current.statements.append(stmt)
            after = self._new()
            body_entry = self._new()
            current.link(body_entry)
            body_blocks_start = len(self.blocks)
            body_tail = self._body(stmt.body, body_entry)
            body_blocks = [body_entry] + \
                self.blocks[body_blocks_start:len(self.blocks)]
            handler_entries: list[Block] = []
            for handler in stmt.handlers:
                handler_entry = self._new()
                handler_entry.statements.append(handler)  # ``as`` binding
                handler_entries.append(handler_entry)
                self._body(handler.body, handler_entry).link(after)
            # An exception may fire at any protected statement.
            for block in body_blocks:
                for handler_entry in handler_entries:
                    block.link(handler_entry)
            if stmt.orelse:
                else_entry = self._new()
                body_tail.link(else_entry)
                self._body(stmt.orelse, else_entry).link(after)
            else:
                body_tail.link(after)
            if stmt.finalbody:
                final_entry = self._new()
                # finally runs on every path out of the try.
                for block in [after]:
                    block.link(final_entry)
                return self._body(stmt.finalbody, final_entry)
            return after
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            current.link(self.exit)
            return self._new()  # unreachable continuation
        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if self._loop_stack:
                current.link(self._loop_stack[-1][1])
            return self._new()
        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if self._loop_stack:
                current.link(self._loop_stack[-1][0])
            return self._new()
        current.statements.append(stmt)
        return current


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The control-flow graph of one function's body."""
    return _Builder().build(func)
