"""A small forward dataflow engine over :mod:`repro.lint.cfg` graphs.

Two layers:

* :class:`ForwardAnalysis` + :func:`run_forward` — a classic worklist
  fixpoint for *may*-analyses: states live on block entries, transfer
  functions fold statements through a block, joins are unions, and the
  loop runs until nothing changes.  Monotone transfer functions over
  the finite taint lattice guarantee termination.

* :class:`TaintAnalysis` — the concrete analysis the RL1xx rules use.
  A state maps each local variable to the frozenset of *source labels*
  (by default: the function's parameters) that may influence its
  value.  Propagation is deliberately coarse-but-sound in the *may*
  direction: every ``Name`` read inside the right-hand side
  contributes its taint, calls taint their result with every argument,
  tuple unpacking spreads the full RHS taint, in-place mutators
  (``x.append(v)``, ``s.update(...)``) feed argument taint back into
  the receiver, and loop/with/except headers model their bindings.
  Over-approximating influence is the safe default here — RL104 asks
  "could this parameter affect the cached value?", and a spurious
  *yes* on the key side can only silence, never fabricate, a finding,
  while a spurious *yes* on the value side surfaces for human review.

Rules query results with :func:`state_before`, which replays the fixed
block prefix up to (but excluding) a statement of interest — e.g. the
taint sets in scope at a ``self._cache.put(key, value)`` site.
"""

from __future__ import annotations

import ast

from .cfg import CFG, Block

__all__ = ["ForwardAnalysis", "TaintAnalysis", "run_forward",
           "state_before"]

#: Methods that mutate their receiver in place using their arguments.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "extend", "extendleft", "insert",
    "update", "setdefault", "put", "put_nowait", "push",
})

#: Receiver methods that mutate without argument inflow (removal /
#: reset); relevant to ownership checking, not to taint.
REMOVAL_METHODS = frozenset({
    "pop", "popleft", "popitem", "remove", "discard", "clear",
})


class ForwardAnalysis:
    """Interface a forward may-analysis implements."""

    def initial(self) -> dict:
        """Entry state of the function."""
        return {}

    def bottom(self) -> dict:
        """State for blocks not yet visited."""
        return {}

    def copy(self, state: dict) -> dict:
        """An independent copy of ``state`` safe to mutate."""
        return dict(state)

    def join(self, into: dict, other: dict) -> bool:
        """Union ``other`` into ``into``; True when ``into`` changed."""
        changed = False
        for key, value in other.items():
            merged = into.get(key, frozenset()) | value
            if merged != into.get(key):
                into[key] = merged
                changed = True
        return changed

    def transfer(self, stmt: ast.stmt, state: dict) -> None:
        """Fold one statement into ``state`` (in place)."""
        raise NotImplementedError


def run_forward(cfg: CFG, analysis: ForwardAnalysis
                ) -> dict[Block, dict]:
    """Worklist fixpoint; returns the entry state of every block."""
    states: dict[Block, dict] = {
        block: analysis.bottom() for block in cfg.blocks}
    states[cfg.entry] = analysis.initial()
    worklist = [cfg.entry]
    while worklist:
        block = worklist.pop()
        state = analysis.copy(states[block])
        for stmt in block.statements:
            analysis.transfer(stmt, state)
        for successor in block.successors:
            if analysis.join(states[successor], state):
                if successor not in worklist:
                    worklist.append(successor)
    return states


def state_before(cfg: CFG, analysis: ForwardAnalysis,
                 states: dict[Block, dict],
                 target: ast.stmt) -> dict:
    """The fixpoint state immediately before ``target`` executes."""
    block = cfg.containing_block(target)
    if block is None:
        return analysis.initial()
    state = analysis.copy(states[block])
    for stmt in block.statements:
        if stmt is target:
            break
        analysis.transfer(stmt, state)
    return state


def _assigned_names(target: ast.expr):
    """Every plain Name bound by an assignment target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from _assigned_names(target.value)


class TaintAnalysis(ForwardAnalysis):
    """Track which source labels may influence each local variable.

    ``seeds`` maps variable names to their initial label sets (for
    RL104: each non-self parameter to ``{its own name}``).  Subclasses
    may override :meth:`extra_sources` to inject labels at arbitrary
    expressions — RL103 uses that to treat loads of owned ``self``
    attributes as sources, which turns the same engine into an alias
    tracker (``home = self._home[index]; home.pop()``).
    """

    def __init__(self, seeds: dict[str, frozenset[str]]):
        self._seeds = seeds

    def initial(self) -> dict:
        return {name: frozenset(labels)
                for name, labels in self._seeds.items()}

    # -- expression taint ------------------------------------------------

    def extra_sources(self, expr: ast.expr) -> frozenset[str]:
        """Labels an expression node introduces by itself."""
        return frozenset()

    def expr_taint(self, expr: ast.expr | None, state: dict
                   ) -> frozenset[str]:
        """Union of every label that may flow into ``expr``'s value."""
        if expr is None:
            return frozenset()
        taint: frozenset[str] = frozenset()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                taint |= state.get(node.id, frozenset())
            elif isinstance(node, ast.Lambda):
                # A lambda's body does not run here; its value still
                # closes over tainted names, which the Name walk above
                # already covers.
                continue
            taint |= self.extra_sources(node)
        return taint

    def assign_taint(self, expr: ast.expr, state: dict
                     ) -> frozenset[str]:
        """Labels bound by ``target = expr`` (default: full influence).

        Alias-style subclasses narrow this to access paths so that a
        copy (``dict(x)``) does not count as the original."""
        return self.expr_taint(expr, state)

    def element_taint(self, expr: ast.expr, state: dict
                      ) -> frozenset[str]:
        """Labels bound by ``for target in expr`` (default: full
        influence; alias-style subclasses return nothing — an element
        is not the container)."""
        return self.expr_taint(expr, state)

    # -- statement transfer ---------------------------------------------

    def transfer(self, stmt: ast.stmt, state: dict) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.assign_taint(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, taint, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target,
                           self.assign_taint(stmt.value, state), state)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.assign_taint(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                state[name] = state.get(name, frozenset()) | taint
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.element_taint(stmt.iter, state)
            self._bind(stmt.target, taint, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.assign_taint(item.context_expr,
                                                 state),
                               state)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                state[stmt.name] = frozenset()
        elif isinstance(stmt, ast.Expr):
            self._mutator_flow(stmt.value, state)
        elif isinstance(stmt, ast.Return):
            state["<return>"] = (state.get("<return>", frozenset())
                                 | self.expr_taint(stmt.value, state))

    def _bind(self, target: ast.expr, taint: frozenset[str],
              state: dict) -> None:
        for name in _assigned_names(target):
            state[name] = taint

    def _mutator_flow(self, expr: ast.expr, state: dict) -> None:
        """``collected.append(item)`` feeds ``item``'s taint into
        ``collected`` — without this, accumulator loops (the engine's
        ``covered.update(...)`` idiom) would look untainted."""
        if not (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in MUTATOR_METHODS):
            return
        receiver = expr.func.value
        if not isinstance(receiver, ast.Name):
            return
        taint: frozenset[str] = frozenset()
        for arg in expr.args:
            taint |= self.expr_taint(arg, state)
        for keyword in expr.keywords:
            taint |= self.expr_taint(keyword.value, state)
        if taint:
            name = receiver.id
            state[name] = state.get(name, frozenset()) | taint
