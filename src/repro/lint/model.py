"""Data model of the project linter: findings, files, rules, pragmas.

The linter is a pure AST pass: it never imports the code it checks.
Every checked file becomes a :class:`SourceFile` (parsed tree, dotted
module name, suppression pragmas); the set of files under analysis is
a :class:`Project`, which is what every rule receives — the repo's
invariants are *cross-file* (a call site in ``optimize/`` versus a
definition in ``core/``, an engine layer versus the snapshot schema),
so rules see the whole tree at once rather than one file at a time.

Suppression pragmas are comments::

    engine.covered_atoms(q1, q2)  # repro-lint: disable=RL001
    # repro-lint: disable=RL004
    key = id(semiring)

A trailing pragma suppresses its own line; a comment-only pragma line
suppresses itself *and* the next line (so a justification sentence can
precede the code it excuses).  ``disable=all`` mutes every rule.

Ownership annotations use the same comment channel::

    # Touched only by the collector thread and the delivery helpers.
    self._results = {}  # repro-lint: owner=_collect,on_result

``# repro-lint: owner=method,method`` on (or immediately above) an
attribute declaration names the methods allowed to mutate that
attribute; rule RL103 flags mutations anywhere else.  The declaring
method itself is always allowed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = ["Finding", "SourceFile", "Project", "Rule", "RULES",
           "rule", "load_source_file", "module_name_for"]

#: ``# repro-lint: disable=RL001,RL004`` (or ``disable=all``).
_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: ``# repro-lint: owner=_collect,on_result`` — mutation allowlist for
#: the attribute declared on the annotated line (RL103).
_OWNER = re.compile(r"#\s*repro-lint:\s*owner=([A-Za-z0-9_.,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        """The canonical ``path:line: RULE message`` text form."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """JSON-clean form (the JSON reporter's per-finding schema)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}


def _pragmas(text: str) -> dict[int, frozenset[str]]:
    """``line → suppressed rule ids`` from ``repro-lint`` comments."""
    suppressed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",")
                if part.strip())
            line = token.start[0]
            lines = [line]
            # A comment-only pragma line also covers the next line.
            if token.line.lstrip().startswith("#"):
                lines.append(line + 1)
            for covered in lines:
                suppressed.setdefault(covered, set()).update(rules)
    except (tokenize.TokenError, IndentationError):
        pass  # an unparsable file already fails at ast.parse
    return {line: frozenset(rules)
            for line, rules in suppressed.items()}


def _owner_annotations(text: str) -> dict[int, tuple[str, ...]]:
    """``line → allowed mutator methods`` from ``owner=`` comments.

    Line-coverage semantics match :func:`_pragmas`: a trailing comment
    annotates the declaration on its own line, a comment-only line the
    declaration on the next line.
    """
    owners: dict[int, tuple[str, ...]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _OWNER.search(token.string)
            if match is None:
                continue
            methods = tuple(part.strip()
                            for part in match.group(1).split(",")
                            if part.strip())
            if not methods:
                continue
            line = token.start[0]
            lines = [line]
            if token.line.lstrip().startswith("#"):
                lines.append(line + 1)
            for covered in lines:
                owners[covered] = methods
    except (tokenize.TokenError, IndentationError):
        pass
    return owners


def module_name_for(path: Path) -> str | None:
    """The dotted module name of ``path``, walked up ``__init__.py``s.

    Returns ``None`` for scripts outside any package — rules that key
    on module prefixes simply skip those files.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class SourceFile:
    """One parsed file under analysis."""

    path: Path
    display: str
    module: str | None
    tree: ast.Module
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)
    owners: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True when a pragma mutes ``rule_id`` on ``line``."""
        active = self.pragmas.get(line, frozenset())
        return rule_id in active or "all" in active


def load_source_file(path: Path, root: Path | None = None,
                     ) -> SourceFile | Finding:
    """Parse one file; a syntax error becomes an ``RL000`` finding."""
    display = str(path)
    if root is not None:
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            display = str(path)
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", None) or 1
        return Finding(rule="RL000", path=display, line=line,
                       message=f"cannot parse file ({error})")
    return SourceFile(path=path, display=display,
                      module=module_name_for(path), tree=tree,
                      pragmas=_pragmas(text),
                      owners=_owner_annotations(text))


class Project:
    """The whole set of files a lint run analyzes."""

    def __init__(self, files: Iterable[SourceFile]):
        self.files: tuple[SourceFile, ...] = tuple(files)
        self.by_module: dict[str, SourceFile] = {
            sf.module: sf for sf in self.files if sf.module is not None}

    def file(self, module: str) -> SourceFile | None:
        """The file defining ``module``, if it is under analysis."""
        return self.by_module.get(module)

    def modules_under(self, prefix: str) -> Iterator[SourceFile]:
        """Files whose module is ``prefix`` or lives beneath it."""
        for sf in self.files:
            if sf.module is None:
                continue
            if sf.module == prefix or sf.module.startswith(prefix + "."):
                yield sf


class Rule:
    """Base class of a lint rule.

    Subclasses set :attr:`id`/:attr:`title` and implement
    :meth:`check`, yielding findings over the whole project; the runner
    applies pragma suppression afterwards, so rules never need to look
    at pragmas themselves.
    """

    id: str = "RL000"
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield every violation of this rule in ``project``."""
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def finding(self, sf: SourceFile, node: ast.AST | int,
                message: str) -> Finding:
        """A finding of this rule at an AST node (or literal line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(rule=self.id, path=sf.display, line=line,
                       message=message)


#: ``rule id → rule class`` — the registry the runner instantiates.
RULES: dict[str, type[Rule]] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule under its stable id."""
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def walk_with_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """``child → parent`` links for every node (rules climb them)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


RuleFactory = Callable[[], Rule]
