"""Text and JSON reporters for lint runs."""

from __future__ import annotations

from dataclasses import dataclass

from .model import Finding

__all__ = ["LintReport", "render_text", "render_json"]

#: The JSON reporter's schema version (bump on incompatible changes).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    ``findings``   — surviving findings, sorted by (path, line, rule).
    ``suppressed`` — how many findings pragmas muted.
    ``files``      — how many files were analyzed.
    ``timings``    — per-rule ``(rule id, seconds)`` pairs; populated
                     only when the run was asked for stats, so the
                     default JSON document stays byte-stable.
    """

    findings: tuple[Finding, ...]
    suppressed: int
    files: int
    timings: tuple[tuple[str, float], ...] = ()

    @property
    def clean(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived."""
        return 0 if self.clean else 1


def render_text(report: LintReport, *, stats: bool = False) -> str:
    """Human-readable report: one ``path:line: RULE message`` per
    finding plus a one-line summary (and, with ``stats``, a per-rule
    timing table)."""
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (f"{len(report.findings)} {noun} in {report.files} "
               f"file(s)")
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed by pragmas)"
    lines.append(summary if report.findings else f"clean: {summary}")
    if stats and report.timings:
        lines.append("rule timings:")
        total = sum(seconds for _, seconds in report.timings)
        for rule_id, seconds in sorted(report.timings,
                                       key=lambda t: -t[1]):
            lines.append(f"  {rule_id}  {seconds * 1000:8.1f} ms")
        lines.append(f"  total  {total * 1000:8.1f} ms")
    return "\n".join(lines)


def render_json(report: LintReport) -> dict:
    """JSON-clean report document (stable schema, see tests).

    ``timings`` is additive and appears only when the run collected
    stats, so existing consumers of version-1 documents are unaffected.
    """
    document = {
        "version": JSON_SCHEMA_VERSION,
        "clean": report.clean,
        "files": report.files,
        "suppressed": report.suppressed,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    if report.timings:
        document["timings"] = {rule_id: seconds
                               for rule_id, seconds in report.timings}
    return document
