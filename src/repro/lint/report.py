"""Text and JSON reporters for lint runs."""

from __future__ import annotations

from dataclasses import dataclass

from .model import Finding

__all__ = ["LintReport", "render_text", "render_json"]

#: The JSON reporter's schema version (bump on incompatible changes).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run.

    ``findings``   — surviving findings, sorted by (path, line, rule).
    ``suppressed`` — how many findings pragmas muted.
    ``files``      — how many files were analyzed.
    """

    findings: tuple[Finding, ...]
    suppressed: int
    files: int

    @property
    def clean(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any finding survived."""
        return 0 if self.clean else 1


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line: RULE message`` per
    finding plus a one-line summary."""
    lines = [finding.render() for finding in report.findings]
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (f"{len(report.findings)} {noun} in {report.files} "
               f"file(s)")
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed by pragmas)"
    lines.append(summary if report.findings else f"clean: {summary}")
    return "\n".join(lines)


def render_json(report: LintReport) -> dict:
    """JSON-clean report document (stable schema, see tests)."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "clean": report.clean,
        "files": report.files,
        "suppressed": report.suppressed,
        "findings": [finding.to_dict() for finding in report.findings],
    }
