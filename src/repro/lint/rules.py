"""The project-specific lint rules (RL001–RL005).

Each rule machine-enforces one convention the engine's correctness or
warm-path performance rests on; ``docs/ARCHITECTURE.md`` and the
README's "Static analysis" section describe them from the user side.

* **RL001** — calls to the context-accepting decision primitives must
  thread ``context=`` (an omitted keyword silently bypasses every
  engine cache).
* **RL002** — the engine's cache layers live in exactly one registry
  (:mod:`repro.api.layers`); the engine/snapshot code must derive from
  it, never re-list it.
* **RL003** — registered semirings declare a coherent ``poly_order``
  and any :class:`~repro.semirings.base.VectorizedOps` kernel is a
  complete, exact pair with the object fallback.
* **RL004** — determinism hazards: ``id()``, ``hash()`` outside the
  ``__hash__``/``_hash``-memo idiom, stringified sets, set iteration
  inside digest/shard routines.
* **RL005** — every ``__reduce__`` crossing the pool boundary restores
  through a callable the snapshot unpickler's allowlist covers.

All rules are pure AST analyses over a :class:`~repro.lint.model.Project`
— nothing under analysis is ever imported.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .callgraph import import_map as _import_map
from .model import Finding, Project, Rule, SourceFile, rule

__all__ = ["ContextThreadingRule", "CacheLayerRule", "SemiringRule",
           "DeterminismRule", "PickleBoundaryRule"]

#: Fallback VectorizedOps protocol, used when ``semirings/base.py`` is
#: not under analysis (e.g. linting a subtree).
_VECTOR_PROTOCOL = frozenset({"encode", "decode", "add", "mul",
                              "segment_add"})

#: The modules whose public context-accepting functions RL001 covers.
_CONTEXT_PREFIXES = ("repro.core", "repro.homomorphisms",
                     "repro.polynomials")


# Import/alias resolution is shared with the interprocedural layer:
# ``_import_map`` above is :func:`repro.lint.callgraph.import_map`.


def _parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    links: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            links[child] = node
    return links


def _const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@rule
class ContextThreadingRule(Rule):
    """RL001: decision-primitive calls must thread ``context=``.

    Pass 1 collects every public module-level function under
    ``repro.core``/``repro.homomorphisms``/``repro.polynomials`` that
    accepts a ``context`` parameter.  Pass 2 flags call sites anywhere
    in the tree that resolve (through imports, package re-exports
    included) to one of those functions without a ``context=`` keyword
    (or a ``**kwargs`` splat that could carry one).
    """

    id = "RL001"
    title = "context-threading"

    def check(self, project: Project) -> Iterator[Finding]:
        targets = self._context_functions(project)
        if not targets:
            return
        for sf in project.files:
            yield from self._check_file(sf, targets)

    @staticmethod
    def _accepts_context(node: ast.FunctionDef) -> bool:
        args = node.args
        return any(arg.arg == "context"
                   for arg in list(args.args) + list(args.kwonlyargs))

    def _context_functions(self, project: Project
                           ) -> dict[str, frozenset[str]]:
        """``function name → acceptable origin modules``."""
        targets: dict[str, set[str]] = {}
        for prefix in _CONTEXT_PREFIXES:
            for sf in project.modules_under(prefix):
                for node in sf.tree.body:
                    if not isinstance(node, ast.FunctionDef):
                        continue
                    if node.name.startswith("_"):
                        continue
                    if not self._accepts_context(node):
                        continue
                    origins = targets.setdefault(node.name, set())
                    # The defining module plus every ancestor package:
                    # re-exports through __init__ stay recognized.
                    parts = sf.module.split(".")
                    for end in range(1, len(parts) + 1):
                        origins.add(".".join(parts[:end]))
        return {name: frozenset(origins)
                for name, origins in targets.items()}

    def _check_file(self, sf: SourceFile,
                    targets: dict[str, frozenset[str]]
                    ) -> Iterator[Finding]:
        imports = _import_map(sf)
        local_defs = {node.name for node in sf.tree.body
                      if isinstance(node, ast.FunctionDef)}
        local_covered = (sf.module is not None
                         and sf.module.startswith(_CONTEXT_PREFIXES))
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            symbol, origin = self._resolve_call(
                node, imports, sf, local_defs, local_covered)
            if symbol is None:
                continue
            origins = targets.get(symbol)
            if origins is None or origin not in origins:
                continue
            if any(kw.arg == "context" or kw.arg is None
                   for kw in node.keywords):
                continue
            yield self.finding(
                sf, node,
                f"call to {symbol}() omits context= — engine caches "
                f"are silently bypassed; thread the caller's "
                f"DecisionContext (or pragma with a justification)")

    @staticmethod
    def _resolve_call(node: ast.Call, imports, sf: SourceFile,
                      local_defs, local_covered
                      ) -> tuple[str | None, str | None]:
        func = node.func
        if isinstance(func, ast.Name):
            entry = imports.get(func.id)
            if entry is not None and entry[1] is not None:
                return entry[1], entry[0]
            if local_covered and func.id in local_defs:
                return func.id, sf.module
            return None, None
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            entry = imports.get(func.value.id)
            if entry is not None and entry[1] is None:
                return func.attr, entry[0]
        return None, None


@rule
class CacheLayerRule(Rule):
    """RL002: one cache-layer registry, consumed everywhere.

    Cross-checks :mod:`repro.api.layers` (parsed as a literal, never
    imported) against the engine and the snapshot module: every LRU
    store created in ``ContainmentEngine.__init__`` is declared, every
    declared layer exists, declared counters are real ``EngineStats``
    fields, ``export_caches``/``import_caches`` iterate the registry,
    and the snapshot schema is imported from it — a literal re-listing
    anywhere is flagged as drift waiting to happen.
    """

    id = "RL002"
    title = "cache-layer completeness"

    _FIELD_ORDER = ("name", "attr", "hits", "calls", "entries", "kind",
                    "keyed_by_semiring")

    def check(self, project: Project) -> Iterator[Finding]:
        engine_sf = project.file("repro.api.engine")
        layers_sf = project.file("repro.api.layers")
        if layers_sf is None:
            if engine_sf is not None:
                yield self.finding(
                    engine_sf, 1,
                    "engine is under analysis but no cache-layer "
                    "registry (repro.api.layers) is — every layer "
                    "must be declared exactly once there")
            return
        layers, problems = self._parse_registry(layers_sf)
        yield from problems
        names = [layer["name"] for layer in layers]
        for name in sorted({n for n in names if names.count(n) > 1}):
            yield self.finding(layers_sf, 1,
                               f"layer {name!r} is declared twice")
        if engine_sf is not None:
            yield from self._check_engine(engine_sf, layers)
        snapshot_sf = project.file("repro.service.snapshot")
        if snapshot_sf is not None:
            yield from self._check_snapshot(snapshot_sf)

    def _parse_registry(self, sf: SourceFile
                        ) -> tuple[list[dict], list[Finding]]:
        """Extract the literal ``CACHE_LAYERS`` tuple from the AST."""
        for node in sf.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if not any(isinstance(t, ast.Name) and t.id == "CACHE_LAYERS"
                       for t in targets):
                continue
            if not isinstance(value, (ast.Tuple, ast.List)):
                return [], [self.finding(
                    sf, node, "CACHE_LAYERS must be a literal tuple of "
                              "CacheLayer(...) calls (the linter reads "
                              "it without importing)")]
            layers = []
            problems = []
            for element in value.elts:
                parsed = self._parse_layer(element)
                if parsed is None:
                    problems.append(self.finding(
                        sf, element,
                        "unparseable CACHE_LAYERS entry — use literal "
                        "CacheLayer(name=..., attr=..., ...) calls"))
                else:
                    parsed["line"] = element.lineno
                    layers.append(parsed)
            return layers, problems
        return [], [self.finding(
            sf, 1, "repro.api.layers defines no CACHE_LAYERS registry")]

    def _parse_layer(self, node: ast.AST) -> dict | None:
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "CacheLayer"):
            return None
        values: dict[str, object] = {"kind": "lru",
                                     "keyed_by_semiring": False}
        for index, arg in enumerate(node.args):
            if index >= len(self._FIELD_ORDER):
                return None
            if not isinstance(arg, ast.Constant):
                return None
            values[self._FIELD_ORDER[index]] = arg.value
        for keyword in node.keywords:
            if keyword.arg not in self._FIELD_ORDER:
                return None
            if not isinstance(keyword.value, ast.Constant):
                return None
            values[keyword.arg] = keyword.value.value
        if not all(field in values for field in
                   ("name", "attr", "hits", "calls", "entries")):
            return None
        return values

    def _check_engine(self, sf: SourceFile,
                      layers: list[dict]) -> Iterator[Finding]:
        engine_cls = next(
            (node for node in sf.tree.body
             if isinstance(node, ast.ClassDef)
             and node.name == "ContainmentEngine"), None)
        stats_cls = next(
            (node for node in sf.tree.body
             if isinstance(node, ast.ClassDef)
             and node.name == "EngineStats"), None)
        if engine_cls is None:
            return
        declared = {layer["attr"]: layer for layer in layers}
        init = next((node for node in engine_cls.body
                     if isinstance(node, ast.FunctionDef)
                     and node.name == "__init__"), None)
        assigned: dict[str, ast.AST] = {}
        lru_created: dict[str, ast.AST] = {}
        if init is not None:
            for node in ast.walk(init):
                target = value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                assigned[target.attr] = node
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "_LRU"):
                    lru_created[target.attr] = node
        for attr, node in sorted(lru_created.items()):
            if attr not in declared:
                yield self.finding(
                    sf, node,
                    f"cache store self.{attr} is not declared in "
                    f"repro.api.layers.CACHE_LAYERS — stats, snapshot "
                    f"export/import and the pool merge will all miss it")
        for layer in layers:
            if layer["attr"] not in assigned:
                yield self.finding(
                    sf, 1,
                    f"layer {layer['name']!r} declares attr "
                    f"{layer['attr']!r} but ContainmentEngine.__init__ "
                    f"never creates it")
        if stats_cls is not None:
            fields = {node.target.id for node in stats_cls.body
                      if isinstance(node, ast.AnnAssign)
                      and isinstance(node.target, ast.Name)}
            for layer in layers:
                for counter in (layer["hits"], layer["calls"]):
                    if counter is not None and counter not in fields:
                        yield self.finding(
                            sf, stats_cls,
                            f"layer {layer['name']!r} references "
                            f"counter {counter!r}, which is not an "
                            f"EngineStats field")
        for method_name in ("export_caches", "import_caches"):
            method = next((node for node in engine_cls.body
                           if isinstance(node, ast.FunctionDef)
                           and node.name == method_name), None)
            if method is None:
                continue
            uses_registry = any(
                isinstance(node, ast.Name) and node.id == "CACHE_LAYERS"
                for node in ast.walk(method))
            if not uses_registry:
                yield self.finding(
                    sf, method,
                    f"{method_name} does not iterate CACHE_LAYERS — "
                    f"a new layer would silently be skipped by "
                    f"snapshots and the pool merge")

    def _check_snapshot(self, sf: SourceFile) -> Iterator[Finding]:
        imports_schema = any(
            isinstance(node, ast.ImportFrom) and node.module
            and node.module.endswith("layers")
            and any(alias.name == "SNAPSHOT_LAYERS"
                    for alias in node.names)
            for node in ast.walk(sf.tree))
        if not imports_schema:
            yield self.finding(
                sf, 1,
                "snapshot module must import SNAPSHOT_LAYERS from "
                "repro.api.layers instead of keeping its own layer list")
        for node in sf.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            names = {t.id for t in node.targets
                     if isinstance(t, ast.Name)}
            if not names & {"_LAYERS", "SNAPSHOT_LAYERS"}:
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)) and all(
                    isinstance(e, ast.Constant) for e in node.value.elts):
                yield self.finding(
                    sf, node,
                    "literal layer list duplicates the registry in "
                    "repro.api.layers — import SNAPSHOT_LAYERS instead")


@rule
class SemiringRule(Rule):
    """RL003: semiring declarations are coherent.

    For every class under ``repro.semirings`` that (transitively)
    subclasses ``Semiring``: a declared ``poly_order`` must be a known
    literal kind, must come with ``poly_order_decidable=True`` in the
    class's ``SemiringProperties`` and a ``poly_leq`` implementation;
    and any ``vectorized_ops`` hook must return a kernel class from
    ``semirings/_vectorized.py`` implementing the complete
    ``VectorizedOps`` protocol (so the exact object fallback and the
    columnar path stay interchangeable).
    """

    id = "RL003"
    title = "semiring conformance"

    _KINDS = frozenset({"min-plus", "max-plus"})

    def check(self, project: Project) -> Iterator[Finding]:
        class_files: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        for sf in project.modules_under("repro.semirings"):
            for node in sf.tree.body:
                if isinstance(node, ast.ClassDef):
                    class_files.setdefault(node.name, (sf, node))
        if "Semiring" not in class_files:
            return
        protocol = self._protocol(project)
        semirings = self._transitive_subclasses(class_files, "Semiring")
        kernels = self._kernel_methods(project, class_files)
        for name in sorted(semirings):
            if name == "Semiring":
                continue
            sf, node = class_files[name]
            yield from self._check_semiring(sf, node, class_files,
                                            semirings, kernels, protocol)

    def _protocol(self, project: Project) -> frozenset[str]:
        base_sf = project.file("repro.semirings.base")
        if base_sf is None:
            return _VECTOR_PROTOCOL
        for node in base_sf.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "VectorizedOps":
                methods = frozenset(
                    item.name for item in node.body
                    if isinstance(item, ast.FunctionDef)
                    and not item.name.startswith("_"))
                return methods or _VECTOR_PROTOCOL
        return _VECTOR_PROTOCOL

    @staticmethod
    def _base_names(node: ast.ClassDef) -> list[str]:
        names = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                names.append(base.id)
            elif isinstance(base, ast.Attribute):
                names.append(base.attr)
        return names

    def _transitive_subclasses(self, class_files, root: str) -> set[str]:
        members = {root}
        changed = True
        while changed:
            changed = False
            for name, (_, node) in class_files.items():
                if name in members:
                    continue
                if members & set(self._base_names(node)):
                    members.add(name)
                    changed = True
        return members

    def _kernel_methods(self, project: Project,
                        class_files) -> dict[str, frozenset[str]]:
        """``kernel class → transitively defined public methods``."""
        vec_sf = project.file("repro.semirings._vectorized")
        if vec_sf is None:
            return {}
        local: dict[str, ast.ClassDef] = {
            node.name: node for node in vec_sf.tree.body
            if isinstance(node, ast.ClassDef)}
        resolved: dict[str, frozenset[str]] = {}

        def methods_of(name: str, seen: frozenset[str]) -> frozenset[str]:
            if name in resolved:
                return resolved[name]
            node = local.get(name)
            if node is None or name in seen:
                return frozenset()
            own = frozenset(item.name for item in node.body
                            if isinstance(item, ast.FunctionDef))
            inherited: frozenset[str] = frozenset()
            for base in self._base_names(node):
                inherited |= methods_of(base, seen | {name})
            resolved[name] = own | inherited
            return resolved[name]

        return {name: methods_of(name, frozenset()) for name in local}

    def _properties_call(self, node: ast.ClassDef,
                         class_files, semirings) -> ast.Call | None:
        """The class's ``SemiringProperties(...)`` call, searching the
        class body (and ``__init__``) then in-tree base classes."""
        for candidate in ast.walk(node):
            if (isinstance(candidate, ast.Call)
                    and isinstance(candidate.func, ast.Name)
                    and candidate.func.id == "SemiringProperties"):
                return candidate
        for base in self._base_names(node):
            if base in semirings and base in class_files:
                found = self._properties_call(class_files[base][1],
                                              class_files, semirings)
                if found is not None:
                    return found
        return None

    def _defines(self, node: ast.ClassDef, method: str,
                 class_files, semirings) -> bool:
        if any(isinstance(item, ast.FunctionDef) and item.name == method
               for item in node.body):
            return True
        return any(
            base in semirings and base in class_files
            and self._defines(class_files[base][1], method,
                              class_files, semirings)
            for base in self._base_names(node))

    def _check_semiring(self, sf: SourceFile, node: ast.ClassDef,
                        class_files, semirings, kernels,
                        protocol) -> Iterator[Finding]:
        poly_order = self._poly_order(node)
        if poly_order is not None:
            value, anchor = poly_order
            if value is None:
                pass  # explicit opt-out (poly_order = None)
            elif value not in self._KINDS:
                yield self.finding(
                    sf, anchor,
                    f"{node.name}: poly_order must be a literal in "
                    f"{sorted(self._KINDS)} (got {value!r}) — the "
                    f"certificate memo keys on the kind")
            else:
                properties = self._properties_call(node, class_files,
                                                   semirings)
                decidable = None
                if properties is not None:
                    for keyword in properties.keywords:
                        if keyword.arg == "poly_order_decidable":
                            decidable = (
                                keyword.value.value
                                if isinstance(keyword.value, ast.Constant)
                                else keyword.value)
                if decidable is not True:
                    yield self.finding(
                        sf, anchor,
                        f"{node.name}: declares poly_order={value!r} "
                        f"but its SemiringProperties does not set "
                        f"poly_order_decidable=True")
                if not self._defines(node, "poly_leq", class_files,
                                     semirings):
                    yield self.finding(
                        sf, anchor,
                        f"{node.name}: declares poly_order={value!r} "
                        f"but implements no poly_leq fallback — the "
                        f"certificate memo revalidates against it")
        hook = next((item for item in node.body
                     if isinstance(item, ast.FunctionDef)
                     and item.name == "vectorized_ops"), None)
        if hook is not None:
            yield from self._check_vectorized(sf, node, hook, kernels,
                                              protocol)

    @staticmethod
    def _poly_order(node: ast.ClassDef):
        """``(value, anchor node)`` of the class's own declaration."""
        for item in node.body:
            if (isinstance(item, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "poly_order"
                            for t in item.targets)):
                value = (item.value.value
                         if isinstance(item.value, ast.Constant)
                         else object())
                return value, item
        for item in ast.walk(node):
            if (isinstance(item, ast.Assign)
                    and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Attribute)
                    and item.targets[0].attr == "poly_order"):
                value = (item.value.value
                         if isinstance(item.value, ast.Constant)
                         else object())
                return value, item
        return None

    def _check_vectorized(self, sf: SourceFile, cls: ast.ClassDef,
                          hook: ast.FunctionDef, kernels,
                          protocol) -> Iterator[Finding]:
        imported_kernels = {
            alias.asname or alias.name
            for node in ast.walk(hook)
            if isinstance(node, ast.ImportFrom) and node.module
            and node.module.endswith("_vectorized")
            for alias in node.names}
        for ret in ast.walk(hook):
            if not isinstance(ret, ast.Return) or ret.value is None:
                continue
            value = ret.value
            if isinstance(value, ast.Constant) and value.value is None:
                continue  # the documented no-numpy fallback
            name = None
            if isinstance(value, ast.Name):
                name = value.id
            elif (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)):
                name = value.func.id
            if name is None:
                yield self.finding(
                    sf, ret,
                    f"{cls.name}.vectorized_ops: unanalyzable return — "
                    f"return a kernel class imported from "
                    f"semirings/_vectorized.py (or None)")
                continue
            if name not in imported_kernels:
                yield self.finding(
                    sf, ret,
                    f"{cls.name}.vectorized_ops returns {name}, which "
                    f"is not imported from semirings/_vectorized.py — "
                    f"kernels must live beside their exact fallbacks")
                continue
            if kernels and name not in kernels:
                yield self.finding(
                    sf, ret,
                    f"{cls.name}.vectorized_ops returns {name}, but "
                    f"semirings/_vectorized.py defines no such kernel")
                continue
            if kernels:
                missing = sorted(protocol - kernels[name])
                if missing:
                    yield self.finding(
                        sf, ret,
                        f"{cls.name}.vectorized_ops kernel {name} is "
                        f"missing VectorizedOps methods: "
                        f"{', '.join(missing)} — the columnar path "
                        f"would diverge from the exact fallback")


@rule
class DeterminismRule(Rule):
    """RL004: flag constructs whose value varies across processes.

    ``id()`` is a per-process address; ``hash()`` is salted per process
    (except inside ``__hash__`` itself or the ``self._hash = hash(...)``
    memo idiom); ``repr``/``str`` of a set literal leaks iteration
    order; and set iteration inside shard/digest routines routes work
    nondeterministically.  Anything feeding canonical keys, digests or
    snapshots must avoid these (or carry a pragma with a justification
    that the value never leaves the process).
    """

    id = "RL004"
    title = "determinism hazards"

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.files:
            yield from self._check_file(sf)

    @staticmethod
    def _is_setish(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        parents = _parents(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call) and isinstance(node.func,
                                                         ast.Name):
                if node.func.id == "id" and len(node.args) == 1:
                    yield self.finding(
                        sf, node,
                        "id() is a per-process address — it must never "
                        "reach a digest, canonical key, or snapshot "
                        "(pragma with a justification if the value "
                        "stays in-process)")
                elif (node.func.id == "hash" and len(node.args) == 1
                        and not self._hash_allowed(node, parents)):
                    yield self.finding(
                        sf, node,
                        "hash() is salted per process — derive "
                        "persisted or cross-process keys from "
                        "canonical structure instead")
                elif (node.func.id in ("repr", "str") and node.args
                        and self._is_setish(node.args[0])):
                    yield self.finding(
                        sf, node,
                        f"{node.func.id}() of a set leaks arbitrary "
                        f"iteration order — sort before rendering")
            elif isinstance(node, ast.For) and self._is_setish(node.iter):
                scope = self._enclosing_function(node, parents)
                if scope is not None and any(
                        marker in scope.name
                        for marker in ("shard", "digest")):
                    yield self.finding(
                        sf, node,
                        f"set iteration inside {scope.name}() feeds "
                        f"routing/digest logic in arbitrary order — "
                        f"iterate sorted(...) instead")

    @staticmethod
    def _enclosing_function(node: ast.AST, parents
                            ) -> ast.FunctionDef | None:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.FunctionDef):
                return current
            current = parents.get(current)
        return None

    def _hash_allowed(self, node: ast.Call, parents) -> bool:
        current: ast.AST | None = node
        while current is not None:
            parent = parents.get(current)
            if isinstance(parent, ast.FunctionDef) \
                    and parent.name == "__hash__":
                return True
            if isinstance(parent, ast.Assign) and any(
                    (isinstance(t, ast.Attribute) and t.attr == "_hash")
                    or (isinstance(t, ast.Name) and t.id == "_hash")
                    for t in parent.targets):
                return True
            if (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Attribute)
                    and parent.func.attr == "__setattr__"
                    and len(parent.args) >= 2
                    and _const_str(parent.args[1]) == "_hash"):
                return True
            current = parent
        return False


@rule
class PickleBoundaryRule(Rule):
    """RL005: pool-crossing types restore through allowlisted callables.

    Every ``__reduce__`` must return a tuple whose restore callable the
    linter can see: a same-file class (the restricted unpickler admits
    any ``repro`` class) or a module-level function present in the
    snapshot unpickler's ``_ALLOWED_FUNCTIONS`` allowlist.  Classes
    shipping a ``_from_canonical`` fast restore must also define
    ``__reduce__`` (otherwise the pool boundary never uses it), and
    every allowlisted function name must actually exist.
    """

    id = "RL005"
    title = "pickle-boundary safety"

    def check(self, project: Project) -> Iterator[Finding]:
        snapshot_sf = project.file("repro.service.snapshot")
        allowlist, anchor = self._allowlist(snapshot_sf)
        module_functions: set[str] = set()
        for sf in project.files:
            module_functions.update(
                node.name for node in sf.tree.body
                if isinstance(node, ast.FunctionDef))
            yield from self._check_file(sf, allowlist)
        if allowlist is not None and snapshot_sf is not None:
            for name in sorted(allowlist - module_functions):
                yield self.finding(
                    snapshot_sf, anchor,
                    f"allowlisted restore function {name!r} does not "
                    f"exist as a module-level function anywhere under "
                    f"analysis")

    @staticmethod
    def _allowlist(sf: SourceFile | None
                   ) -> tuple[frozenset[str] | None, int]:
        if sf is None:
            return None, 1
        for node in ast.walk(sf.tree):
            if not (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name)
                            and t.id == "_ALLOWED_FUNCTIONS"
                            for t in node.targets)):
                continue
            value = node.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "frozenset" and value.args
                    and isinstance(value.args[0], (ast.Set, ast.Tuple,
                                                   ast.List))):
                names = frozenset(
                    element.value for element in value.args[0].elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str))
                return names, node.lineno
        return None, 1

    def _check_file(self, sf: SourceFile,
                    allowlist: frozenset[str] | None
                    ) -> Iterator[Finding]:
        local_functions = {node.name for node in sf.tree.body
                           if isinstance(node, ast.FunctionDef)}
        local_classes = {node.name for node in sf.tree.body
                         if isinstance(node, ast.ClassDef)}
        for cls in [node for node in ast.walk(sf.tree)
                    if isinstance(node, ast.ClassDef)]:
            reduce_def = next(
                (item for item in cls.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "__reduce__"), None)
            has_fast_restore = any(
                isinstance(item, ast.FunctionDef)
                and item.name == "_from_canonical" for item in cls.body)
            if has_fast_restore and reduce_def is None:
                yield self.finding(
                    sf, cls,
                    f"{cls.name} defines _from_canonical but no "
                    f"__reduce__ — the pool boundary and snapshots "
                    f"will never use the fast restore path")
            if reduce_def is None:
                continue
            for ret in ast.walk(reduce_def):
                if not isinstance(ret, ast.Return) or ret.value is None:
                    continue
                yield from self._check_return(
                    sf, cls, ret, local_functions, local_classes,
                    allowlist)

    def _check_return(self, sf: SourceFile, cls: ast.ClassDef,
                      ret: ast.Return, local_functions, local_classes,
                      allowlist) -> Iterator[Finding]:
        value = ret.value
        if not (isinstance(value, ast.Tuple) and value.elts):
            yield self.finding(
                sf, ret,
                f"{cls.name}.__reduce__ must return a literal tuple "
                f"(restore_callable, args) the linter can check "
                f"against the snapshot unpickler allowlist")
            return
        head = value.elts[0]
        if not isinstance(head, ast.Name):
            yield self.finding(
                sf, ret,
                f"{cls.name}.__reduce__: unanalyzable restore callable "
                f"— use a module-level function or class name")
            return
        if head.id in local_classes or head.id == cls.name:
            return  # class-based restore: the unpickler admits classes
        if head.id in local_functions:
            if allowlist is not None and head.id not in allowlist:
                yield self.finding(
                    sf, ret,
                    f"{cls.name}.__reduce__ restores through "
                    f"{head.id}(), which is missing from the snapshot "
                    f"unpickler's _ALLOWED_FUNCTIONS allowlist — "
                    f"warm-start restores of this type will be "
                    f"rejected")
            return
        yield self.finding(
            sf, ret,
            f"{cls.name}.__reduce__ restores through {head.id}, which "
            f"is neither a module-level function nor a class of this "
            f"module — the linter cannot verify the unpickler admits "
            f"it")
