"""The interprocedural dataflow rules (RL101–RL104).

Built on the call graph (:mod:`repro.lint.callgraph`), per-function
CFGs (:mod:`repro.lint.cfg`) and the forward taint engine
(:mod:`repro.lint.dataflow`):

* **RL101** — async-blocking: a call transitively reachable from an
  ``async def`` that may block the event loop (LP solves, homomorphism
  search, pickle/snapshot I/O, synchronous socket/file/lock/queue ops)
  unless routed through an executor.  Passing a *reference* to
  ``run_in_executor`` creates no call edge, so the executor pattern is
  clean by construction.
* **RL102** — fork-safety: locks, sockets, file handles and numpy
  ``Generator`` objects created before a ``Process(target=...)`` fork
  and referenced inside worker-side code paths (the checked
  generalization of the inherited-socket FIN hang fixed by
  ``_close_inherited_sockets``).
* **RL103** — shared-state ownership: mutations of attributes carrying
  a ``# repro-lint: owner=`` annotation outside their declared owner
  methods, with CFG-based alias tracking (``home = self._home[i];
  home.pop()`` is still a mutation of ``self._home``).
* **RL104** — cache-key completeness: for every ``_LRU`` memo write
  and every ``CACHE_LAYERS`` layer, taint-check that each parameter
  influencing the cached value appears in the key expression — the
  rule that keeps a shared cache tier sound (two calls differing only
  in a dropped parameter would alias one entry).

All four are pure AST analyses; the shared call graph is built once
per project and memoized.  An unresolved receiver or import produces
*no* edge and therefore no finding — the rules err toward silence,
never toward fabricated violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .callgraph import CallGraph, FunctionInfo, get_call_graph
from .cfg import build_cfg
from .dataflow import (MUTATOR_METHODS, REMOVAL_METHODS, TaintAnalysis,
                       run_forward)
from .model import Finding, Project, Rule, SourceFile, rule
from .rules import CacheLayerRule

__all__ = ["AsyncBlockingRule", "CacheKeyRule", "ForkSafetyRule",
           "OwnershipRule"]

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _short(qualname: str) -> str:
    """``module:Class.method`` → ``Class.method`` for messages."""
    return qualname.split(":", 1)[-1]


def _walk_scope(root: ast.AST):
    """Walk a subtree without descending into nested function or
    lambda scopes (their bodies do not execute here)."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node is not root and isinstance(node, (*_FUNCTION_DEFS,
                                                  ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _stmt_exprs(stmt: ast.stmt):
    """The expressions evaluated *at* a CFG statement.

    Compound statements appear in a block as their whole AST node while
    their bodies live in other blocks; yielding only the header
    expressions here keeps per-statement scans from double-visiting
    body code.
    """
    if isinstance(stmt, (*_FUNCTION_DEFS, ast.ClassDef, ast.Try)):
        return
    if isinstance(stmt, ast.ExceptHandler):
        return
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
    else:
        yield stmt


def _container_root(expr: ast.AST) -> ast.AST:
    """Strip subscripts: ``self._home[i]`` → the ``self._home`` node."""
    node = expr
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


# ---------------------------------------------------------------------------
# RL101 — async-blocking
# ---------------------------------------------------------------------------

#: External callables that may block the event loop, with the reason
#: reported to the user.  Method entries use the receiver's resolved
#: type (``threading.Condition.wait``), so an untyped receiver never
#: produces a finding.
_BLOCKING: dict[str, str] = {
    "open": "synchronous file I/O",
    "input": "blocking console input",
    "time.sleep": "a synchronous sleep",
    "pickle.dump": "pickle snapshot I/O",
    "pickle.load": "pickle snapshot I/O",
    "pickle.dumps": "pickle serialization (CPU-bound)",
    "pickle.loads": "pickle deserialization (CPU-bound)",
    "scipy.optimize.linprog": "an LP solve",
    "subprocess.run": "a subprocess wait",
    "subprocess.call": "a subprocess wait",
    "subprocess.check_call": "a subprocess wait",
    "subprocess.check_output": "a subprocess wait",
    "os.system": "a subprocess wait",
    "shutil.copyfile": "synchronous file I/O",
    "socket.create_connection": "a blocking socket connect",
    "socket.getaddrinfo": "a blocking DNS lookup",
    "socket.gethostbyname": "a blocking DNS lookup",
    "urllib.request.urlopen": "a blocking HTTP request",
    "threading.Condition.wait": "waiting on a threading.Condition",
    "threading.Condition.wait_for": "waiting on a threading.Condition",
    "threading.Event.wait": "waiting on a threading.Event",
    "threading.Lock.acquire": "a lock acquire",
    "threading.RLock.acquire": "a lock acquire",
    "threading.Semaphore.acquire": "a semaphore acquire",
    "threading.BoundedSemaphore.acquire": "a semaphore acquire",
    "threading.Thread.join": "a thread join",
    "queue.Queue.get": "a blocking queue get",
    "queue.Queue.put": "a blocking queue put",
    "queue.SimpleQueue.get": "a blocking queue get",
    "multiprocessing.Queue.get": "a blocking queue get",
    "multiprocessing.Queue.put": "a blocking queue put",
    "multiprocessing.SimpleQueue.get": "a blocking queue get",
    "socket.socket.recv": "blocking socket I/O",
    "socket.socket.recv_into": "blocking socket I/O",
    "socket.socket.send": "blocking socket I/O",
    "socket.socket.sendall": "blocking socket I/O",
    "socket.socket.accept": "a blocking socket accept",
    "socket.socket.connect": "a blocking socket connect",
    "socket.socket.makefile": "blocking socket I/O",
}

#: Project functions that are CPU-bound enough to count as blocking on
#: an event loop even though they never hit a syscall: the exhaustive
#: homomorphism search.
_HOM_SEARCH_NAMES = frozenset({"find_homomorphism",
                               "homomorphism_mappings",
                               "enumerate_homomorphisms"})
_HOM_SEARCH_PREFIX = "repro.homomorphisms"


@rule
class AsyncBlockingRule(Rule):
    """RL101: no may-block call on an event-loop code path.

    A fixpoint over the call graph marks every *sync* project function
    from which a blocking external call is reachable (async callees do
    not propagate — awaiting them suspends rather than blocks).  Any
    direct call from an ``async def`` to a blocking external or to a
    marked sync function is flagged, with the offending chain spelled
    out.  Blocking work handed to ``run_in_executor`` as a function
    reference is invisible to call-edge collection and thus clean.
    """

    id = "RL101"
    title = "async-blocking"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = get_call_graph(project)
        chains = self._blocking_chains(graph)
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if not info.is_async:
                continue
            seen: set[tuple[int, str]] = set()
            for site in graph.calls.get(qualname, ()):
                for target in site.targets:
                    message = self._describe(graph, chains, target)
                    if message is None:
                        continue
                    key = (site.node.lineno, target)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        info.sf, site.node,
                        f"async def {info.name} {message} — the event "
                        f"loop stalls for its duration; route it "
                        f"through loop.run_in_executor (pass the "
                        f"callable, do not call it)")

    def _describe(self, graph: CallGraph, chains: dict[str, tuple[str, ...]],
                  target: str) -> str | None:
        reason = _BLOCKING.get(target)
        if reason is not None:
            return f"directly performs {reason} via {target}()"
        info = graph.functions.get(target)
        if info is None or info.is_async:
            return None
        chain = chains.get(target)
        if chain is None:
            return None
        return (f"calls {_short(target)}(), which may block "
                f"({' -> '.join(chain)})")

    def _blocking_chains(self, graph: CallGraph
                         ) -> dict[str, tuple[str, ...]]:
        """``sync function → chain of names ending at the blocking
        call`` for every may-block project function."""
        chains: dict[str, tuple[str, ...]] = {}
        callers: dict[str, list[str]] = {}
        worklist: list[str] = []
        for qualname, sites in graph.calls.items():
            if graph.functions[qualname].is_async:
                continue
            for site in sites:
                for target in site.targets:
                    if target in graph.functions:
                        callers.setdefault(target, []).append(qualname)
                    elif qualname not in chains and target in _BLOCKING:
                        chains[qualname] = (_short(qualname),
                                            f"{target}()")
                        worklist.append(qualname)
        for qualname, info in graph.functions.items():
            if (qualname not in chains and not info.is_async
                    and info.module.startswith(_HOM_SEARCH_PREFIX)
                    and info.name in _HOM_SEARCH_NAMES):
                chains[qualname] = (_short(qualname),
                                    "exhaustive hom search")
                worklist.append(qualname)
        while worklist:
            current = worklist.pop()
            for caller in callers.get(current, ()):
                if caller in chains or graph.functions[caller].is_async:
                    continue
                chains[caller] = (_short(caller),) + chains[current]
                worklist.append(caller)
        return chains


# ---------------------------------------------------------------------------
# RL102 — fork-safety
# ---------------------------------------------------------------------------

#: Constructors whose products must not cross a fork boundary.
_RISKY_CTORS: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "condition variable",
    "threading.Event": "event",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "socket.create_server": "listening socket",
    "open": "open file handle",
    "io.open": "open file handle",
    "numpy.random.default_rng": "numpy random Generator",
    "numpy.random.Generator": "numpy random Generator",
}


@dataclass
class _RiskyAttr:
    kind: str
    creator: str  # qualname of the creating method
    line: int


@rule
class ForkSafetyRule(Rule):
    """RL102: pre-fork resources must not be touched post-fork.

    Finds every ``Process(target=...)`` spawn, resolves the target
    (module function or ``self._method``) and computes the worker-side
    function set as everything call-graph-reachable from it.  A
    violation is a worker-side reference to a lock/socket/file/numpy
    Generator that was created *outside* the worker set — on a module
    global or a ``self`` attribute — or such an object passed through
    the spawn's ``args=``.  Resources created inside worker-side code
    (post-fork) are exempt.
    """

    id = "RL102"
    title = "fork-safety"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = get_call_graph(project)
        fork_sites = self._fork_sites(graph)
        if not fork_sites:
            return
        worker = graph.reachable(
            target for _, _, targets in fork_sites for target in targets)
        risky_attrs = self._risky_attrs(graph)
        risky_globals = self._risky_globals(graph)
        for qualname in sorted(worker):
            yield from self._check_worker(graph, graph.functions[qualname],
                                          worker, risky_attrs,
                                          risky_globals)
        for info, call, _targets in fork_sites:
            yield from self._check_args(graph, info, call, risky_attrs,
                                        risky_globals)

    # -- collection ----------------------------------------------------

    def _fork_sites(self, graph: CallGraph
                    ) -> list[tuple[FunctionInfo, ast.Call, tuple[str, ...]]]:
        """Every ``...Process(target=..., ...)`` call, with the spawn
        target resolved to project functions."""
        sites = []
        for qualname, call_sites in graph.calls.items():
            info = graph.functions[qualname]
            for site in call_sites:
                call = site.node
                func = call.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None)
                if name != "Process":
                    continue
                target_expr = next((kw.value for kw in call.keywords
                                    if kw.arg == "target"), None)
                if target_expr is None:
                    continue
                targets = self._spawn_targets(graph, info, target_expr)
                sites.append((info, call, targets))
        return sites

    @staticmethod
    def _spawn_targets(graph: CallGraph, info: FunctionInfo,
                       expr: ast.AST) -> tuple[str, ...]:
        if isinstance(expr, ast.Name):
            resolved = graph.resolve_value(info.sf, expr)
            if resolved is not None and resolved in graph.functions:
                return (resolved,)
            local = f"{info.module}:{expr.id}"
            if local in graph.functions:
                return (local,)
            return ()
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and info.cls is not None:
            return graph.lookup_method(info.cls, expr.attr)
        return ()

    def _risky_attrs(self, graph: CallGraph
                     ) -> dict[tuple[str, str], _RiskyAttr]:
        """``(class id, attr) → risky resource`` from every
        ``self.X = <risky ctor>()`` assignment."""
        found: dict[tuple[str, str], _RiskyAttr] = {}
        for class_id, cls in graph.classes.items():
            for method_id in cls.methods.values():
                method = graph.functions[method_id]
                for node in _walk_scope(method.node):
                    target = value = None
                    if isinstance(node, ast.Assign) \
                            and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and isinstance(value, ast.Call)):
                        continue
                    kind = self._ctor_kind(graph, method.sf, value)
                    if kind is not None:
                        found.setdefault(
                            (class_id, target.attr),
                            _RiskyAttr(kind=kind, creator=method_id,
                                       line=node.lineno))
        return found

    def _risky_globals(self, graph: CallGraph
                       ) -> dict[tuple[str, str], tuple[str, int]]:
        """``(module, name) → (kind, line)`` for module-level risky
        objects (created at import time, hence always pre-fork)."""
        found: dict[tuple[str, str], tuple[str, int]] = {}
        for sf in graph.project.files:
            module = graph._module_of(sf)
            for node in sf.tree.body:
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    continue
                kind = self._ctor_kind(graph, sf, node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        found[(module, target.id)] = (kind, node.lineno)
        return found

    @staticmethod
    def _ctor_kind(graph: CallGraph, sf: SourceFile,
                   call: ast.Call) -> str | None:
        ident = graph.resolve_value(sf, call.func)
        return _RISKY_CTORS.get(ident) if ident is not None else None

    # -- checking ------------------------------------------------------

    def _check_worker(self, graph: CallGraph, info: FunctionInfo,
                      worker: set[str],
                      risky_attrs: dict[tuple[str, str], _RiskyAttr],
                      risky_globals) -> Iterator[Finding]:
        seen: set[tuple[int, str]] = set()
        imports = graph._imports.get(info.module, {})
        for node in _walk_scope(info.node):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self" and info.cls is not None:
                for ancestor in graph.mro(info.cls):
                    risky = risky_attrs.get((ancestor, node.attr))
                    if risky is None or risky.creator in worker:
                        continue
                    key = (node.lineno, node.attr)
                    if key in seen:
                        break
                    seen.add(key)
                    yield self.finding(
                        info.sf, node,
                        f"worker-side {_short(info.qualname)} uses "
                        f"self.{node.attr}, a {risky.kind} created "
                        f"pre-fork in {_short(risky.creator)} "
                        f"(line {risky.line}) — state inherited across "
                        f"fork() deadlocks or leaks descriptors; "
                        f"create it post-fork or close it in the "
                        f"worker (as _close_inherited_sockets does)")
                    break
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                origin = (info.module, node.id)
                entry = imports.get(node.id)
                if entry is not None and entry[1] is not None:
                    origin = (entry[0], entry[1])
                risky_global = risky_globals.get(origin)
                if risky_global is None:
                    continue
                kind, line = risky_global
                key = (node.lineno, node.id)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    info.sf, node,
                    f"worker-side {_short(info.qualname)} uses module "
                    f"global {node.id!r}, a {kind} created at import "
                    f"time ({origin[0]}:{line}) and inherited across "
                    f"fork() — create it inside the worker instead")

    def _check_args(self, graph: CallGraph, info: FunctionInfo,
                    call: ast.Call, risky_attrs,
                    risky_globals) -> Iterator[Finding]:
        args_expr = next((kw.value for kw in call.keywords
                          if kw.arg == "args"), None)
        if args_expr is None:
            return
        imports = graph._imports.get(info.module, {})
        for node in _walk_scope(args_expr):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self" and info.cls is not None:
                for ancestor in graph.mro(info.cls):
                    risky = risky_attrs.get((ancestor, node.attr))
                    if risky is not None:
                        yield self.finding(
                            info.sf, call,
                            f"fork target receives pre-fork "
                            f"{risky.kind} self.{node.attr} via args= "
                            f"— it is captured before fork(); pass "
                            f"fork-safe handles and construct the "
                            f"resource in the worker")
                        break
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                origin = (info.module, node.id)
                entry = imports.get(node.id)
                if entry is not None and entry[1] is not None:
                    origin = (entry[0], entry[1])
                risky_global = risky_globals.get(origin)
                if risky_global is not None:
                    yield self.finding(
                        info.sf, call,
                        f"fork target receives module-level "
                        f"{risky_global[0]} {node.id!r} via args= — "
                        f"construct the resource in the worker instead")


# ---------------------------------------------------------------------------
# RL103 — shared-state ownership
# ---------------------------------------------------------------------------

_MUTATORS = MUTATOR_METHODS | REMOVAL_METHODS


@dataclass
class _OwnedDecl:
    """One ``# repro-lint: owner=`` annotated attribute declaration."""

    class_id: str
    class_name: str
    attr: str
    owners: tuple[str, ...]
    method: str  # name of the declaring method (always allowed)
    sf: SourceFile
    line: int


class _AliasTaint(TaintAnalysis):
    """Taint whose sources are loads of owned ``self`` attributes —
    turning the dataflow engine into an alias tracker for RL103.

    Aliasing only survives *access paths*: a bare load
    (``home = self._home``), a subscript (``home = self._home[i]`` —
    the supervisor's per-shard deque idiom), or a ternary/``or`` of
    those.  A call result is a new object (``dict(self._counts)`` is a
    copy, not the counter table), loop variables are elements rather
    than the container, and mutator arguments do not alias their
    receiver — each of these would otherwise flag reads as mutations.
    """

    def __init__(self, owned: frozenset[str]):
        super().__init__({})
        self._owned = owned

    def extra_sources(self, expr: ast.expr) -> frozenset[str]:
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self" and expr.attr in self._owned:
            return frozenset((expr.attr,))
        return frozenset()

    def assign_taint(self, expr: ast.expr, state: dict
                     ) -> frozenset[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            return self.extra_sources(expr)
        if isinstance(expr, ast.Subscript):
            return self.assign_taint(expr.value, state)
        if isinstance(expr, ast.IfExp):
            return (self.assign_taint(expr.body, state)
                    | self.assign_taint(expr.orelse, state))
        if isinstance(expr, ast.BoolOp):
            taint: frozenset[str] = frozenset()
            for value in expr.values:
                taint |= self.assign_taint(value, state)
            return taint
        return frozenset()

    def element_taint(self, expr: ast.expr, state: dict
                      ) -> frozenset[str]:
        return frozenset()

    def _mutator_flow(self, expr: ast.expr, state: dict) -> None:
        return  # ``a.append(b)`` does not make ``a`` alias ``b``


@rule
class OwnershipRule(Rule):
    """RL103: annotated shared state mutates only inside its owners.

    An attribute declared with ``# repro-lint: owner=a,b`` may be
    mutated only by the declaring method and the methods named in the
    annotation.  Mutations are attribute rebinds, subscript stores,
    ``del``, augmented assignment, and in-place mutator calls
    (``append``/``pop``/``update``/``put``/...), including through
    local aliases recovered by CFG-based taint.  ``self``-rooted
    mutations match declarations of the same class hierarchy only;
    mutations through other objects match the attribute name anywhere
    (catching ``pool.metrics._counts[...] = ...`` from outside).
    """

    id = "RL103"
    title = "shared-state ownership"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = get_call_graph(project)
        decls = self._declarations(graph)
        if not decls:
            return
        by_attr: dict[str, list[_OwnedDecl]] = {}
        for decl in decls:
            by_attr.setdefault(decl.attr, []).append(decl)
        for qualname in sorted(graph.functions):
            yield from self._check_function(graph,
                                            graph.functions[qualname],
                                            by_attr)

    def _declarations(self, graph: CallGraph) -> list[_OwnedDecl]:
        decls: list[_OwnedDecl] = []
        for sf in graph.project.files:
            if not sf.owners:
                continue
            module = graph._module_of(sf)
            for cls in sf.tree.body:
                if not isinstance(cls, ast.ClassDef):
                    continue
                for method in cls.body:
                    if not isinstance(method, _FUNCTION_DEFS):
                        continue
                    for node in _walk_scope(method):
                        target = None
                        if isinstance(node, ast.Assign) \
                                and len(node.targets) == 1:
                            target = node.targets[0]
                        elif isinstance(node, ast.AnnAssign):
                            target = node.target
                        if not (target is not None
                                and isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and node.lineno in sf.owners):
                            continue
                        decls.append(_OwnedDecl(
                            class_id=f"{module}:{cls.name}",
                            class_name=cls.name, attr=target.attr,
                            owners=sf.owners[node.lineno],
                            method=method.name, sf=sf,
                            line=node.lineno))
        return decls

    def _check_function(self, graph: CallGraph, info: FunctionInfo,
                        by_attr: dict[str, list[_OwnedDecl]]
                        ) -> Iterator[Finding]:
        if not any(isinstance(node, ast.Attribute)
                   and node.attr in by_attr
                   for node in _walk_scope(info.node)):
            return  # never touches an annotated attribute name
        mro = graph.mro(info.cls) if info.cls is not None else []
        self_decls = {
            decl.attr: decl
            for attr, candidates in by_attr.items()
            for decl in candidates if decl.class_id in mro}
        cfg = build_cfg(info.node)
        analysis = _AliasTaint(frozenset(self_decls))
        states = run_forward(cfg, analysis)
        seen: set[tuple[int, str, str]] = set()
        for block in cfg.blocks:
            state = analysis.copy(states[block])
            for stmt in block.statements:
                for attr, is_self, anchor in self._mutations(stmt, state):
                    for decl in self._matching(by_attr, attr, is_self,
                                               self_decls):
                        if self._allowed(graph, info, decl):
                            continue
                        key = (anchor.lineno, attr, decl.class_id)
                        if key in seen:
                            continue
                        seen.add(key)
                        owners = ", ".join(decl.owners)
                        yield self.finding(
                            info.sf, anchor,
                            f"mutation of {decl.class_name}.{decl.attr} "
                            f"outside its owner methods ({owners}) — "
                            f"ownership declared at {decl.sf.display}:"
                            f"{decl.line}; add {info.name!r} to the "
                            f"owner= annotation or route the mutation "
                            f"through an owner")
                analysis.transfer(stmt, state)

    @staticmethod
    def _matching(by_attr, attr: str, is_self: bool,
                  self_decls: dict[str, _OwnedDecl]) -> list[_OwnedDecl]:
        if is_self:
            decl = self_decls.get(attr)
            return [decl] if decl is not None else []
        return by_attr.get(attr, [])

    @staticmethod
    def _allowed(graph: CallGraph, info: FunctionInfo,
                 decl: _OwnedDecl) -> bool:
        if info.name == decl.method:
            return True  # the declaring method re-initializes freely
        if info.name in decl.owners:
            return True
        if info.cls is not None:
            cls_name = graph.classes[info.cls].name
            if f"{cls_name}.{info.name}" in decl.owners:
                return True
        return f"{decl.class_name}.{info.name}" in decl.owners

    def _mutations(self, stmt: ast.stmt, state: dict
                   ):
        """``(attr, receiver_is_self, anchor node)`` for every mutation
        this statement performs on an attribute-rooted container."""
        results: list[tuple[str, bool, ast.AST]] = []
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            root = _container_root(target)
            if isinstance(root, ast.Attribute):
                is_self = (isinstance(root.value, ast.Name)
                           and root.value.id == "self")
                results.append((root.attr, is_self, target))
            elif isinstance(root, ast.Name) \
                    and not isinstance(target, ast.Name):
                for attr in state.get(root.id, ()):
                    results.append((attr, True, target))
        for expr in _stmt_exprs(stmt):
            for node in _walk_scope(expr):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS):
                    continue
                root = _container_root(node.func.value)
                if isinstance(root, ast.Attribute):
                    is_self = (isinstance(root.value, ast.Name)
                               and root.value.id == "self")
                    results.append((root.attr, is_self, node))
                elif isinstance(root, ast.Name):
                    for attr in state.get(root.id, ()):
                        results.append((attr, True, node))
        return results


# ---------------------------------------------------------------------------
# RL104 — cache-key completeness
# ---------------------------------------------------------------------------

_MEMO_DECORATORS = frozenset({"lru_cache", "cache", "cached_property"})


@rule
class CacheKeyRule(Rule):
    """RL104: every memo key covers every value-influencing parameter.

    For each class attribute created as ``self.X = _LRU(...)`` — plus
    every attribute declared in the ``CACHE_LAYERS`` registry when the
    engine is under analysis — the rule finds the memo *write* sites
    (``self.X.put(key, value)`` and ``self.X[key] = value``), runs the
    forward taint analysis seeded with the enclosing method's
    parameters, and requires the value's parameter taint to be a
    subset of the key's.  A parameter that influences the cached value
    but is missing from the key means two calls differing only in that
    parameter alias a single cache entry — exactly the silent-
    divergence failure a shared cache tier must exclude.  Functions
    memoized with ``functools.lru_cache`` are skipped (their keys are
    complete by construction), and each declared layer must have at
    least one visible write site.
    """

    id = "RL104"
    title = "cache-key completeness"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = get_call_graph(project)
        layers_sf = project.file("repro.api.layers")
        layer_by_attr: dict[str, dict] = {}
        if layers_sf is not None:
            layers, _problems = CacheLayerRule()._parse_registry(layers_sf)
            layer_by_attr = {layer["attr"]: layer for layer in layers}
        written: set[str] = set()
        for class_id in sorted(graph.classes):
            cls = graph.classes[class_id]
            memo_attrs = self._memo_attrs(graph, cls)
            is_engine = (cls.name == "ContainmentEngine"
                         and cls.module == "repro.api.engine")
            store_attrs = set(memo_attrs)
            if is_engine:
                store_attrs |= set(layer_by_attr)
            if not store_attrs:
                continue
            for method_name in sorted(cls.methods):
                method = graph.functions[cls.methods[method_name]]
                if self._is_memoized(method.node):
                    continue
                yield from self._check_method(
                    cls.sf, method, store_attrs,
                    layer_by_attr if is_engine else {}, written)
        if layers_sf is not None \
                and project.file("repro.api.engine") is not None:
            for attr, layer in sorted(layer_by_attr.items()):
                if attr not in written:
                    yield self.finding(
                        layers_sf, layer.get("line", 1),
                        f"layer {layer['name']!r} declares attr "
                        f"{attr!r} but no memo write (.put or "
                        f"subscript store) exists in ContainmentEngine "
                        f"— the layer can never fill")

    # -- collection ----------------------------------------------------

    @staticmethod
    def _memo_attrs(graph: CallGraph, cls) -> set[str]:
        attrs: set[str] = set()
        for method_id in cls.methods.values():
            method = graph.functions[method_id]
            for node in _walk_scope(method.node):
                target = value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(value, ast.Call)):
                    func = value.func
                    name = (func.id if isinstance(func, ast.Name)
                            else func.attr
                            if isinstance(func, ast.Attribute) else None)
                    if name == "_LRU":
                        attrs.add(target.attr)
        return attrs

    @staticmethod
    def _is_memoized(node) -> bool:
        for decorator in node.decorator_list:
            base = decorator
            if isinstance(base, ast.Call):
                base = base.func
            name = (base.id if isinstance(base, ast.Name)
                    else base.attr if isinstance(base, ast.Attribute)
                    else None)
            if name in _MEMO_DECORATORS:
                return True
        return False

    # -- checking ------------------------------------------------------

    def _check_method(self, sf: SourceFile, method: FunctionInfo,
                      store_attrs: set[str], layer_by_attr: dict,
                      written: set[str]) -> Iterator[Finding]:
        sites = self._write_sites(method.node, store_attrs)
        if not sites:
            return
        for attr, _key, _value, _anchor in sites:
            written.add(attr)
        args = method.node.args
        params = [arg.arg
                  for arg in (*args.posonlyargs, *args.args,
                              *args.kwonlyargs)
                  if arg.arg not in ("self", "cls")]
        if not params:
            return
        seeds = {param: frozenset((param,)) for param in params}
        cfg = build_cfg(method.node)
        analysis = TaintAnalysis(seeds)
        states = run_forward(cfg, analysis)
        for block in cfg.blocks:
            state = analysis.copy(states[block])
            for stmt in block.statements:
                # Each statement appears in exactly one block, so
                # scanning its own expressions here visits every
                # write site once, with the correct pre-state.
                for expr in _stmt_exprs(stmt):
                    for site in self._write_sites(expr, store_attrs):
                        yield from self._check_site(sf, method, site,
                                                    state, analysis,
                                                    layer_by_attr)
                analysis.transfer(stmt, state)

    @staticmethod
    def _write_sites(func, store_attrs: set[str]):
        """``(attr, key expr, value expr, anchor)`` per memo write."""
        sites = []
        for node in _walk_scope(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "put" \
                    and len(node.args) >= 2:
                store = node.func.value
                if (isinstance(store, ast.Attribute)
                        and isinstance(store.value, ast.Name)
                        and store.value.id == "self"
                        and store.attr in store_attrs):
                    sites.append((store.attr, node.args[0],
                                  node.args[1], node))
            elif isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Subscript):
                subscript = node.targets[0]
                store = subscript.value
                if (isinstance(store, ast.Attribute)
                        and isinstance(store.value, ast.Name)
                        and store.value.id == "self"
                        and store.attr in store_attrs):
                    sites.append((store.attr, subscript.slice,
                                  node.value, subscript))
        return sites

    def _check_site(self, sf: SourceFile, method: FunctionInfo, site,
                    state: dict, analysis: TaintAnalysis,
                    layer_by_attr: dict) -> Iterator[Finding]:
        attr, key_expr, value_expr, anchor = site
        key_taint = analysis.expr_taint(key_expr, state)
        value_taint = analysis.expr_taint(value_expr, state)
        missing = sorted(value_taint - key_taint)
        if not missing:
            return
        layer = layer_by_attr.get(attr)
        label = (f"self.{attr} (layer {layer['name']!r})"
                 if layer is not None else f"self.{attr}")
        noun = "parameter" if len(missing) == 1 else "parameters"
        yield self.finding(
            sf, anchor,
            f"memo write to {label} in {_short(method.qualname)} omits "
            f"{noun} {', '.join(repr(p) for p in missing)} from the "
            f"key: the cached value depends on "
            f"{'it' if len(missing) == 1 else 'them'}, so two calls "
            f"differing only there would alias one cache entry — add "
            f"{'it' if len(missing) == 1 else 'them'} to the key or "
            f"pragma with a soundness justification")
