"""Collection and orchestration: turn paths into a lint report.

``run_lint()`` is the library entry point; ``python -m repro lint``
(see :mod:`repro.cli`) is a thin argument shim over it.  With no paths
the installed ``repro`` package itself is linted — the self-check mode
CI gates on.

Rule filtering accepts exact ids plus two wildcard forms: a trailing
``*`` prefix-matches (``RL1*``), and an ``X`` matches any single
character in that position (``RL00X``, ``RL1XX``) — so the cheap
per-file rules and the heavier interprocedural rules can be gated and
profiled independently (``--select``/``--ignore``/``--stats``).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Sequence

from . import rules as _rules  # noqa: F401 - registers RL001–RL005
from . import rules_flow as _rules_flow  # noqa: F401 - registers RL101–RL104
from .model import Finding, Project, RULES, load_source_file
from .report import LintReport

__all__ = ["collect_project", "default_target", "match_rule",
           "run_lint", "select_rules"]


def default_target() -> Path:
    """The installed ``repro`` package directory (self-check mode)."""
    return Path(__file__).resolve().parent.parent


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        yield path
        return
    yield from sorted(path.rglob("*.py"))


def collect_project(paths: Sequence[Path]
                    ) -> tuple[Project, list[Finding], int]:
    """Parse every ``.py`` file under ``paths``.

    Returns the project, the parse-failure findings (``RL000``), and
    the number of files seen.  ``root`` for display purposes is the
    common parent when a single directory is linted, keeping paths
    short and stable in reports.
    """
    findings: list[Finding] = []
    files = []
    seen: set[Path] = set()
    for base in paths:
        root = base if base.is_dir() else base.parent
        for path in _iter_python_files(base):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            loaded = load_source_file(path, root=root.parent)
            if isinstance(loaded, Finding):
                findings.append(loaded)
            else:
                files.append(loaded)
    return Project(files), findings, len(seen)


def match_rule(rule_id: str, pattern: str) -> bool:
    """True when ``pattern`` covers ``rule_id``.

    Exact match, trailing-``*`` prefix (``RL1*``), or per-character
    ``X``/``x`` wildcards of equal length (``RL00X``, ``RL1XX``).
    """
    if pattern == rule_id or pattern == "all":
        return True
    if pattern.endswith("*"):
        return rule_id.startswith(pattern[:-1])
    if len(pattern) == len(rule_id):
        return all(want in ("X", "x") or want == have
                   for want, have in zip(pattern, rule_id))
    return False


def select_rules(select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None) -> dict:
    """The rule registry filtered by wildcard patterns.

    Raises ``ValueError`` for a pattern matching no registered rule —
    a silently dead ``--select RL10X`` typo would un-gate CI.
    """
    def matched(pattern: str) -> set[str]:
        hits = {rid for rid in RULES if match_rule(rid, pattern)}
        if not hits:
            raise ValueError(
                f"rule pattern {pattern!r} matches no registered rule "
                f"(known: {', '.join(sorted(RULES))})")
        return hits

    chosen = dict(RULES)
    if select is not None:
        wanted: set[str] = set()
        for pattern in select:
            wanted |= matched(pattern)
        chosen = {rid: cls for rid, cls in chosen.items()
                  if rid in wanted}
    if ignore is not None:
        for pattern in ignore:
            for rid in matched(pattern):
                chosen.pop(rid, None)
    return chosen


def run_lint(paths: Sequence[str | Path] | None = None, *,
             rule_ids: Iterable[str] | None = None,
             select: Iterable[str] | None = None,
             ignore: Iterable[str] | None = None,
             with_stats: bool = False) -> LintReport:
    """Run every registered rule (or a filtered subset) over ``paths``.

    ``paths`` defaults to the installed ``repro`` package.
    ``rule_ids`` is the exact-id legacy filter; ``select``/``ignore``
    accept wildcard patterns (see :func:`match_rule`) and compose with
    it.  ``with_stats=True`` records per-rule wall-clock timings on the
    report.  Pragmas are applied here — a finding on a line carrying
    ``# repro-lint: disable=<rule>`` (or preceded by a comment-only
    pragma line) is counted as suppressed, not reported.
    """
    targets = ([Path(p) for p in paths] if paths
               else [default_target()])
    project, findings, file_count = collect_project(targets)
    selected = select_rules(select, ignore)
    if rule_ids is not None:
        exact = {rid: RULES[rid] for rid in rule_ids}
        selected = {rid: cls for rid, cls in selected.items()
                    if rid in exact}
        for rid, cls in exact.items():
            selected.setdefault(rid, cls)
    by_display = {sf.display: sf for sf in project.files}
    suppressed = 0
    timings: list[tuple[str, float]] = []
    for rule_id in sorted(selected):
        started = time.perf_counter()
        for finding in selected[rule_id]().check(project):
            sf = by_display.get(finding.path)
            if sf is not None and sf.suppressed(finding.rule,
                                                finding.line):
                suppressed += 1
                continue
            findings.append(finding)
        if with_stats:
            timings.append((rule_id, time.perf_counter() - started))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(findings=tuple(findings), suppressed=suppressed,
                      files=file_count, timings=tuple(timings))
