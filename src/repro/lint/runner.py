"""Collection and orchestration: turn paths into a lint report.

``run_lint()`` is the library entry point; ``python -m repro lint``
(see :mod:`repro.cli`) is a thin argument shim over it.  With no paths
the installed ``repro`` package itself is linted — the self-check mode
CI gates on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from . import rules as _rules  # noqa: F401 - registers the rule classes
from .model import Finding, Project, RULES, load_source_file
from .report import LintReport

__all__ = ["collect_project", "default_target", "run_lint"]


def default_target() -> Path:
    """The installed ``repro`` package directory (self-check mode)."""
    return Path(__file__).resolve().parent.parent


def _iter_python_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        yield path
        return
    yield from sorted(path.rglob("*.py"))


def collect_project(paths: Sequence[Path]
                    ) -> tuple[Project, list[Finding], int]:
    """Parse every ``.py`` file under ``paths``.

    Returns the project, the parse-failure findings (``RL000``), and
    the number of files seen.  ``root`` for display purposes is the
    common parent when a single directory is linted, keeping paths
    short and stable in reports.
    """
    findings: list[Finding] = []
    files = []
    seen: set[Path] = set()
    for base in paths:
        root = base if base.is_dir() else base.parent
        for path in _iter_python_files(base):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            loaded = load_source_file(path, root=root.parent)
            if isinstance(loaded, Finding):
                findings.append(loaded)
            else:
                files.append(loaded)
    return Project(files), findings, len(seen)


def run_lint(paths: Sequence[str | Path] | None = None, *,
             rule_ids: Iterable[str] | None = None) -> LintReport:
    """Run every registered rule (or ``rule_ids``) over ``paths``.

    ``paths`` defaults to the installed ``repro`` package.  Pragmas are
    applied here — a finding on a line carrying
    ``# repro-lint: disable=<rule>`` (or preceded by a comment-only
    pragma line) is counted as suppressed, not reported.
    """
    targets = ([Path(p) for p in paths] if paths
               else [default_target()])
    project, findings, file_count = collect_project(targets)
    selected = (RULES if rule_ids is None
                else {rid: RULES[rid] for rid in rule_ids})
    by_display = {sf.display: sf for sf in project.files}
    suppressed = 0
    for rule_id in sorted(selected):
        for finding in selected[rule_id]().check(project):
            sf = by_display.get(finding.path)
            if sf is not None and sf.suppressed(finding.rule,
                                                finding.line):
                suppressed += 1
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(findings=tuple(findings), suppressed=suppressed,
                      files=file_count)
