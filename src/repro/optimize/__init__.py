"""Semiring-aware query optimization (the paper's motivating use case)."""

from .minimize import MinimizationResult, minimize_cq
from .normalize import normalize_cq, normalize_ucq
from .redundancy import RedundancyResult, eliminate_redundant_members

__all__ = [
    "MinimizationResult", "RedundancyResult",
    "eliminate_redundant_members", "minimize_cq",
    "normalize_cq", "normalize_ucq",
]
