"""Semiring-aware CQ minimization.

The paper's motivation (Sec. 1): query optimizers rewrite queries into
equivalent smaller ones, and *equivalence depends on the annotation
semiring*.  Under set semantics a CQ can be minimized to its core by
deleting redundant atoms; under bag or provenance semantics most such
deletions change the result.

:func:`minimize_cq` deletes atoms (and, implicitly, the variables they
bound) while ``K``-equivalence — decided by the Table-1 machinery — is
preserved.  For ``Chom`` semirings this computes the classical core; for
``Cbi`` semirings (e.g. ``N[X]``) queries are already minimal unless
they contain exactly duplicated atom structure; classes in between
shrink exactly as much as their homomorphism type allows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.containment import k_equivalent
from ..queries.cq import CQ

__all__ = ["MinimizationResult", "minimize_cq"]


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of :func:`minimize_cq`.

    ``query``    — the minimized query (``K``-equivalent to the input).
    ``original`` — the input query.
    ``removed``  — how many atom occurrences were deleted.
    ``steps``    — the chain of intermediate queries, for explanation.
    """

    query: CQ
    original: CQ
    removed: int
    steps: tuple[CQ, ...]

    @property
    def minimal(self) -> bool:
        """True when no atom could be removed."""
        return self.removed == 0


def _atom_deletions(query: CQ):
    """All single-atom deletions that leave a well-formed CQ."""
    atoms = query.atoms
    for index in range(len(atoms)):
        remaining = atoms[:index] + atoms[index + 1:]
        if not remaining:
            continue
        body_vars = {v for atom in remaining for v in atom.variables()}
        if all(var in body_vars for var in query.head):
            yield CQ(query.head, remaining)


def minimize_cq(query: CQ, semiring, *,
                context=None) -> MinimizationResult:
    """Greedily delete atoms while ``K``-equivalence is certain.

    Only deletions whose equivalence the Table-1 procedures *decide*
    positively are applied, so the result is always ``K``-equivalent to
    the input — for semirings with undecided fragments (e.g. bag
    semantics) the minimization is sound but may be conservative.

    ``context`` threads a :class:`~repro.core.context.DecisionContext`
    into every equivalence check; pass an engine's caching context
    (``engine.context``) so the quadratically many candidate checks
    share homomorphism searches.
    """
    current = query
    steps = [query]
    changed = True
    while changed:
        changed = False
        for candidate in _atom_deletions(current):
            verdict = k_equivalent(current, candidate, semiring,
                                   context=context)
            if verdict.result is True:
                current = candidate
                steps.append(candidate)
                changed = True
                break
    return MinimizationResult(
        query=current,
        original=query,
        removed=len(query.atoms) - len(current.atoms),
        steps=tuple(steps),
    )
