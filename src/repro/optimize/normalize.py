"""Semiring-aware normal forms for queries.

``normalize_ucq`` composes the optimizer's certified transformations —
per-member minimization, union redundancy elimination — with canonical
variable renaming, yielding a normal form such that:

* the result is ``K``-equivalent to the input (every step is certified
  by the Table-1 procedures; undecidable steps are skipped), and
* for ``Chom`` semirings, ``K``-equivalent inputs produce *equal*
  outputs (cores are unique up to isomorphism, and the canonical
  renaming removes the isomorphism slack) — a syntactic equivalence
  check by normalization, tested in ``tests/test_normalize.py``.

The canonical renaming is capture-free: fresh existential names skip
every head-variable name, so a head variable literally named ``e0``
can never absorb an existential (see
:func:`repro.homomorphisms.canonical.fresh_existential_labels`).
"""

from __future__ import annotations

from ..homomorphisms.isomorphism import canonical_rename
from ..queries.ucq import UCQ, as_ucq
from .minimize import minimize_cq
from .redundancy import eliminate_redundant_members

__all__ = ["normalize_ucq", "normalize_cq"]


def normalize_cq(query, semiring, *, context=None):
    """Minimize one CQ under ``K`` and rename it canonically.

    ``context`` is threaded into the minimization's equivalence checks
    (pass ``engine.context`` to reuse an engine's caches).
    """
    minimized = minimize_cq(query, semiring, context=context).query
    return canonical_rename(minimized)


def normalize_ucq(query, semiring, *, context=None) -> UCQ:
    """The ``K``-normal form of a UCQ.

    Pipeline: minimize each member, drop provably redundant members,
    rename every member canonically (the UCQ constructor then sorts
    members deterministically).  ``context`` is threaded into every
    certified step.
    """
    union = as_ucq(query)
    minimized = UCQ(tuple(
        minimize_cq(member, semiring, context=context).query
        for member in union))
    reduced = eliminate_redundant_members(minimized, semiring,
                                          context=context).query
    return UCQ(tuple(canonical_rename(member) for member in reduced))
