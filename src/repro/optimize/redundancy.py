"""UCQ redundancy elimination, parameterized by the annotation semiring.

A member of a union is *redundant* when removing it leaves a
``K``-equivalent UCQ.  Over ⊕-idempotent semirings a member contained in
the rest of the union is redundant (requirement (C4) plus idempotence);
over non-idempotent semirings (bag semantics, provenance polynomials)
multiplicities matter and far fewer members can be dropped — e.g.
``{Q, Q}`` is *not* equivalent to ``{Q}`` over ``N[X]``, but is over
``B[X]``.  This is Table 1's offset story applied to rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.containment import k_equivalent
from ..queries.ucq import UCQ, as_ucq

__all__ = ["RedundancyResult", "eliminate_redundant_members"]


@dataclass(frozen=True)
class RedundancyResult:
    """Outcome of :func:`eliminate_redundant_members`.

    ``query``    — the reduced UCQ (``K``-equivalent to the input).
    ``original`` — the input UCQ.
    ``removed``  — the members that were dropped.
    """

    query: UCQ
    original: UCQ
    removed: tuple

    @property
    def minimal(self) -> bool:
        """True when no member could be removed."""
        return not self.removed


def eliminate_redundant_members(query, semiring, *,
                                context=None) -> RedundancyResult:
    """Drop members whose removal is *provably* ``K``-equivalence
    preserving.

    Each candidate removal is certified with
    :func:`~repro.core.containment.k_equivalent`; undecided verdicts
    keep the member (sound, possibly conservative — exactly the honest
    behaviour for bag semantics).  ``context`` threads a
    :class:`~repro.core.context.DecisionContext` into every check so
    engine callers reuse their caches.
    """
    original = as_ucq(query)
    current = original
    removed: list = []
    changed = True
    while changed:
        changed = False
        members = current.cqs
        for index in range(len(members)):
            candidate = UCQ(members[:index] + members[index + 1:])
            verdict = k_equivalent(current, candidate, semiring,
                                   context=context)
            if verdict.result is True:
                removed.append(members[index])
                current = candidate
                changed = True
                break
    return RedundancyResult(query=current, original=original,
                            removed=tuple(removed))
