"""Semantic oracles: brute-force refutation and columnar cross-checks."""

from .brute_force import (Counterexample, combined_schema,
                          find_counterexample, refutes)
from .cross_validate import (CrossValidationReport, cross_validate,
                             hunt_counterexample, random_annotated_instance)

__all__ = ["Counterexample", "CrossValidationReport", "combined_schema",
           "cross_validate", "find_counterexample", "hunt_counterexample",
           "random_annotated_instance", "refutes"]
