"""Brute-force semantic oracle for validating decision procedures."""

from .brute_force import Counterexample, find_counterexample, refutes

__all__ = ["Counterexample", "find_counterexample", "refutes"]
