"""Brute-force semantic refutation of containment claims.

``Q1 ⊆K Q2`` quantifies over *all* K-instances, so no finite search can
confirm it — but a single witnessing instance refutes it, and the
paper's completeness proofs show that when containment fails for the
classified semirings, a witness lives on a *canonical instance* of the
complete description ``⟨Q1⟩`` under some valuation of its tags.  The
oracle therefore searches:

1. every canonical instance ``⟦Q⟧`` for ``Q ∈ ⟨Q1⟩``, evaluating both
   queries once as ``N[X]`` polynomials and then sweeping valuations of
   the tag variables over a sampled element pool (exhaustively when the
   grid is small, randomly otherwise); and
2. random small instances, as a safety net beyond the canonical family.

The test suite uses the oracle in both directions: a procedure's
``True`` must never be refuted, and its ``False`` should be witnessed
(for the exactly-characterized classes the canonical search succeeds by
the paper's own arguments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Any, Iterator

from ..data.canonical import canonical_instance
from ..data.instance import Instance
from ..queries.ccq import complete_description
from ..queries.evaluation import evaluate_all
from ..queries.ucq import UCQ, as_ucq

__all__ = ["Counterexample", "combined_schema", "find_counterexample",
           "refutes"]


def combined_schema(q1: UCQ, q2: UCQ) -> dict[str, int]:
    """The union schema of both queries, validated.

    Random witness search must populate every relation either side
    mentions — a relation appearing only in ``q2`` still shapes the
    right-hand answers, and leaving it empty silently weakens the
    search.  A relation used with two different arities across the
    queries can never be populated consistently, so that is an error
    rather than a silent overwrite.
    """
    schema = dict(q1.schema())
    for relation, arity in q2.schema().items():
        known = schema.setdefault(relation, arity)
        if known != arity:
            raise ValueError(
                f"relation {relation!r} used with arity {known} in Q1 "
                f"but {arity} in Q2")
    return schema


@dataclass(frozen=True)
class Counterexample:
    """A witnessing instance for ``Q1 ⊄K Q2``."""

    instance: Instance
    target: tuple
    lhs: Any
    rhs: Any
    source: str

    def __repr__(self) -> str:
        return (f"Counterexample(source={self.source}, target={self.target},"
                f" lhs={self.lhs!r} ⋠ rhs={self.rhs!r})")


def _valuation_grid(tags: tuple[str, ...], pool: list,
                    rng: random.Random, budget: int) -> Iterator[dict]:
    """Valuations of the tag variables over ``pool``: exhaustive when
    they fit in ``budget``, else random draws."""
    total = len(pool) ** len(tags)
    if total <= budget:
        for values in product(pool, repeat=len(tags)):
            yield dict(zip(tags, values))
        return
    for _ in range(budget):
        yield {tag: rng.choice(pool) for tag in tags}


def _generic_valuation(semiring, tags: tuple[str, ...]) -> dict | None:
    """The "abstractly tagged" valuation: each tag goes to its own fresh
    generator of the semiring (for the polynomial-like semirings that
    expose ``var``).  This is where the completeness proofs of the
    ``Nin``/``Nsur``/``C∞bi`` classes place their witnesses."""
    var = getattr(semiring, "var", None)
    if var is None:
        return None
    return {tag: var(tag) for tag in tags}


def _canonical_search(q1: UCQ, q2: UCQ, semiring, pool: list,
                      rng: random.Random, budget: int) -> Counterexample | None:
    from ..semirings.provenance import NX

    for member in q1:
        for ccq in complete_description(member):
            tagged = canonical_instance(ccq)
            domain = tuple(ccq.variables()) + ccq.constants()
            # One evaluation per (instance, query): every answer of both
            # queries over ⟦ccq⟧ is computed in a single join sweep, and
            # the per-target loop below becomes dictionary lookups
            # (targets without an entry evaluate to the zero polynomial).
            left_answers = evaluate_all(q1, tagged.instance, NX)
            right_answers = evaluate_all(q2, tagged.instance, NX)
            zero_poly = NX.zero
            for target in product(domain, repeat=ccq.arity):
                left_poly = left_answers.get(target, zero_poly)
                right_poly = right_answers.get(target, zero_poly)
                valuations = []
                generic = _generic_valuation(semiring, tagged.tag_names)
                if generic is not None:
                    valuations.append(generic)
                for valuation in valuations + list(_valuation_grid(
                        tagged.tag_names, pool, rng, budget)):
                    lhs = left_poly.eval_in(semiring, valuation)
                    rhs = right_poly.eval_in(semiring, valuation)
                    if not semiring.leq(lhs, rhs):
                        witness = tagged.instance.map_annotations(
                            semiring,
                            lambda poly: poly.eval_in(semiring, valuation))
                        return Counterexample(witness, target, lhs, rhs,
                                              source=f"canonical ⟦{ccq!r}⟧")
    return None


def _random_instances(schema: dict[str, int], semiring,
                      rng: random.Random, rounds: int,
                      domain_size: int) -> Iterator[Instance]:
    domain = tuple(range(domain_size))
    for _ in range(rounds):
        relations: dict[str, dict[tuple, Any]] = {}
        for relation, arity in schema.items():
            table: dict[tuple, Any] = {}
            for row in product(domain, repeat=arity):
                if rng.random() < 0.55:
                    table[row] = semiring.sample(rng)
            relations[relation] = table
        yield Instance(semiring, relations)


def _random_search(q1: UCQ, q2: UCQ, semiring, rng: random.Random,
                   rounds: int, domain_size: int) -> Counterexample | None:
    schema = combined_schema(q1, q2)
    arity = q1.arity
    for instance in _random_instances(schema, semiring, rng, rounds,
                                      domain_size):
        domain = tuple(range(domain_size))
        # As in the canonical search: evaluate each query once per
        # instance, then sweep targets as lookups.
        lhs_answers = evaluate_all(q1, instance)
        rhs_answers = evaluate_all(q2, instance)
        for target in product(domain, repeat=arity):
            lhs = lhs_answers.get(target, semiring.zero)
            rhs = rhs_answers.get(target, semiring.zero)
            if not semiring.leq(lhs, rhs):
                return Counterexample(instance, target, lhs, rhs,
                                      source="random")
    return None


def find_counterexample(q1, q2, semiring, rng: random.Random | None = None,
                        pool_size: int = 4, budget: int = 3000,
                        random_rounds: int = 40,
                        domain_size: int = 2) -> Counterexample | None:
    """Search for an instance and tuple witnessing ``Q1 ⊄K Q2``.

    Returns None when no witness was found (which never *confirms*
    containment — it merely fails to refute it).
    """
    rng = rng or random.Random(7)
    q1, q2 = as_ucq(q1), as_ucq(q2)
    if q1.is_empty():
        return None
    pool = semiring.sample_pool(rng, pool_size)
    witness = _canonical_search(q1, q2, semiring, pool, rng, budget)
    if witness is not None:
        return witness
    return _random_search(q1, q2, semiring, rng, random_rounds, domain_size)


def refutes(q1, q2, semiring, **kwargs) -> bool:
    """True iff the oracle finds a counterexample to ``Q1 ⊆K Q2``."""
    return find_counterexample(q1, q2, semiring, **kwargs) is not None
