"""Cross-validation of the columnar evaluator, and scaled witness hunts.

Two jobs, both built on random annotated instances over a query pair's
:func:`~repro.oracle.brute_force.combined_schema`:

1. :func:`cross_validate` — evidence that :mod:`repro.eval` is what it
   claims: on each random instance the columnar answer table must agree
   **byte-identically** (same tuples, same normalized annotations) with
   the tuple-at-a-time :func:`repro.queries.evaluation.evaluate_all`.
   Instances stay small, because the reference evaluator is the toy.

2. :func:`hunt_counterexample` — the second production workload the
   eval engine unlocks: refutation search for ``Q1 ⊆K Q2`` on instances
   far beyond the brute-force oracle's reach.  Only the columnar path
   evaluates; soundness does not rest on trust, because every candidate
   witness is **re-verified tuple-at-a-time** before being reported
   (one target over one instance is cheap even when the full sweep is
   not).

Both directions are deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..data.instance import Instance
from ..queries.evaluation import evaluate as point_evaluate
from ..queries.evaluation import evaluate_all
from ..queries.ucq import UCQ, as_ucq
from .brute_force import Counterexample, combined_schema

__all__ = ["CrossValidationReport", "cross_validate",
           "hunt_counterexample", "random_annotated_instance"]


@dataclass
class CrossValidationReport:
    """Outcome of one :func:`cross_validate` run."""

    trials: int = 0
    facts: int = 0
    mismatches: list = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return not self.mismatches


def random_annotated_instance(schema: dict[str, int], semiring,
                              rng: random.Random, *,
                              domain_size: int = 4,
                              facts_per_relation: int = 10) -> Instance:
    """A random instance: sampled rows and sampled annotations.

    Unlike the oracle's dense grid enumeration this draws rows, so it
    scales to large domains and fact counts — the generator behind both
    the agreement trials and the large hunts.
    """
    relations: dict[str, dict[tuple, Any]] = {}
    domain = range(domain_size)
    for relation, arity in schema.items():
        table: dict[tuple, Any] = {}
        for _ in range(rng.randint(0, facts_per_relation)):
            row = tuple(rng.choice(domain) for _ in range(arity))
            table[row] = semiring.sample(rng)
        relations[relation] = table
    return Instance(semiring, relations)


def cross_validate(query, semiring, *, trials: int = 25,
                   seed: int = 1729, domain_size: int = 4,
                   facts_per_relation: int = 10) -> CrossValidationReport:
    """Columnar vs tuple-at-a-time agreement on random small instances.

    Every disagreement is recorded as ``(instance, reference answers,
    columnar answers)``; an empty ``mismatches`` list is the
    byte-identical verdict the acceptance criteria demand.
    """
    # Lazy: the oracle package must stay importable without numpy.
    from ..eval import evaluate as columnar_evaluate
    union = as_ucq(query)
    rng = random.Random(seed)
    report = CrossValidationReport()
    for _ in range(trials):
        instance = random_annotated_instance(
            union.schema(), semiring, rng, domain_size=domain_size,
            facts_per_relation=facts_per_relation)
        report.trials += 1
        report.facts += instance.fact_count()
        reference = evaluate_all(union, instance)
        columnar = columnar_evaluate(union, instance).to_dict()
        if reference != columnar or not _same_types(reference, columnar):
            report.mismatches.append((instance, reference, columnar))
    return report


def _same_types(reference: dict, columnar: dict) -> bool:
    """Guard the *byte*-identity claim: ``==`` alone would let
    ``True``/``1`` or ``2``/``2.0`` drift pass silently."""
    for head, value in reference.items():
        other = columnar.get(head)
        if type(other) is not type(value):
            return False
    return True


def _verify_tuple_at_a_time(q1: UCQ, q2: UCQ, semiring, instance: Instance,
                            target: tuple) -> tuple[Any, Any] | None:
    """Re-check one candidate witness with the reference evaluator."""
    lhs = point_evaluate(q1, instance, target, semiring)
    rhs = point_evaluate(q2, instance, target, semiring)
    if not semiring.leq(lhs, rhs):
        return lhs, rhs
    return None


def hunt_counterexample(q1, q2, semiring, *, rounds: int = 20,
                        seed: int = 1729, domain_size: int = 32,
                        facts_per_relation: int = 2000
                        ) -> Counterexample | None:
    """Columnar-scale refutation search for ``Q1 ⊆K Q2``.

    Each round draws one random instance (thousands of facts — far past
    the brute-force oracle's budget), evaluates **both** queries with
    the columnar engine only, and compares answers tuple-wise (absent
    answers are the semiring zero).  A violating target found
    columnar-ly is re-verified with the tuple-at-a-time evaluator
    before being returned, so a reported witness never depends on the
    engine under test.  ``None`` never confirms containment.
    """
    from ..eval import ColumnarInstance
    from ..eval import evaluate as columnar_evaluate
    q1, q2 = as_ucq(q1), as_ucq(q2)
    if q1.is_empty():
        return None
    schema = combined_schema(q1, q2)
    rng = random.Random(seed)
    zero = semiring.zero
    for _ in range(rounds):
        instance = random_annotated_instance(
            schema, semiring, rng, domain_size=domain_size,
            facts_per_relation=facts_per_relation)
        columnar = ColumnarInstance.from_instance(instance, semiring)
        lhs_answers = columnar_evaluate(q1, columnar).to_dict()
        rhs_answers = columnar_evaluate(q2, columnar).to_dict()
        for target, lhs in lhs_answers.items():
            rhs = rhs_answers.get(target, zero)
            if not semiring.leq(lhs, rhs):
                verified = _verify_tuple_at_a_time(q1, q2, semiring,
                                                   instance, target)
                if verified is not None:
                    return Counterexample(instance, target, *verified,
                                          source="columnar-hunt")
        # ``lhs = 0`` targets cannot violate: the order is positive,
        # 0 ≼ rhs always — only the left support needs sweeping.
    return None
