"""Provenance polynomials, CQ-admissibility and tropical orders."""

from .admissible import (distinct_orderings, is_cq_admissible, realize,
                         representations, zigzag_closed)
from .polynomial import (Monomial, Polynomial, polynomial_product,
                         polynomial_sum)
from .tropical_order import (grid_violation, max_plus_poly_leq,
                             min_plus_poly_leq)

__all__ = [
    "Monomial", "Polynomial", "distinct_orderings", "grid_violation",
    "is_cq_admissible", "max_plus_poly_leq", "min_plus_poly_leq",
    "polynomial_product", "polynomial_sum", "realize", "representations",
    "zigzag_closed",
]
