"""Provenance polynomials, CQ-admissibility and tropical orders."""

from .admissible import (canonical_pair, distinct_orderings,
                         is_cq_admissible, realize, representations,
                         zigzag_closed)
from .polynomial import (Monomial, Polynomial, polynomial_product,
                         polynomial_sum)
from .tropical_order import (MAX_PLUS, MIN_PLUS, TropicalOrderCertificate,
                             certificate_valid, decide_poly_leq,
                             grid_violation, max_plus_poly_leq,
                             min_plus_poly_leq)

__all__ = [
    "MAX_PLUS", "MIN_PLUS", "Monomial", "Polynomial",
    "TropicalOrderCertificate", "canonical_pair", "certificate_valid",
    "decide_poly_leq", "distinct_orderings", "grid_violation",
    "is_cq_admissible", "max_plus_poly_leq", "min_plus_poly_leq",
    "polynomial_product", "polynomial_sum", "realize", "representations",
    "zigzag_closed",
]
