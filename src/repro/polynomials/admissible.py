"""CQ-admissible polynomials ``Ncq[X]`` (Def. 4.7, Prop. 4.16).

A polynomial is *CQ-admissible* when it equals ``Q^I(t)`` for some CQ
``Q`` and some ``N[X]``-instance ``I`` whose tuples carry unique
variables (an "abstractly tagged" instance).  The classes ``Nin``,
``Nsur`` and ``Cbi`` are all axiomatized through these polynomials.

Prop. 4.16 characterizes ``Ncq[X]`` constructively: ``P`` is admissible
iff it has a representation as a *set* of pairwise-distinct o-monomials
(ordered monomials — words over ``X``) of one common degree whose
commutative collapse is ``P``, and which is *closed* under the zig-zag
condition: whenever a word ``M`` is, for every position pair ``i < j``,
connected to the representation by an alternating chain matching
``M[i]`` and ``M[j]``, then ``M`` itself belongs to the representation.

The chains for a fixed pair ``(i, j)`` are exactly the alternating walks
of a bipartite graph between position-``i`` values and position-``j``
values with one edge per word, so the zig-zag relation is bipartite
*connectivity* — which is how :func:`zigzag_closed` computes it.

Consequences implemented in the tests: every polynomial produced by
evaluating a CQ over a canonical instance passes the predicate, while
``2x``, ``x² + y`` and ``x² + xy + y²`` fail (the paper's examples).
"""

from __future__ import annotations

from itertools import combinations, permutations, product
from typing import Iterable, Iterator

from .polynomial import Monomial, Polynomial

__all__ = [
    "distinct_orderings",
    "zigzag_closed",
    "representations",
    "is_cq_admissible",
    "canonical_pair",
]


def _refine_pair_colors(variables: tuple[str, ...],
                        polys: tuple[Polynomial, ...],
                        colors: dict[str, int]) -> dict[str, int]:
    """Iterated color refinement of the pair's variables.

    Each variable's color is refined by, per side, the sorted multiset
    of its monomial occurrences — coefficient, degree, own exponent,
    and the colors/exponents of the co-occurring variables.  New colors
    are ranks of sorted signatures, so the color *order* is itself
    renaming-invariant (the same scheme as
    :mod:`repro.homomorphisms.canonical`, on the monomial incidence
    structure instead of the atom one).
    """
    while True:
        signatures = {}
        for var in variables:
            per_side = []
            for poly in polys:
                occurrence_sig = sorted(
                    (coeff, mono.degree(), mono.exponent(var),
                     tuple(sorted((colors[other], exp)
                                  for other, exp in mono.powers
                                  if other != var)))
                    for mono, coeff in poly.items()
                    if mono.exponent(var)
                )
                per_side.append(tuple(occurrence_sig))
            signatures[var] = (colors[var], tuple(per_side))
        ranks = {signature: rank for rank, signature
                 in enumerate(sorted(set(signatures.values())))}
        refined = {var: ranks[signatures[var]] for var in variables}
        if refined == colors:
            return colors
        colors = refined
        if len(ranks) == len(variables):
            return colors


def _swap_fixes(polys: tuple[Polynomial, ...], a: str, b: str) -> bool:
    """True iff transposing variables ``a`` and ``b`` fixes both sides
    — a cheaply-detected pair automorphism used to prune the tie-break
    search."""
    swap = {a: b, b: a}
    for poly in polys:
        swapped = Polynomial(
            (Monomial(tuple((swap.get(var, var), exp)
                            for var, exp in mono.powers)), coeff)
            for mono, coeff in poly.items()
        )
        if swapped != poly:
            return False
    return True


def canonical_pair(
        p1: Polynomial, p2: Polynomial
) -> tuple[Polynomial, Polynomial, dict[str, str]]:
    """Canonicalize an admissible pair up to variable renaming.

    Returns ``(c1, c2, renaming)`` where ``renaming`` maps the original
    variables onto ``v0, v1, ...`` and ``ci`` is ``pi`` rewritten through
    it.  The relabeling is a *bijection*, so every property invariant
    under variable renaming — in particular the tropical polynomial
    orders of Prop. 4.19 — gives the same answer on ``(c1, c2)`` as on
    ``(p1, p2)``.  That makes ``(c1, c2)`` a sound memoization key for
    ``poly_leq`` decisions: the canonical pairs of two admissible pairs
    coincide only if the pairs are renamings of each other.

    The variable order is canonical, never name-dependent: iterated
    color refinement over the monomial incidence structure orders the
    variables by occurrence profile, and remaining ties are broken by
    individualization-refinement — each tied variable is individualized
    in turn and the lexicographically least rewritten pair wins (with
    transposition automorphisms pruning interchangeable candidates).
    Renamings of one pair therefore always collapse onto one key, even
    when occurrence signatures tie.
    """
    polys = (p1, p2)
    variables = tuple(sorted(p1.variables() | p2.variables()))
    colors = _refine_pair_colors(variables, polys,
                                 {var: 0 for var in variables})

    def serialize(labels: dict[str, int]) -> tuple:
        return tuple(
            tuple(sorted(
                (tuple(sorted((labels[var], exp)
                              for var, exp in mono.powers)), coeff)
                for mono, coeff in poly.items()))
            for poly in polys
        )

    best: list = [None, None]  # (serialization, labels)

    def search(colors: dict[str, int]) -> None:
        cells: dict[int, list[str]] = {}
        for var in variables:
            cells.setdefault(colors[var], []).append(var)
        ordered_cells = [sorted(cells[color]) for color in sorted(cells)]
        target = next((cell for cell in ordered_cells if len(cell) > 1),
                      None)
        if target is None:
            labels = {var: colors[var] for var in variables}
            serialization = serialize(labels)
            if best[0] is None or serialization < best[0]:
                best[0], best[1] = serialization, labels
            return
        explored: list[str] = []
        for candidate in target:
            if any(_swap_fixes(polys, candidate, done)
                   for done in explored):
                continue
            marks = {var: (colors[var], 0 if var == candidate else 1)
                     for var in variables}
            ranks = {mark: rank for rank, mark
                     in enumerate(sorted(set(marks.values())))}
            search(_refine_pair_colors(
                variables, polys,
                {var: ranks[marks[var]] for var in variables}))
            explored.append(candidate)

    search(colors)
    labels = best[1] if best[1] is not None else {}
    renaming = {var: f"v{labels[var]}" for var in variables}

    def rewrite(poly: Polynomial) -> Polynomial:
        return Polynomial(
            (Monomial(tuple((renaming[var], exp)
                            for var, exp in mono.powers)), coeff)
            for mono, coeff in poly.items()
        )

    return rewrite(p1), rewrite(p2), renaming


def distinct_orderings(mono: Monomial) -> tuple[tuple[str, ...], ...]:
    """All distinct words (o-monomials) collapsing to ``mono``."""
    word = mono.as_word()
    return tuple(sorted(set(permutations(word))))


def _pair_components(words: Iterable[tuple[str, ...]], i: int,
                     j: int) -> dict:
    """Union-find components of the bipartite value graph for positions
    ``(i, j)``: left nodes ``("i", x)``, right nodes ``("j", y)``, one
    edge per word."""
    parent: dict = {}

    def find(node):
        root = node
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(node, node) != node:
            parent[node], node = root, parent[node]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for word in words:
        union(("i", word[i]), ("j", word[j]))
    return {node: find(node) for node in list(parent)} | {
        node: find(node) for node in set(parent.values())
    }


def zigzag_closed(words: frozenset) -> bool:
    """Check condition 2 of Prop. 4.16 for a set of same-length words.

    For every candidate word ``M`` over the occurring variables: if for
    each pair ``i < j`` the values ``M[i]`` and ``M[j]`` lie in the same
    component of the pair's bipartite value graph (i.e. an alternating
    chain links them), then ``M`` must already be in ``words``.
    """
    words = frozenset(words)
    if not words:
        return True
    degree = len(next(iter(words)))
    if degree <= 1:
        return True
    components = {
        (i, j): _pair_components(words, i, j)
        for i, j in combinations(range(degree), 2)
    }
    position_values = [
        sorted({word[i] for word in words}) for i in range(degree)
    ]
    for candidate in product(*position_values):
        if candidate in words:
            continue
        forced = True
        for (i, j), comp in components.items():
            left = comp.get(("i", candidate[i]))
            right = comp.get(("j", candidate[j]))
            if left is None or right is None or left != right:
                forced = False
                break
        if forced:
            return False
    return True


def representations(poly: Polynomial) -> Iterator[frozenset]:
    """Enumerate candidate o-monomial representations of ``poly``.

    Each representation picks, for every monomial with coefficient
    ``c``, a ``c``-subset of its distinct orderings (condition 1 of
    Prop. 4.16).  Polynomials that are non-homogeneous or have a
    coefficient exceeding the number of distinct orderings admit none.
    """
    if poly.is_zero():
        yield frozenset()
        return
    if not poly.is_homogeneous():
        return
    if poly.constant_term():
        return  # degree-0 monomials cannot come from a (≥1 atom) CQ
    choices: list[tuple[frozenset, ...]] = []
    for mono, coeff in poly.items():
        orderings = distinct_orderings(mono)
        if coeff > len(orderings):
            return
        choices.append(tuple(
            frozenset(subset) for subset in combinations(orderings, coeff)
        ))
    for selection in product(*choices):
        yield frozenset().union(*selection)


def is_cq_admissible(poly: Polynomial) -> bool:
    """Decide membership in ``Ncq[X]`` via Prop. 4.16."""
    return any(
        zigzag_closed(words) for words in representations(poly)
    )


def realize(poly: Polynomial, max_shape_atoms: int = 2,
            max_query_atoms: int = 3, max_vars: int = 2):
    """Search for a witness of Def. 4.7: a CQ, tagged instance and tuple
    with ``Q^I(t) = P`` (up to renaming of the tag variables).

    This is the constructive converse of :func:`is_cq_admissible`,
    realized by bounded enumeration: instances are canonical instances
    of small "shape" CQs (each tuple tagged with a unique variable, as
    the definition demands) and queries are small CQs over the same
    schema.  Returns ``(query, canonical_instance, variable_renaming)``
    or None when no witness exists within the bounds — sound for
    confirmation, bounded for refutation (non-admissible polynomials
    such as ``x² + xy + y²`` stay unrealized at any bound, by
    Prop. 4.16).
    """
    from itertools import product as _product

    from ..data.canonical import canonical_instance
    from ..queries.atoms import Atom, Var
    from ..queries.cq import CQ
    from ..queries.evaluation import evaluate
    from ..semirings.provenance import NX

    def _small_cqs(max_atoms: int):
        variables = [Var(f"w{i}") for i in range(max_vars)]
        relations = [("R", 2), ("S", 1)]
        atom_pool = [
            Atom(name, terms)
            for name, arity in relations
            for terms in _product(variables, repeat=arity)
        ]
        for count in range(1, max_atoms + 1):
            for atoms in _product(atom_pool, repeat=count):
                yield CQ((), atoms)

    target_profile = sorted(
        (coeff, tuple(sorted(mono.as_word())))
        for mono, coeff in poly.items()
    )
    for shape in _small_cqs(max_shape_atoms):
        tagged = canonical_instance(shape)
        if len(tagged.tag_names) < len(poly.variables()):
            continue
        for query in _small_cqs(max_query_atoms):
            result = evaluate(query, tagged.instance, (), NX)
            profile = sorted(
                (coeff, tuple(sorted(mono.as_word())))
                for mono, coeff in result.items()
            )
            if len(profile) != len(target_profile):
                continue
            renaming = _match_up_to_renaming(result, poly)
            if renaming is not None:
                return query, tagged, renaming
    return None


def _match_up_to_renaming(produced: Polynomial,
                          target: Polynomial) -> dict | None:
    """A variable bijection carrying ``produced`` onto ``target``."""
    produced_vars = sorted(produced.variables())
    target_vars = sorted(target.variables())
    if len(produced_vars) != len(target_vars):
        return None
    for ordering in permutations(target_vars):
        renaming = dict(zip(produced_vars, ordering))
        renamed = Polynomial(
            (Monomial(tuple(
                (renaming[var], exp) for var, exp in mono.powers)), coeff)
            for mono, coeff in produced.items()
        )
        if renamed == target:
            return renaming
    return None
