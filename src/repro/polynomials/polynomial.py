"""Provenance polynomials ``N[X]`` — the universal annotation domain.

The semiring of *provenance polynomials* ``N[X] = (N[X], +, ×, 0, 1)``
(Green–Karvounarakis–Tannen, PODS 2007) consists of multivariate
polynomials over a variable set ``X`` with natural-number coefficients.
Prop. 3.2 of the paper shows ``N[X]`` is universal for all positive
semirings: any valuation ``ν : X → K`` extends uniquely to a semiring
morphism ``Evalν : N[X] → K`` (implemented by :meth:`Polynomial.eval_in`).

This module implements the raw polynomial arithmetic.  The semiring
wrappers (``N[X]``, ``B[X]``, the coefficient-capped ``N_k[X]``, the
absorptive ``Sorp[X]`` and the exponent-dropping ``Trio[X]``) live in
:mod:`repro.semirings`.

Variables are strings.  :class:`Monomial` and :class:`Polynomial` are
immutable and hashable, so they can serve directly as annotation values.
"""

from __future__ import annotations

from functools import reduce
from typing import Any, Iterable, Iterator, Mapping

__all__ = ["Monomial", "Polynomial"]


class Monomial:
    """A commutative monomial ``x1^e1 · ... · xn^en`` with ``ei ≥ 1``.

    Stored as a sorted tuple of ``(variable, exponent)`` pairs.  The empty
    monomial is the multiplicative unit ``1``.
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[str, int] | Iterable[tuple[str, int]] = ()):
        if isinstance(powers, Mapping):
            items = powers.items()
        else:
            items = powers
        merged: dict[str, int] = {}
        for var, exp in items:
            if exp < 0:
                raise ValueError(f"negative exponent for {var!r}")
            if exp:
                merged[var] = merged.get(var, 0) + exp
        self._powers: tuple[tuple[str, int], ...] = tuple(sorted(merged.items()))
        self._hash = hash(self._powers)

    # -- constructors ---------------------------------------------------

    @classmethod
    def unit(cls) -> "Monomial":
        """The empty monomial ``1``."""
        return _UNIT_MONOMIAL

    @classmethod
    def variable(cls, var: str) -> "Monomial":
        """The monomial consisting of a single variable."""
        return cls(((var, 1),))

    @classmethod
    def from_variables(cls, variables: Iterable[str]) -> "Monomial":
        """Product of ``variables`` (repetitions accumulate exponents)."""
        powers: dict[str, int] = {}
        for var in variables:
            powers[var] = powers.get(var, 0) + 1
        return cls(powers)

    # -- structure ------------------------------------------------------

    @property
    def powers(self) -> tuple[tuple[str, int], ...]:
        """Sorted ``(variable, exponent)`` pairs."""
        return self._powers

    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(exp for _, exp in self._powers)

    def exponent(self, var: str) -> int:
        """Exponent of ``var`` (0 when absent)."""
        for name, exp in self._powers:
            if name == var:
                return exp
        return 0

    def variables(self) -> frozenset[str]:
        """The set of variables occurring in the monomial."""
        return frozenset(var for var, _ in self._powers)

    def is_unit(self) -> bool:
        """True iff this is the empty monomial ``1``."""
        return not self._powers

    def is_squarefree(self) -> bool:
        """True iff every exponent is 1 (a *set* of variables)."""
        return all(exp == 1 for _, exp in self._powers)

    def support_monomial(self) -> "Monomial":
        """Drop exponents: the square-free monomial on the same variables.

        This is the ``Trio[X]`` projection (witness bags forget powers).
        """
        return Monomial(((var, 1) for var, _ in self._powers))

    def as_word(self) -> tuple[str, ...]:
        """The sorted word of variables with multiplicity.

        ``x^2·y`` becomes ``('x', 'x', 'y')``; used by the o-monomial
        machinery of Prop. 4.16.
        """
        word: list[str] = []
        for var, exp in self._powers:
            word.extend([var] * exp)
        return tuple(word)

    # -- algebra --------------------------------------------------------

    def mul(self, other: "Monomial") -> "Monomial":
        """Product of two monomials (exponents add)."""
        powers = dict(self._powers)
        for var, exp in other._powers:
            powers[var] = powers.get(var, 0) + exp
        return Monomial(powers)

    def divides(self, other: "Monomial") -> bool:
        """True iff ``self`` divides ``other`` exponent-wise."""
        other_powers = dict(other._powers)
        return all(exp <= other_powers.get(var, 0) for var, exp in self._powers)

    def strictly_divides(self, other: "Monomial") -> bool:
        """True iff ``self`` divides ``other`` and they differ."""
        return self != other and self.divides(other)

    def eval_in(self, semiring, valuation: Mapping[str, Any]) -> Any:
        """Image under ``Evalν`` restricted to a single monomial."""
        return semiring.prod(
            semiring.power(valuation[var], exp) for var, exp in self._powers
        )

    # -- dunder ---------------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        return self.mul(other)

    def __reduce__(self):
        # Rebuild through the constructor: ``_hash`` caches a
        # string-tuple hash, which is salted per process — restoring it
        # from a pickle (e.g. a tropical certificate in a warm-start
        # snapshot) would make equal monomials hash apart and silently
        # miss every cache lookup in the restoring process.
        return (Monomial, (self._powers,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and self._powers == other._powers

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Monomial") -> bool:
        return self._powers < other._powers

    def __repr__(self) -> str:
        if not self._powers:
            return "1"
        parts = [
            var if exp == 1 else f"{var}^{exp}" for var, exp in self._powers
        ]
        return "·".join(parts)


_UNIT_MONOMIAL = Monomial()


class Polynomial:
    """A polynomial with natural-number coefficients over string variables.

    Stored as a mapping from :class:`Monomial` to positive ``int``.  The
    zero polynomial has no monomials.  Instances are immutable; arithmetic
    returns fresh objects.
    """

    __slots__ = ("_coeffs", "_hash")

    def __init__(self, coeffs: Mapping[Monomial, int] | Iterable[tuple[Monomial, int]] = ()):
        if isinstance(coeffs, Mapping):
            items = coeffs.items()
        else:
            items = coeffs
        merged: dict[Monomial, int] = {}
        for mono, coeff in items:
            if coeff < 0:
                raise ValueError("natural-number coefficients only")
            if coeff:
                merged[mono] = merged.get(mono, 0) + coeff
        self._coeffs: tuple[tuple[Monomial, int], ...] = tuple(
            sorted(merged.items(), key=lambda item: item[0].powers)
        )
        self._hash = hash(self._coeffs)

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return _ZERO_POLY

    @classmethod
    def one(cls) -> "Polynomial":
        """The unit polynomial ``1``."""
        return _ONE_POLY

    @classmethod
    def variable(cls, var: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``var``."""
        return cls(((Monomial.variable(var), 1),))

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls(((Monomial.unit(), value),)) if value else cls.zero()

    @classmethod
    def from_monomial(cls, mono: Monomial, coeff: int = 1) -> "Polynomial":
        """The polynomial ``coeff · mono``."""
        return cls(((mono, coeff),))

    @classmethod
    def parse_terms(cls, terms: Iterable[tuple[int, Iterable[str]]]) -> "Polynomial":
        """Build from ``(coefficient, variable-word)`` pairs.

        ``parse_terms([(1, 'xx'), (2, 'xy')])`` is ``x² + 2xy`` when the
        variables are single characters; any iterable of variable names
        works, e.g. ``(3, ['u', 'u', 'v'])``.
        """
        return cls(
            (Monomial.from_variables(tuple(word)), coeff) for coeff, word in terms
        )

    # -- structure ------------------------------------------------------

    def items(self) -> Iterator[tuple[Monomial, int]]:
        """Iterate ``(monomial, coefficient)`` pairs (coefficients > 0)."""
        return iter(self._coeffs)

    def monomials(self) -> tuple[Monomial, ...]:
        """The monomials with non-zero coefficient."""
        return tuple(mono for mono, _ in self._coeffs)

    def coefficient(self, mono: Monomial) -> int:
        """Coefficient of ``mono`` (0 when absent)."""
        for candidate, coeff in self._coeffs:
            if candidate == mono:
                return coeff
        return 0

    def constant_term(self) -> int:
        """Coefficient of the unit monomial."""
        return self.coefficient(Monomial.unit())

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self._coeffs

    def degree(self) -> int:
        """Maximum monomial degree (0 for the zero polynomial)."""
        return max((mono.degree() for mono, _ in self._coeffs), default=0)

    def is_homogeneous(self) -> bool:
        """True iff all monomials share the same degree (or zero)."""
        degrees = {mono.degree() for mono, _ in self._coeffs}
        return len(degrees) <= 1

    def variables(self) -> frozenset[str]:
        """All variables occurring in the polynomial."""
        return frozenset().union(
            *(mono.variables() for mono, _ in self._coeffs)
        ) if self._coeffs else frozenset()

    def term_count(self) -> int:
        """Number of distinct monomials."""
        return len(self._coeffs)

    def total_multiplicity(self) -> int:
        """Sum of all coefficients (number of monomials with repetition)."""
        return sum(coeff for _, coeff in self._coeffs)

    # -- algebra --------------------------------------------------------

    def add(self, other: "Polynomial") -> "Polynomial":
        """Polynomial sum."""
        coeffs = dict(self._coeffs)
        for mono, coeff in other._coeffs:
            coeffs[mono] = coeffs.get(mono, 0) + coeff
        return Polynomial(coeffs)

    def mul(self, other: "Polynomial") -> "Polynomial":
        """Polynomial product."""
        coeffs: dict[Monomial, int] = {}
        for mono_a, coeff_a in self._coeffs:
            for mono_b, coeff_b in other._coeffs:
                product = mono_a.mul(mono_b)
                coeffs[product] = coeffs.get(product, 0) + coeff_a * coeff_b
        return Polynomial(coeffs)

    def scale(self, factor: int) -> "Polynomial":
        """Multiply every coefficient by a natural number."""
        if factor < 0:
            raise ValueError("natural-number coefficients only")
        if factor == 0:
            return Polynomial.zero()
        return Polynomial((mono, coeff * factor) for mono, coeff in self._coeffs)

    def power(self, exponent: int) -> "Polynomial":
        """``self`` raised to a natural power (``P^0 = 1``)."""
        if exponent < 0:
            raise ValueError("negative exponent")
        result = Polynomial.one()
        for _ in range(exponent):
            result = result.mul(self)
        return result

    def natural_leq(self, other: "Polynomial") -> bool:
        """The natural order of ``N[X]``: coefficient-wise ``≤``.

        ``P ≼ Q`` iff ``P + R = Q`` for some ``R``, which for ``N[X]``
        amounts to every coefficient of ``P`` being at most the matching
        coefficient of ``Q``.
        """
        other_coeffs = dict(other._coeffs)
        return all(
            coeff <= other_coeffs.get(mono, 0) for mono, coeff in self._coeffs
        )

    def eval_in(self, semiring, valuation: Mapping[str, Any]) -> Any:
        """Apply the universal morphism ``Evalν : N[X] → K`` (Prop. 3.2).

        ``valuation`` maps every variable of the polynomial to an element
        of ``semiring``; coefficients map through ``n ↦ n·1``.
        """
        return semiring.sum(
            semiring.mul(
                semiring.from_int(coeff), mono.eval_in(semiring, valuation)
            )
            for mono, coeff in self._coeffs
        )

    # -- dunder ---------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        return self.add(other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        return self.mul(other)

    def __reduce__(self):
        # Same contract as :meth:`Monomial.__reduce__`: recompute the
        # per-process hash instead of pickling a stale one.
        return (Polynomial, (self._coeffs,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._coeffs:
            return "0"
        parts = []
        for mono, coeff in self._coeffs:
            if mono.is_unit():
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(repr(mono))
            else:
                parts.append(f"{coeff}{mono!r}")
        return " + ".join(parts)


_ZERO_POLY = Polynomial()
_ONE_POLY = Polynomial(((Monomial.unit(), 1),))


def polynomial_sum(polys: Iterable[Polynomial]) -> Polynomial:
    """Sum an iterable of polynomials (empty sum is 0)."""
    return reduce(Polynomial.add, polys, Polynomial.zero())


def polynomial_product(polys: Iterable[Polynomial]) -> Polynomial:
    """Multiply an iterable of polynomials (empty product is 1)."""
    return reduce(Polynomial.mul, polys, Polynomial.one())
