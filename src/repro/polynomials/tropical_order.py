"""Deciding the polynomial order for tropical semirings (Prop. 4.19).

Under ``T+`` a monomial with exponent vector ``e`` evaluates to the
linear form ``ℓ(a) = Σ e_i·a_i`` (coefficients ``≥ 1`` are absorbed by
``min``), and a polynomial to the *minimum* of its forms; under ``T−``
to the *maximum*.  The orders to decide are

* ``P1 ≼T+ P2``  iff ``Eval(P2)(a) ≤ Eval(P1)(a)`` for all ``a`` over
  ``N0 ∪ {∞}``  (the natural order of min-plus is reversed numeric), and
* ``P1 ≼T− P2``  iff ``Eval(P1)(a) ≤ Eval(P2)(a)`` for all ``a`` over
  ``N0 ∪ {−∞}``.

Both reduce to pointwise dominance between min- (resp. max-) of
homogeneous linear forms.  Infinite coordinates are handled by a subset
split (a variable at ``±∞`` simply deletes the monomials using it);
finite dominance is decided *exactly* by linear programming: the forms
are homogeneous, so a real violating point scales to an integer one and
strict gaps can be normalized to ``≥ 1``.  The paper only proves a
PSPACE bound for these orders — any sound and complete procedure
reproduces Prop. 4.19; LP gives a polynomial-time one for the fixed
query sizes of interest.

A bounded grid checker (:func:`grid_violation`) cross-validates the LP
decisions in the test suite.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

import numpy as np
from scipy.optimize import linprog

from .polynomial import Polynomial

__all__ = [
    "min_plus_poly_leq",
    "max_plus_poly_leq",
    "grid_violation",
]


def _forms(poly: Polynomial, variables: Sequence[str],
           excluded: frozenset) -> list[np.ndarray]:
    """Exponent vectors of the monomials avoiding ``excluded``."""
    index = {var: position for position, var in enumerate(variables)}
    forms = []
    for mono, _coeff in poly.items():
        if mono.variables() & excluded:
            continue
        vector = np.zeros(len(variables))
        for var, exp in mono.powers:
            vector[index[var]] = exp
        forms.append(vector)
    return forms


def _feasible(constraints: list[np.ndarray], bounds: list[float]) -> bool:
    """Is there ``a ≥ 0`` with ``constraint · a ≤ bound`` for all rows?"""
    if not constraints:
        return True
    matrix = np.vstack(constraints)
    result = linprog(
        c=np.zeros(matrix.shape[1]),
        A_ub=matrix,
        b_ub=np.asarray(bounds),
        bounds=[(0, None)] * matrix.shape[1],
        method="highs",
    )
    return result.status == 0


def _min_plus_dominates(low_forms: list[np.ndarray],
                        high_forms: list[np.ndarray]) -> bool:
    """Check ``min(low) ≤ min(high)`` pointwise over ``a ≥ 0``.

    A violation needs a point where every ``low`` form strictly exceeds
    the minimum of ``high``; we guess the argmin ``h*`` of ``high`` and
    solve the LP  ``h* ≤ h`` (∀h ∈ high), ``h* + 1 ≤ l`` (∀l ∈ low).
    """
    for pivot in high_forms:
        constraints = [pivot - other for other in high_forms]
        bounds = [0.0] * len(high_forms)
        constraints.extend(pivot - low for low in low_forms)
        bounds.extend([-1.0] * len(low_forms))
        if _feasible(constraints, bounds):
            return False
    return True


def min_plus_poly_leq(p1: Polynomial, p2: Polynomial) -> bool:
    """Decide ``P1 ≼T+ P2``: min-plus ``P2`` dominates ``P1`` from below
    on every valuation over ``N0 ∪ {∞}``."""
    variables = tuple(sorted(p1.variables() | p2.variables()))
    for infinite in _subsets(variables):
        forms1 = _forms(p1, variables, infinite)
        forms2 = _forms(p2, variables, infinite)
        if not forms1:
            continue  # P1 evaluates to ∞ here: anything is below it
        if not forms2:
            return False  # P2 = ∞ must not exceed a finite P1
        if not _min_plus_dominates(forms2, forms1):
            return False
    return True


def max_plus_poly_leq(p1: Polynomial, p2: Polynomial) -> bool:
    """Decide ``P1 ≼T− P2``: max-plus ``P2`` dominates ``P1`` from above
    on every valuation over ``N0 ∪ {−∞}``."""
    variables = tuple(sorted(p1.variables() | p2.variables()))
    for infinite in _subsets(variables):
        forms1 = _forms(p1, variables, infinite)
        forms2 = _forms(p2, variables, infinite)
        if not forms1:
            continue  # P1 evaluates to −∞ here: below anything
        if not forms2:
            return False  # P2 = −∞ cannot dominate a finite P1
        # Violation: some form of P1 strictly exceeds every form of P2.
        for pivot in forms1:
            constraints = [form - pivot for form in forms2]
            bounds = [-1.0] * len(forms2)
            if _feasible(constraints, bounds):
                return False
    return True


def _subsets(variables: Sequence[str]) -> Iterable[frozenset]:
    for pattern in product((False, True), repeat=len(variables)):
        yield frozenset(
            var for var, chosen in zip(variables, pattern) if chosen
        )


def grid_violation(p1: Polynomial, p2: Polynomial, semiring,
                   bound: int = 4) -> dict | None:
    """Search a valuation grid for a witness of ``P1 ⋠K P2``.

    Tries all valuations with values in ``{0, …, bound} ∪ {0K}``.  Used
    to cross-validate the LP decisions (sound refutation; completeness
    only on the grid).
    """
    variables = tuple(sorted(p1.variables() | p2.variables()))
    values = tuple(range(bound + 1)) + (semiring.zero,)
    for assignment in product(values, repeat=len(variables)):
        valuation = dict(zip(variables, assignment))
        left = p1.eval_in(semiring, valuation)
        right = p2.eval_in(semiring, valuation)
        if not semiring.leq(left, right):
            return valuation
    return None
