"""Deciding the polynomial order for tropical semirings (Prop. 4.19).

Under ``T+`` a monomial with exponent vector ``e`` evaluates to the
linear form ``ℓ(a) = Σ e_i·a_i`` (coefficients ``≥ 1`` are absorbed by
``min``), and a polynomial to the *minimum* of its forms; under ``T−``
to the *maximum*.  The orders to decide are

* ``P1 ≼T+ P2``  iff ``Eval(P2)(a) ≤ Eval(P1)(a)`` for all ``a`` over
  ``N0 ∪ {∞}``  (the natural order of min-plus is reversed numeric), and
* ``P1 ≼T− P2``  iff ``Eval(P1)(a) ≤ Eval(P2)(a)`` for all ``a`` over
  ``N0 ∪ {−∞}``.

Both reduce to pointwise dominance between min- (resp. max-) of
homogeneous linear forms.  Infinite coordinates are handled by a subset
split (a variable at ``±∞`` simply deletes the monomials using it);
finite dominance is decided *exactly* by linear programming: the forms
are homogeneous, so a real violating point scales to an integer one and
strict gaps can be normalized to ``≥ 1``.  The paper only proves a
PSPACE bound for these orders — any sound and complete procedure
reproduces Prop. 4.19; LP gives a polynomial-time one for the fixed
query sizes of interest.

A bounded grid checker (:func:`grid_violation`) cross-validates the LP
decisions in the test suite.

Certificates
------------
Every decision can be packaged as a reusable
:class:`TropicalOrderCertificate` (see :func:`decide_poly_leq`) — the
piece that makes the decisions *memoizable* across processes.  The
certificate format:

``order``
    Which tropical order was decided: :data:`MIN_PLUS` (``≼T+``, also
    the Viterbi order through the ``−log`` isomorphism) or
    :data:`MAX_PLUS` (``≼T−``).
``key``
    The exact ``(P1, P2)`` pair the certificate speaks about —
    normally the *canonical* pair of
    :func:`repro.polynomials.admissible.canonical_pair`, so one
    certificate serves every renaming of the pair.
``holds``
    The decision.
``witness`` (``holds=False``)
    A violating valuation: ``(infinite, point)`` where ``infinite`` is
    the tuple of variables set to the order's infinity and ``point``
    assigns a natural number to every variable (positionally, in
    sorted-variable order; entries under ``infinite`` are ignored).
    Checking it is one evaluation of each side — no LP.
``witnesses`` (``holds=True``)
    Per-subset-split dominance witnesses: for every split where the
    decision ran LPs, one integer Farkas multiplier vector per pivot
    form, proving each violation LP infeasible.  By Farkas' lemma the
    system ``A·a ≤ b, a ≥ 0`` has no solution iff some ``y ≥ 0`` has
    ``yᵀA ≥ 0`` and ``yᵀb < 0`` — and *that* is checkable with exact
    integer arithmetic, again without touching the LP solver.

:func:`certificate_valid` is the cheap recall-time revalidation:
it re-derives the split systems from the pair itself and verifies the
stored witness arithmetic, so a tampered, stale or mis-keyed
certificate is rejected (and the caller falls back to the LP).  A
certificate is therefore *self-certifying*: trusting one never trusts
the cache, only integer arithmetic.

Certificates contain only polynomials, strings, ints and tuples — they
pickle under the restricted snapshot unpickler and round-trip through
:meth:`TropicalOrderCertificate.to_dict` for JSON transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from math import lcm
from typing import Iterable, Sequence

import numpy as np
from scipy.optimize import linprog

from .polynomial import Monomial, Polynomial

__all__ = [
    "MIN_PLUS",
    "MAX_PLUS",
    "TropicalOrderCertificate",
    "certificate_valid",
    "decide_poly_leq",
    "min_plus_poly_leq",
    "max_plus_poly_leq",
    "grid_violation",
]

#: The ``≼T+`` order (min-plus; also decides the Viterbi order).
MIN_PLUS = "min-plus"

#: The ``≼T−`` order (max-plus / schedule algebra).
MAX_PLUS = "max-plus"

#: ``Fraction.limit_denominator`` ladder used to recover the exact
#: rational LP vertex from the solver's floats before integer scaling.
_DENOMINATORS = (10 ** 6, 10 ** 9, 10 ** 12)


def _forms(poly: Polynomial, variables: Sequence[str],
           excluded: frozenset) -> list[tuple[int, ...]]:
    """Exponent vectors (as integer tuples) of the monomials avoiding
    ``excluded``, in the polynomial's deterministic monomial order."""
    index = {var: position for position, var in enumerate(variables)}
    forms = []
    for mono, _coeff in poly.items():
        if mono.variables() & excluded:
            continue
        vector = [0] * len(variables)
        for var, exp in mono.powers:
            vector[index[var]] = exp
        forms.append(tuple(vector))
    return forms


def _sub(left: tuple[int, ...], right: tuple[int, ...]) -> tuple[int, ...]:
    return tuple(a - b for a, b in zip(left, right))


def _feasible_point(constraints: list[tuple[int, ...]],
                    bounds: list[int]) -> tuple[float, ...] | None:
    """A point ``a ≥ 0`` with ``constraint · a ≤ bound`` for all rows,
    or ``None`` when the system is infeasible."""
    if not constraints:
        return ()
    width = len(constraints[0])
    if width == 0:
        # No finite variables: the only point is the empty one.
        return () if min(bounds) >= 0 else None
    matrix = np.asarray(constraints, dtype=float)
    result = linprog(
        c=np.zeros(width),
        A_ub=matrix,
        b_ub=np.asarray(bounds, dtype=float),
        bounds=[(0, None)] * width,
        method="highs",
    )
    if result.status != 0:
        return None
    return tuple(float(value) for value in result.x)


def _integer_candidates(point: Sequence[float]) -> Iterable[tuple[int, ...]]:
    """Integer scalings of a rational LP vertex, best guess first.

    The violation systems are homogeneous up to their ``≤ −1`` gap rows,
    so scaling a rational solution by the denominator LCM preserves
    feasibility — each candidate is *verified* by the caller, so a float
    round-off here can only cost a retry, never soundness.
    """
    if not point:
        yield ()
        return
    for denominator in _DENOMINATORS:
        fractions = [Fraction(value).limit_denominator(denominator)
                     for value in point]
        fractions = [frac if frac > 0 else Fraction(0) for frac in fractions]
        scale = lcm(*(frac.denominator for frac in fractions))
        yield tuple(int(frac * scale) for frac in fractions)
    yield tuple(max(0, round(value)) for value in point)


def _farkas_vector(constraints: list[tuple[int, ...]],
                   bounds: list[int]) -> tuple[int, ...] | None:
    """An integer Farkas certificate of infeasibility of
    ``A·a ≤ b, a ≥ 0``: some ``y ≥ 0`` with ``yᵀA ≥ 0`` and ``yᵀb < 0``.

    Solves the Farkas alternative as its own LP, then recovers exact
    integers through the denominator ladder, *verifying* each candidate
    with integer arithmetic — returns ``None`` only if no candidate
    survives (never an unsound vector).
    """
    rows = len(constraints)
    width = len(constraints[0]) if constraints else 0
    matrix = np.asarray(constraints, dtype=float).reshape(rows, width)
    system = np.vstack([-matrix.T,
                        np.asarray(bounds, dtype=float).reshape(1, rows)])
    result = linprog(
        c=np.zeros(rows),
        A_ub=system,
        b_ub=np.concatenate([np.zeros(width), [-1.0]]),
        bounds=[(0, None)] * rows,
        method="highs",
    )
    if result.status != 0:  # pragma: no cover - Farkas alternative exists
        return None
    for candidate in _integer_candidates(tuple(result.x)):
        if len(candidate) == rows and _farkas_checks(
                candidate, constraints, bounds):
            return candidate
    return None  # pragma: no cover - ladder failed to rationalize


def _farkas_checks(vector: Sequence[int],
                   constraints: list[tuple[int, ...]],
                   bounds: list[int]) -> bool:
    """Exact integer verification of a Farkas vector."""
    if len(vector) != len(constraints):
        return False
    if any((not isinstance(value, int)) or value < 0 for value in vector):
        return False
    width = len(constraints[0]) if constraints else 0
    for column in range(width):
        if sum(y * row[column]
               for y, row in zip(vector, constraints)) < 0:
            return False
    return sum(y * b for y, b in zip(vector, bounds)) < 0


def _violation_systems(order: str, forms1: list[tuple[int, ...]],
                       forms2: list[tuple[int, ...]]):
    """The per-pivot violation LPs of one subset split.

    ``P1 ≼ P2`` fails at a finite point exactly when one of these
    systems is feasible:

    * min-plus — guess the argmin ``h*`` of ``P1``'s forms and ask for
      ``h* ≤ h`` (∀h of ``P1``) with every form of ``P2`` at least
      ``h* + 1`` (then ``Eval(P2) > Eval(P1)``);
    * max-plus — guess the argmax ``h*`` of ``P1``'s forms and ask for
      every form of ``P2`` at most ``h* − 1``.
    """
    for pivot in forms1:
        if order == MIN_PLUS:
            constraints = [_sub(pivot, other) for other in forms1]
            bounds = [0] * len(forms1)
            constraints += [_sub(pivot, low) for low in forms2]
            bounds += [-1] * len(forms2)
        else:
            constraints = [_sub(form, pivot) for form in forms2]
            bounds = [-1] * len(forms2)
        yield constraints, bounds


def _split_value(forms: list[tuple[int, ...]], point: Sequence[int],
                 order: str) -> int | None:
    """Tropical value of one side at a finite point (``None`` = ±∞)."""
    if not forms:
        return None
    values = [sum(e * a for e, a in zip(form, point)) for form in forms]
    return min(values) if order == MIN_PLUS else max(values)


def _witness_violates(order: str, p1: Polynomial, p2: Polynomial,
                      variables: Sequence[str],
                      infinite: frozenset, point: Sequence[int]) -> bool:
    """Does the valuation (``infinite`` ↦ ±∞, else ``point``) refute
    ``P1 ≼ P2``?  Pure integer evaluation — the False-side revalidation."""
    value1 = _split_value(_forms(p1, variables, infinite), point, order)
    value2 = _split_value(_forms(p2, variables, infinite), point, order)
    if order == MIN_PLUS:
        # Violation: Eval(P2) > Eval(P1), where None means +∞.
        if value2 is None:
            return value1 is not None
        return value1 is not None and value2 > value1
    # Violation: Eval(P1) > Eval(P2), where None means −∞.
    if value1 is None:
        return False
    return value2 is None or value1 > value2


@dataclass(frozen=True)
class TropicalOrderCertificate:
    """A reusable, self-certifying record of one ``poly_leq`` decision.

    See the module docstring for the field contract.  Instances are
    immutable, hashable and picklable (only repro polynomial types and
    builtins inside), and :meth:`to_dict`/:meth:`from_dict` give a
    JSON-clean transport form.
    """

    order: str
    key: tuple[Polynomial, Polynomial]
    holds: bool
    witness: tuple | None = None
    witnesses: tuple | None = None

    @staticmethod
    def _poly_terms(poly: Polynomial) -> list:
        return [[coeff, [[var, exp] for var, exp in mono.powers]]
                for mono, coeff in poly.items()]

    @staticmethod
    def _terms_poly(terms) -> Polynomial:
        return Polynomial(
            (Monomial(tuple((var, exp) for var, exp in powers)), coeff)
            for coeff, powers in terms
        )

    def to_dict(self) -> dict:
        """JSON-clean representation (lists/strings/ints only)."""
        data: dict = {
            "order": self.order,
            "p1": self._poly_terms(self.key[0]),
            "p2": self._poly_terms(self.key[1]),
            "holds": self.holds,
        }
        if self.witness is not None:
            infinite, point = self.witness
            data["witness"] = {"infinite": list(infinite),
                               "point": list(point)}
        if self.witnesses is not None:
            data["witnesses"] = [
                {"infinite": list(infinite),
                 "farkas": [list(vector) for vector in vectors]}
                for infinite, vectors in self.witnesses
            ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TropicalOrderCertificate":
        """Inverse of :meth:`to_dict`."""
        witness = None
        if "witness" in data:
            witness = (tuple(data["witness"]["infinite"]),
                       tuple(data["witness"]["point"]))
        witnesses = None
        if "witnesses" in data:
            witnesses = tuple(
                (tuple(entry["infinite"]),
                 tuple(tuple(vector) for vector in entry["farkas"]))
                for entry in data["witnesses"]
            )
        return cls(
            order=data["order"],
            key=(cls._terms_poly(data["p1"]), cls._terms_poly(data["p2"])),
            holds=bool(data["holds"]),
            witness=witness,
            witnesses=witnesses,
        )


def certificate_valid(certificate, order: str,
                      p1: Polynomial, p2: Polynomial) -> bool:
    """Cheaply revalidate a recalled certificate against ``(p1, p2)``.

    True only when the certificate targets exactly this order and pair
    *and* its witness arithmetic checks out — a violating point must
    still violate, and the Farkas vectors must still prove every
    violation system of every split infeasible.  No LP is run; a stale
    or tampered certificate simply fails, and the caller recomputes.
    """
    if not isinstance(certificate, TropicalOrderCertificate):
        return False
    if certificate.order != order or order not in (MIN_PLUS, MAX_PLUS):
        return False
    if certificate.key != (p1, p2):
        return False
    variables = tuple(sorted(p1.variables() | p2.variables()))
    if not certificate.holds:
        if certificate.witness is None:
            return False
        infinite, point = certificate.witness
        if len(point) != len(variables):
            return False
        if not set(infinite) <= set(variables):
            return False
        if any((not isinstance(value, int)) or value < 0
               for value in point):
            return False
        return _witness_violates(order, p1, p2, variables,
                                 frozenset(infinite), point)
    if certificate.witnesses is None:
        return False
    by_split = dict(certificate.witnesses)
    for infinite in _subsets(variables):
        forms1 = _forms(p1, variables, infinite)
        forms2 = _forms(p2, variables, infinite)
        if not forms1:
            continue
        if not forms2:
            return False  # the decision would be False: holds is a lie
        vectors = by_split.get(tuple(sorted(infinite)))
        if vectors is None or len(vectors) != len(forms1):
            return False
        for vector, (constraints, bounds) in zip(
                vectors, _violation_systems(order, forms1, forms2)):
            if not _farkas_checks(vector, constraints, bounds):
                return False
    return True


def decide_poly_leq(order: str, p1: Polynomial, p2: Polynomial, *,
                    want_certificate: bool = True
                    ) -> tuple[bool, TropicalOrderCertificate | None]:
    """Decide ``P1 ≼ P2`` under ``order``; optionally certify it.

    Returns ``(holds, certificate)``.  The boolean is always the plain
    Prop. 4.19 LP decision — certification never changes the answer.
    The certificate is ``None`` when ``want_certificate`` is false, or
    in the (theoretically unreachable, defensively handled) event that
    an exact integer witness cannot be recovered from the solver's
    floats — callers then simply don't memoize the decision.
    """
    if order not in (MIN_PLUS, MAX_PLUS):
        raise ValueError(f"unknown tropical order {order!r}")
    variables = tuple(sorted(p1.variables() | p2.variables()))
    dominance: list[tuple] = []
    certifiable = want_certificate
    for infinite in _subsets(variables):
        forms1 = _forms(p1, variables, infinite)
        forms2 = _forms(p2, variables, infinite)
        if not forms1:
            continue  # P1 is already at the order's infinity: below/above
        if not forms2:
            # P2 degenerates to the wrong infinity against a finite P1.
            certificate = None
            if want_certificate:
                point = tuple(0 for _ in variables)
                certificate = TropicalOrderCertificate(
                    order=order, key=(p1, p2), holds=False,
                    witness=(tuple(sorted(infinite)), point))
            return False, certificate
        pivot_vectors: list[tuple[int, ...]] = []
        for constraints, bounds in _violation_systems(order, forms1, forms2):
            point = _feasible_point(constraints, bounds)
            if point is not None:
                certificate = None
                if want_certificate:
                    for candidate in _integer_candidates(point):
                        if _witness_violates(order, p1, p2, variables,
                                             infinite, candidate):
                            certificate = TropicalOrderCertificate(
                                order=order, key=(p1, p2), holds=False,
                                witness=(tuple(sorted(infinite)), candidate))
                            break
                return False, certificate
            if certifiable:
                vector = _farkas_vector(constraints, bounds)
                if vector is None:  # pragma: no cover - defensive
                    certifiable = False
                else:
                    pivot_vectors.append(vector)
        if certifiable:
            dominance.append((tuple(sorted(infinite)), tuple(pivot_vectors)))
    certificate = None
    if certifiable:
        certificate = TropicalOrderCertificate(
            order=order, key=(p1, p2), holds=True,
            witnesses=tuple(dominance))
    return True, certificate


def min_plus_poly_leq(p1: Polynomial, p2: Polynomial) -> bool:
    """Decide ``P1 ≼T+ P2``: min-plus ``P2`` dominates ``P1`` from below
    on every valuation over ``N0 ∪ {∞}``."""
    holds, _ = decide_poly_leq(MIN_PLUS, p1, p2, want_certificate=False)
    return holds


def max_plus_poly_leq(p1: Polynomial, p2: Polynomial) -> bool:
    """Decide ``P1 ≼T− P2``: max-plus ``P2`` dominates ``P1`` from above
    on every valuation over ``N0 ∪ {−∞}``."""
    holds, _ = decide_poly_leq(MAX_PLUS, p1, p2, want_certificate=False)
    return holds


def _subsets(variables: Sequence[str]) -> Iterable[frozenset]:
    for pattern in product((False, True), repeat=len(variables)):
        yield frozenset(
            var for var, chosen in zip(variables, pattern) if chosen
        )


def grid_violation(p1: Polynomial, p2: Polynomial, semiring,
                   bound: int = 4) -> dict | None:
    """Search a valuation grid for a witness of ``P1 ⋠K P2``.

    Tries all valuations with values in ``{0, …, bound} ∪ {0K}``.  Used
    to cross-validate the LP decisions in the test suite (sound
    refutation; completeness only on the grid).
    """
    variables = tuple(sorted(p1.variables() | p2.variables()))
    values = tuple(range(bound + 1)) + (semiring.zero,)
    for assignment in product(values, repeat=len(variables)):
        valuation = dict(zip(variables, assignment))
        left = p1.eval_in(semiring, valuation)
        right = p2.eval_in(semiring, valuation)
        if not semiring.leq(left, right):
            return valuation
    return None
