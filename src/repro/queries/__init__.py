"""Conjunctive queries, unions, complete descriptions and evaluation."""

from .atoms import Atom, Var, is_var
from .ccq import (CQWithInequalities, complete_description,
                  complete_description_ucq, set_partitions)
from .cq import CQ
from .evaluation import evaluate, evaluate_all, valuations
from .parser import ParseError, parse_cq, parse_ucq
from .serialize import query_from_dict, query_to_dict
from .ucq import UCQ, as_ucq

__all__ = [
    "Atom", "CQ", "CQWithInequalities", "ParseError", "UCQ", "Var",
    "as_ucq", "complete_description", "complete_description_ucq",
    "evaluate", "evaluate_all", "is_var", "parse_cq", "parse_ucq",
    "query_from_dict", "query_to_dict",
    "set_partitions", "valuations",
]
