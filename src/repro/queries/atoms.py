"""Terms and relational atoms.

A *term* is either a :class:`Var` (query variable) or a constant — any
other hashable Python value (strings, ints, ...).  An :class:`Atom` is a
relation name applied to a tuple of terms.  Both are immutable and
totally ordered so that multisets of atoms can be canonicalized by
sorting.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["Var", "Atom", "is_var", "term_sort_key", "variables_of_terms"]


class Var:
    """A query variable, identified by its name."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)
        # Precomputed: Vars key the binding dicts of the homomorphism
        # search, where per-lookup tuple hashing is measurable.
        object.__setattr__(self, "_hash", hash(("Var", name)))

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Var is immutable")

    def __reduce__(self):
        # Slotted + immutable: rebuild through the constructor so pickled
        # variables (worker-pool requests, cache snapshots) stay valid.
        return (Var, (self.name,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Var") -> bool:
        return self.name < other.name

    def __repr__(self) -> str:
        return self.name


def is_var(term: Any) -> bool:
    """True iff ``term`` is a query variable."""
    return isinstance(term, Var)


def term_sort_key(term: Any) -> tuple:
    """A total-order key over mixed variables and constants."""
    if is_var(term):
        return (0, term.name)
    return (1, str(type(term).__name__), repr(term))


def variables_of_terms(terms: Iterable[Any]) -> tuple[Var, ...]:
    """The distinct variables among ``terms``, in first-occurrence order."""
    seen: dict[Var, None] = {}
    for term in terms:
        if is_var(term) and term not in seen:
            seen[term] = None
    return tuple(seen)


class Atom:
    """A relational atom ``R(t1, …, tm)`` over variables and constants."""

    __slots__ = ("relation", "terms", "_hash")

    def __init__(self, relation: str, terms: Iterable[Any]):
        if not relation:
            raise ValueError("relation name must be non-empty")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        object.__setattr__(self, "_hash", hash((relation, self.terms)))

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Atom is immutable")

    def __reduce__(self):
        return (Atom, (self.relation, self.terms))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    def variables(self) -> tuple[Var, ...]:
        """Distinct variables of the atom, in first-occurrence order."""
        return variables_of_terms(self.terms)

    def substitute(self, mapping) -> "Atom":
        """Apply a variable substitution (variables absent from
        ``mapping`` are kept)."""
        return Atom(
            self.relation,
            tuple(
                mapping.get(term, term) if is_var(term) else term
                for term in self.terms
            ),
        )

    def sort_key(self) -> tuple:
        """Total-order key for canonicalizing atom multisets."""
        return (self.relation, len(self.terms),
                tuple(term_sort_key(term) for term in self.terms))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Atom) and self.relation == other.relation
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Atom") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        args = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({args})"
