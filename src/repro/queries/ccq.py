"""CQs with inequalities, complete CQs and complete descriptions.

A *CQ with inequalities* attaches ``≠`` constraints to pairs of
variables; it is *complete* (a CCQ) when every pair of distinct
existential variables is constrained (Sec. 4.6).

The *complete description* ``⟨Q⟩`` of a CQ ``Q`` is the multiset of CCQs
obtained by, for every partition ``π`` of the existential variables,
identifying the variables inside each block and making all surviving
pairs explicitly unequal.  ``⟨Q⟩`` is equivalent to ``Q`` over every
semiring (Sec. 5) because the valuations of ``Q`` split exactly by their
equality pattern on existential variables; it is the workhorse of the
UCQ procedures (``→֒k``, ``։∞``, ``⇉2``) and of the small-model theorem.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from .atoms import Atom, Var
from .cq import CQ

__all__ = [
    "CQWithInequalities",
    "complete_description",
    "complete_description_ucq",
    "set_partitions",
]


class CQWithInequalities(CQ):
    """A CQ plus a set of variable inequalities.

    ``inequalities`` is a frozenset of two-element frozensets of
    variables; each constrains its pair to take distinct values in every
    valuation.
    """

    __slots__ = ("inequalities",)

    def __init__(self, head: Iterable[Var], atoms: Iterable[Atom],
                 inequalities: Iterable[Iterable[Var]] = ()):
        pairs = []
        for pair in inequalities:
            pair = frozenset(pair)
            if len(pair) != 2:
                raise ValueError(
                    f"inequality must relate two distinct variables: {pair}")
            pairs.append(pair)
        super().__init__(head, atoms)
        known = set(self.variables())
        for pair in pairs:
            for var in pair:
                if var not in known:
                    raise ValueError(
                        f"inequality variable {var!r} not in the query")
        object.__setattr__(self, "inequalities", frozenset(pairs))
        object.__setattr__(
            self, "_hash", hash((self.head, self.atoms, self.inequalities)))

    def __reduce__(self):
        # Overrides CQ's hook: the inequality pairs must travel too.
        return (_restore_ccq,
                (self.head, self.atoms, self.inequalities))

    # -- structure ------------------------------------------------------

    def is_complete(self) -> bool:
        """True iff every pair of distinct existential variables is
        constrained (the query is a CCQ)."""
        existential = self.existential_vars()
        return all(
            frozenset((x, y)) in self.inequalities
            for i, x in enumerate(existential)
            for y in existential[i + 1:]
        )

    def respects(self, assignment: Mapping[Var, Any]) -> bool:
        """True iff ``assignment`` gives distinct values to every
        constrained pair (variables missing from the assignment are
        ignored)."""
        for pair in self.inequalities:
            x, y = tuple(pair)
            if x in assignment and y in assignment:
                if assignment[x] == assignment[y]:
                    return False
        return True

    # -- transformation --------------------------------------------------

    def substitute(self, mapping: Mapping[Var, Any]) -> "CQWithInequalities":
        """Substitute variables; constrained pairs must stay distinct."""
        new_pairs = []
        for pair in self.inequalities:
            x, y = tuple(pair)
            new_x, new_y = mapping.get(x, x), mapping.get(y, y)
            if new_x == new_y:
                raise ValueError(
                    f"substitution collapses constrained pair {x!r} ≠ {y!r}")
            new_pairs.append((new_x, new_y))
        new_head = tuple(mapping.get(var, var) for var in self.head)
        return CQWithInequalities(
            new_head,
            (atom.substitute(mapping) for atom in self.atoms),
            new_pairs,
        )

    def drop_inequalities(self) -> CQ:
        """The underlying plain CQ."""
        return CQ(self.head, self.atoms)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CQWithInequalities)
                and self.head == other.head and self.atoms == other.atoms
                and self.inequalities == other.inequalities)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        base = super().__repr__()
        if not self.inequalities:
            return base
        constraints = ", ".join(
            f"{x!r} ≠ {y!r}" for x, y in
            sorted(tuple(sorted(pair)) for pair in self.inequalities)
        )
        return f"{base}, {constraints}"


def _restore_ccq(head: tuple, atoms: tuple,
                 inequalities: frozenset) -> CQWithInequalities:
    """Unpickling fast path, mirroring :func:`repro.queries.cq._restore_cq`."""
    self = CQWithInequalities._from_canonical(head, atoms)
    object.__setattr__(self, "inequalities", inequalities)
    object.__setattr__(
        self, "_hash", hash((head, atoms, inequalities)))
    return self


def set_partitions(items: tuple) -> Iterator[tuple[tuple, ...]]:
    """Enumerate all set partitions of ``items`` (Bell-number many).

    Each partition is a tuple of blocks; each block a tuple of items in
    the original order.  Deterministic enumeration order.
    """
    items = tuple(items)
    if not items:
        yield ()
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        # first joins an existing block …
        for index, block in enumerate(partition):
            yield (partition[:index] + ((first,) + block,)
                   + partition[index + 1:])
        # … or forms its own.
        yield ((first,),) + partition


def _quotient(query: CQ, partition: tuple[tuple[Var, ...], ...]) -> CQWithInequalities:
    """Identify variables inside each block and attach all inequalities
    between the surviving representatives."""
    mapping: dict[Var, Var] = {}
    representatives: list[Var] = []
    for block in partition:
        representative = min(block)
        representatives.append(representative)
        for var in block:
            mapping[var] = representative
    atoms = tuple(atom.substitute(mapping) for atom in query.atoms)
    pairs = [
        (x, y)
        for i, x in enumerate(representatives)
        for y in representatives[i + 1:]
    ]
    return CQWithInequalities(query.head, atoms, pairs)


def complete_description(query: CQ) -> tuple[CQWithInequalities, ...]:
    """The complete description ``⟨Q⟩`` of a CQ (Sec. 4.6).

    One CCQ per partition of the existential variables; the result is a
    multiset (tuple), possibly containing isomorphic members.  A CCQ
    input is returned as the singleton multiset of itself.
    """
    if isinstance(query, CQWithInequalities):
        if not query.is_complete():
            raise ValueError(
                "complete descriptions of partially-constrained queries "
                "are not defined by the paper")
        return (query,)
    return tuple(
        _quotient(query, partition)
        for partition in set_partitions(query.existential_vars())
    )


def complete_description_ucq(queries: Iterable[CQ]) -> tuple[CQWithInequalities, ...]:
    """The complete description of a UCQ: the disjoint (multiset) union
    of the complete descriptions of its members (Sec. 5.2)."""
    result: list[CQWithInequalities] = []
    for query in queries:
        result.extend(complete_description(query))
    return tuple(result)
