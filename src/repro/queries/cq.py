"""Conjunctive queries (CQs).

A CQ ``Q = ∃v φ(u, v)`` has a list ``u`` of free (head) variables and a
*multiset* ``φ`` of atoms; the remaining variables ``v`` are existential
(Sec. 2 of the paper).  Multiset bodies matter: under most annotation
semirings ``R(x, y), R(x, y)`` is *not* equivalent to ``R(x, y)``.

Queries are immutable; the atom multiset is canonicalized by sorting, so
structural equality is multiset equality.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .atoms import Atom, Var, is_var

__all__ = ["CQ"]


class CQ:
    """An immutable conjunctive query with a multiset body.

    ``head`` is the tuple of free variables (duplicates allowed, order
    significant); every free variable must occur in the body, as the
    paper requires (``u1 ∪ … ∪ un = u``).
    """

    __slots__ = ("head", "atoms", "_hash", "_hom_cache")

    def __init__(self, head: Iterable[Var], atoms: Iterable[Atom]):
        head = tuple(head)
        atoms = tuple(sorted(atoms))
        for var in head:
            if not is_var(var):
                raise TypeError(f"head terms must be variables, got {var!r}")
        if not atoms:
            raise ValueError(
                "a CQ needs at least one atom (the empty *UCQ* models the "
                "constantly-0 query)")
        body_vars = {v for atom in atoms for v in atom.variables()}
        missing = [v for v in head if v not in body_vars]
        if missing:
            raise ValueError(
                f"free variables {missing} do not occur in the body")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "_hash", hash((head, atoms)))
        # Lazily populated by repro.homomorphisms.search with immutable
        # per-query matching structures (queries are shared freely, so
        # the derived indexes are too).
        object.__setattr__(self, "_hom_cache", {})

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("CQ is immutable")

    def __reduce__(self):
        # Rebuild through the trusted fast path: the default slot-based
        # pickle would trip the immutability guard, re-validating via
        # the constructor is measurable at snapshot scale (tens of
        # thousands of queries), and the derived matching structures in
        # ``_hom_cache`` are per-process anyway.
        return (_restore_cq, (self.head, self.atoms))

    @classmethod
    def _from_canonical(cls, head: tuple, atoms: tuple) -> "CQ":
        """Rebuild from already-validated, already-sorted parts.

        The unpickling fast path: skips sorting and the head/body
        checks, which the pickling process already established.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "_hash", hash((head, atoms)))
        object.__setattr__(self, "_hom_cache", {})
        return self

    # -- structure ------------------------------------------------------

    @property
    def arity(self) -> int:
        """Arity of the query head."""
        return len(self.head)

    def head_vars(self) -> tuple[Var, ...]:
        """Distinct free variables, in head order."""
        seen: dict[Var, None] = {}
        for var in self.head:
            seen.setdefault(var, None)
        return tuple(seen)

    def variables(self) -> tuple[Var, ...]:
        """All distinct variables (free first, then existential, sorted)."""
        return self.head_vars() + self.existential_vars()

    def existential_vars(self) -> tuple[Var, ...]:
        """Sorted tuple of existential (non-head) variables."""
        head = set(self.head)
        body_vars = {v for atom in self.atoms for v in atom.variables()}
        return tuple(sorted(body_vars - head))

    def constants(self) -> tuple:
        """All distinct constants of the body, sorted by representation."""
        consts = {
            term for atom in self.atoms for term in atom.terms
            if not is_var(term)
        }
        return tuple(sorted(consts, key=repr))

    def schema(self) -> dict[str, int]:
        """Relation name → arity map of the body."""
        schema: dict[str, int] = {}
        for atom in self.atoms:
            arity = schema.setdefault(atom.relation, atom.arity)
            if arity != atom.arity:
                raise ValueError(
                    f"inconsistent arity for relation {atom.relation}")
        return schema

    def atom_multiset(self) -> dict[Atom, int]:
        """Multiplicity map of the body atoms."""
        counts: dict[Atom, int] = {}
        for atom in self.atoms:
            counts[atom] = counts.get(atom, 0) + 1
        return counts

    # -- transformation --------------------------------------------------

    def substitute(self, mapping: Mapping[Var, Any]) -> "CQ":
        """Apply a variable substitution to head and body.

        Head variables must stay variables (containment compares queries
        with the same free tuple).
        """
        new_head = tuple(mapping.get(var, var) for var in self.head)
        return CQ(new_head, (atom.substitute(mapping) for atom in self.atoms))

    def rename_apart(self, suffix: str) -> "CQ":
        """Uniformly rename all variables by appending ``suffix``."""
        mapping = {var: Var(var.name + suffix) for var in self.variables()}
        return self.substitute(mapping)

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, CQ) and type(other) is type(self)
                and self.head == other.head and self.atoms == other.atoms)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head)
        body = ", ".join(repr(atom) for atom in self.atoms)
        return f"Q({head}) :- {body}"


def _restore_cq(head: tuple, atoms: tuple) -> CQ:
    """Module-level unpickling hook for :meth:`CQ._from_canonical`."""
    return CQ._from_canonical(head, atoms)
