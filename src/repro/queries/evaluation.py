"""Query evaluation over K-instances (Sec. 2, "Evaluations").

For a CQ ``Q = ∃v R1(u1,v1), …, Rn(un,vn)``, instance ``I`` and tuple
``t``::

    Q^I(t)  =  Σ_{f ∈ V(Q,t)}  Π_i  Ri^I(f(ui, vi))

where ``V(Q, t)`` contains every mapping of the query's variables to the
domain with ``f(u) = t``.  Only mappings that send every atom into the
support contribute, so the sum is computed by a backtracking join over
the support.  For CQs with inequalities, ``V(Q, t)`` keeps only mappings
giving constrained pairs distinct values.  A UCQ evaluates to the sum of
its members; the empty UCQ evaluates to ``0``.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..data.instance import Instance
from .atoms import is_var
from .ccq import CQWithInequalities
from .cq import CQ
from .ucq import UCQ

__all__ = ["valuations", "evaluate", "evaluate_all"]


def valuations(query: CQ, instance: Instance,
               target: tuple | None = None) -> Iterator[dict]:
    """Enumerate the support-hitting members of ``V(Q, target)``.

    Yields variable assignments under which every atom lands on a
    supported tuple (all other mappings contribute ``0`` to the sum).
    With ``target=None`` the head is unconstrained — used to enumerate
    all answers at once.
    """
    assignment: dict = {}
    if target is not None:
        target = tuple(target)
        if len(target) != query.arity:
            raise ValueError(
                f"target arity {len(target)} ≠ query arity {query.arity}")
        for var, value in zip(query.head, target):
            if assignment.setdefault(var, value) != value:
                return  # repeated head variable with clashing values
    constraints = (query.respects
                   if isinstance(query, CQWithInequalities) else None)
    if constraints is not None and not constraints(assignment):
        return
    atoms = sorted(query.atoms, key=lambda atom: -len(atom.variables()))
    yield from _extend(atoms, 0, assignment, instance, constraints)


def _extend(atoms, index: int, assignment: dict, instance: Instance,
            constraints) -> Iterator[dict]:
    if index == len(atoms):
        yield dict(assignment)
        return
    atom = atoms[index]
    for row, _annotation in instance.support(atom.relation):
        if len(row) != atom.arity:
            continue
        bound: list = []
        ok = True
        for term, value in zip(atom.terms, row):
            if is_var(term):
                if term in assignment:
                    if assignment[term] != value:
                        ok = False
                        break
                else:
                    assignment[term] = value
                    bound.append(term)
            elif term != value:
                ok = False
                break
        if ok and (constraints is None or constraints(assignment)):
            yield from _extend(atoms, index + 1, assignment, instance,
                               constraints)
        for term in bound:
            del assignment[term]


def _evaluate_cq(query: CQ, instance: Instance, target: tuple,
                 semiring) -> Any:
    return semiring.sum(
        semiring.prod(
            instance.annotation(atom.relation,
                                tuple(
                                    valuation.get(term, term)
                                    for term in atom.terms
                                ))
            for atom in query.atoms
        )
        for valuation in valuations(query, instance, target)
    )


def evaluate(query, instance: Instance, target: tuple | None = None,
             semiring=None) -> Any:
    """Evaluate a CQ or UCQ on ``instance`` for ``target``.

    ``semiring`` defaults to the instance's semiring.  ``target`` may be
    omitted for boolean (arity-0) queries.
    """
    semiring = semiring or instance.semiring
    if target is None:
        target = ()
    if isinstance(query, UCQ):
        return semiring.sum(
            _evaluate_cq(cq, instance, target, semiring) for cq in query
        )
    if isinstance(query, CQ):
        return _evaluate_cq(query, instance, target, semiring)
    raise TypeError(f"expected CQ or UCQ, got {type(query).__name__}")


def evaluate_all(query, instance: Instance,
                 semiring=None) -> dict[tuple, Any]:
    """All answers: map from head tuples to non-zero annotations."""
    semiring = semiring or instance.semiring
    members = query if isinstance(query, UCQ) else (query,)
    answers: dict[tuple, Any] = {}
    for cq in members:
        for valuation in valuations(cq, instance, None):
            head = tuple(valuation[var] for var in cq.head)
            value = semiring.prod(
                instance.annotation(
                    atom.relation,
                    tuple(valuation.get(term, term) for term in atom.terms))
                for atom in cq.atoms
            )
            if head in answers:
                answers[head] = semiring.add(answers[head], value)
            else:
                answers[head] = value
    return {
        head: value for head, value in answers.items()
        if not semiring.is_zero(value)
    }
