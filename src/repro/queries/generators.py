"""Random query generators for tests and benchmarks.

The generators produce small CQs/UCQs with tunable shape (relations,
arities, atom count, free variables), biased toward the structures that
stress the containment procedures: shared variables, duplicate atoms
(multiset bodies!), self-joins, and head repetitions.
"""

from __future__ import annotations

import random
from typing import Sequence

from .atoms import Atom, Var
from .cq import CQ
from .ucq import UCQ

__all__ = ["random_cq", "random_ucq", "random_query_pair"]

DEFAULT_SCHEMA = (("R", 2), ("S", 1))


def random_cq(rng: random.Random,
              schema: Sequence[tuple[str, int]] = DEFAULT_SCHEMA,
              max_atoms: int = 3,
              max_vars: int = 3,
              head_arity: int = 0,
              duplicate_bias: float = 0.25) -> CQ:
    """A random CQ over ``schema``.

    ``duplicate_bias`` is the probability of repeating an existing atom
    verbatim (exercising multiset semantics).  Head variables are drawn
    from the body variables after the body is generated, so the CQ
    validity invariant (free ⊆ body) holds by construction.
    """
    variables = [Var(f"v{i}") for i in range(max_vars)]
    atom_count = rng.randint(1, max_atoms)
    atoms: list[Atom] = []
    for _ in range(atom_count):
        if atoms and rng.random() < duplicate_bias:
            atoms.append(rng.choice(atoms))
            continue
        relation, arity = rng.choice(tuple(schema))
        atoms.append(Atom(relation,
                          tuple(rng.choice(variables) for _ in range(arity))))
    body_vars = sorted({v for atom in atoms for v in atom.variables()})
    head = tuple(rng.choice(body_vars) for _ in range(head_arity))
    return CQ(head, atoms)


def random_ucq(rng: random.Random,
               schema: Sequence[tuple[str, int]] = DEFAULT_SCHEMA,
               max_members: int = 3,
               max_atoms: int = 2,
               max_vars: int = 3,
               head_arity: int = 0) -> UCQ:
    """A random UCQ with 1..max_members random CQs."""
    members = rng.randint(1, max_members)
    return UCQ(tuple(
        random_cq(rng, schema, max_atoms, max_vars, head_arity)
        for _ in range(members)
    ))


def random_query_pair(rng: random.Random, ucq: bool = False,
                      head_arity: int = 0, **kwargs):
    """A pair of random queries of the same shape, suitable as a
    containment problem instance."""
    if ucq:
        return (random_ucq(rng, head_arity=head_arity, **kwargs),
                random_ucq(rng, head_arity=head_arity, **kwargs))
    return (random_cq(rng, head_arity=head_arity, **kwargs),
            random_cq(rng, head_arity=head_arity, **kwargs))
