"""A small Datalog-style query parser.

Grammar (whitespace-insensitive)::

    query  ::= head ":-" literal ("," literal)*
    head   ::= NAME "(" terms? ")"
    literal::= atom | ineq
    atom   ::= NAME "(" terms ")"
    ineq   ::= term "!=" term
    term   ::= NAME        (variable)
             | NUMBER      (integer constant)
             | "'" ... "'" (string constant)

Examples::

    parse_cq("Q(x) :- R(x, y), S(y, 'berlin')")
    parse_cq("Q() :- R(u, v), R(u, w), u != v")
    parse_ucq(["Q(x) :- R(x, x)", "Q(x) :- S(x)"])

Inequalities promote the result to
:class:`~repro.queries.ccq.CQWithInequalities`.
"""

from __future__ import annotations

import re
from typing import Iterable

from .atoms import Atom, Var
from .ccq import CQWithInequalities
from .cq import CQ
from .ucq import UCQ

__all__ = ["parse_cq", "parse_ucq", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed query text."""


_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<number>-?\d+)"
    r"|(?P<string>'[^']*')"
    r"|(?P<punct>:-|!=|[(),]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if not match:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize at: {remainder[:25]!r}")
        position = match.end()
        for kind in ("name", "number", "string", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _Cursor:
    def __init__(self, tokens: list[tuple[str, str]], text: str):
        self.tokens = tokens
        self.index = 0
        self.text = text

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def pop(self, expected: str | None = None) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of query: {self.text!r}")
        if expected is not None and token[1] != expected:
            raise ParseError(
                f"expected {expected!r}, got {token[1]!r} in {self.text!r}")
        self.index += 1
        return token


def _parse_term(cursor: _Cursor):
    kind, value = cursor.pop()
    if kind == "name":
        return Var(value)
    if kind == "number":
        return int(value)
    if kind == "string":
        return value[1:-1]
    raise ParseError(f"expected a term, got {value!r}")


def _parse_term_list(cursor: _Cursor) -> list:
    cursor.pop("(")
    terms: list = []
    if cursor.peek() == ("punct", ")"):
        cursor.pop(")")
        return terms
    terms.append(_parse_term(cursor))
    while cursor.peek() == ("punct", ","):
        cursor.pop(",")
        terms.append(_parse_term(cursor))
    cursor.pop(")")
    return terms


def parse_cq(text: str) -> CQ:
    """Parse a single CQ (with optional ``!=`` constraints)."""
    cursor = _Cursor(_tokenize(text), text)
    kind, _head_name = cursor.pop()
    if kind != "name":
        raise ParseError(f"query must start with a head name: {text!r}")
    head_terms = _parse_term_list(cursor)
    for term in head_terms:
        if not isinstance(term, Var):
            raise ParseError(f"head terms must be variables: {term!r}")
    cursor.pop(":-")
    atoms: list[Atom] = []
    inequalities: list[tuple] = []
    while True:
        token = cursor.peek()
        if token is None:
            break
        kind, value = token
        if kind != "name" and kind != "number" and kind != "string":
            raise ParseError(f"expected a literal, got {value!r}")
        if kind == "name" and cursor.index + 1 < len(cursor.tokens) \
                and cursor.tokens[cursor.index + 1] == ("punct", "("):
            cursor.pop()
            terms = _parse_term_list(cursor)
            atoms.append(Atom(value, terms))
        else:
            left = _parse_term(cursor)
            cursor.pop("!=")
            right = _parse_term(cursor)
            if not isinstance(left, Var) or not isinstance(right, Var):
                raise ParseError("inequalities must relate variables")
            inequalities.append((left, right))
        if cursor.peek() == ("punct", ","):
            cursor.pop(",")
        else:
            break
    if cursor.peek() is not None:
        raise ParseError(f"trailing tokens in {text!r}")
    if not atoms:
        raise ParseError(f"query body has no atoms: {text!r}")
    if inequalities:
        return CQWithInequalities(head_terms, atoms, inequalities)
    return CQ(head_terms, atoms)


def parse_ucq(texts: Iterable[str]) -> UCQ:
    """Parse a UCQ from one query string per member."""
    return UCQ(tuple(parse_cq(text) for text in texts))
