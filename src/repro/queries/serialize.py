"""JSON-able serialization of queries.

Workloads, regression corpora and cross-tool exchanges need queries on
disk.  The format distinguishes variables from constants explicitly
(``{"var": "x"}`` vs ``{"const": 3}``), keeps atom multiplicity, and
round-trips CQs, CQs-with-inequalities and UCQs losslessly::

    data = query_to_dict(query)
    json.dumps(data)                      # plain lists/dicts/strings
    query == query_from_dict(data)        # True
"""

from __future__ import annotations

from typing import Any

from .atoms import Atom, Var, is_var
from .ccq import CQWithInequalities
from .cq import CQ
from .ucq import UCQ

__all__ = ["query_to_dict", "query_from_dict", "term_to_dict",
           "term_from_dict"]


def term_to_dict(term) -> dict:
    """Serialize one term: ``{"var": name}`` or ``{"const": value}``.

    The single wire encoding for terms, shared by query serialization
    and the certificate documents of :mod:`repro.api.documents`.
    """
    if is_var(term):
        return {"var": term.name}
    return {"const": term}


def term_from_dict(data: dict):
    """Inverse of :func:`term_to_dict`."""
    if "var" in data:
        return Var(data["var"])
    if "const" in data:
        return data["const"]
    raise ValueError(f"not a term: {data!r}")


# Back-compat private aliases (internal callers predate the public names).
_term_to_dict = term_to_dict
_term_from_dict = term_from_dict


def query_to_dict(query) -> dict[str, Any]:
    """Serialize a CQ, CCQ or UCQ to plain JSON-able data."""
    if isinstance(query, UCQ):
        return {
            "kind": "ucq",
            "members": [query_to_dict(member) for member in query],
        }
    if isinstance(query, CQ):
        data: dict[str, Any] = {
            "kind": "cq",
            "head": [_term_to_dict(var) for var in query.head],
            "atoms": [
                {
                    "relation": atom.relation,
                    "terms": [_term_to_dict(term) for term in atom.terms],
                }
                for atom in query.atoms
            ],
        }
        inequalities = getattr(query, "inequalities", None)
        if inequalities:
            data["kind"] = "ccq"
            data["inequalities"] = sorted(
                sorted(var.name for var in pair) for pair in inequalities
            )
        return data
    raise TypeError(f"cannot serialize {type(query).__name__}")


def query_from_dict(data: dict) -> CQ | UCQ:
    """Inverse of :func:`query_to_dict`."""
    kind = data.get("kind")
    if kind == "ucq":
        return UCQ(tuple(query_from_dict(member)
                         for member in data["members"]))
    if kind in ("cq", "ccq"):
        head = tuple(_term_from_dict(term) for term in data["head"])
        atoms = tuple(
            Atom(entry["relation"],
                 tuple(_term_from_dict(term) for term in entry["terms"]))
            for entry in data["atoms"]
        )
        if kind == "ccq" or data.get("inequalities"):
            pairs = [
                (Var(first), Var(second))
                for first, second in data.get("inequalities", ())
            ]
            return CQWithInequalities(head, atoms, pairs)
        return CQ(head, atoms)
    raise ValueError(f"unknown query kind: {kind!r}")
