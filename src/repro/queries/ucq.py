"""Unions of conjunctive queries (UCQs).

A UCQ is a *multiset* of CQs of the same arity over the same schema
(Sec. 2).  The empty UCQ is allowed and evaluates to ``0`` everywhere —
requirement (C3) makes it the bottom query.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .cq import CQ

__all__ = ["UCQ"]


class UCQ:
    """An immutable multiset of same-arity CQs."""

    __slots__ = ("cqs", "_hash")

    def __init__(self, cqs: Iterable[CQ] = ()):
        cqs = tuple(cqs)
        arities = {cq.arity for cq in cqs}
        if len(arities) > 1:
            raise ValueError(f"members must share one arity, got {arities}")
        schema: dict[str, int] = {}
        for cq in cqs:
            for relation, arity in cq.schema().items():
                known = schema.setdefault(relation, arity)
                if known != arity:
                    raise ValueError(
                        f"inconsistent arity for relation {relation}")
        object.__setattr__(self, "cqs", tuple(sorted(cqs, key=_cq_key)))
        object.__setattr__(self, "_hash", hash(self.cqs))

    def __setattr__(self, *args) -> None:  # pragma: no cover - immutability
        raise AttributeError("UCQ is immutable")

    def __reduce__(self):
        return (UCQ, (self.cqs,))

    # -- structure ------------------------------------------------------

    @property
    def arity(self) -> int:
        """Arity of the members (0 for the empty UCQ)."""
        return self.cqs[0].arity if self.cqs else 0

    def is_empty(self) -> bool:
        """True iff this is the empty UCQ (constantly ``0``)."""
        return not self.cqs

    def schema(self) -> dict[str, int]:
        """Relation name → arity map across all members."""
        schema: dict[str, int] = {}
        for cq in self.cqs:
            schema.update(cq.schema())
        return schema

    # -- operations -----------------------------------------------------

    def union(self, other: "UCQ") -> "UCQ":
        """Multiset union (requirement (C4) quantifies over these)."""
        return UCQ(self.cqs + other.cqs)

    def with_member(self, cq: CQ) -> "UCQ":
        """Add one more disjunct."""
        return UCQ(self.cqs + (cq,))

    # -- dunder ---------------------------------------------------------

    def __iter__(self) -> Iterator[CQ]:
        return iter(self.cqs)

    def __len__(self) -> int:
        return len(self.cqs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UCQ) and self.cqs == other.cqs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self.cqs:
            return "UCQ(∅)"
        return " ∪ ".join(f"[{cq!r}]" for cq in self.cqs)


def _cq_key(cq: CQ) -> tuple:
    """Deterministic ordering key for member CQs."""
    return (
        tuple(var.name for var in cq.head),
        tuple(atom.sort_key() for atom in cq.atoms),
        tuple(sorted(
            tuple(sorted(var.name for var in pair))
            for pair in getattr(cq, "inequalities", ())
        )),
    )


def as_ucq(query) -> UCQ:
    """Coerce a CQ or UCQ to a UCQ."""
    if isinstance(query, UCQ):
        return query
    if isinstance(query, CQ):
        return UCQ((query,))
    raise TypeError(f"expected CQ or UCQ, got {type(query).__name__}")
