"""Annotation semirings (Sec. 2-3 of the paper).

Exports the semiring interface, every built-in annotation domain and the
axiom auditor.
"""

from .absorptive import SORP, AbsorptivePolynomialSemiring
from .access import ACCESS, LEVELS, AccessControlSemiring
from .base import (INFINITE_OFFSET, Semiring, SemiringProperties,
                   check_positive_order_samples)
from .boolean import B, BooleanSemiring
from .fuzzy import FUZZY, FuzzySemiring
from .lineage import BOTTOM, LIN, LineageSemiring
from .lukasiewicz import LUKASIEWICZ, LukasiewiczSemiring
from .natural import (N, N2_SATURATING, N3_SATURATING, NaturalSemiring,
                      SaturatingNaturalSemiring)
from .posbool import POSBOOL, PosBoolSemiring
from .probability import EVENTS, EventSemiring
from .product import LIN_X_N2, ProductSemiring
from .properties import (AuditReport, audit, audit_declared_axioms,
                         audit_positivity, audit_semiring_laws)
from .provenance import BX, N2X, N3X, NX, ProvenancePolynomialSemiring
from .rationals import RPLUS, NonNegativeRationalSemiring
from .registry import (ALL_SEMIRINGS, DEFAULT_REGISTRY, SemiringRegistry,
                       get_semiring)
from .ssur_free import SSUR, SsurFreeSemiring
from .trio import TRIO, TrioSemiring
from .tropical import (TMINUS, TPLUS, TropicalMaxPlusSemiring,
                       TropicalMinPlusSemiring)
from .viterbi import VITERBI, ViterbiSemiring
from .why import WHY, WhySemiring

__all__ = [
    "ACCESS", "ALL_SEMIRINGS", "AbsorptivePolynomialSemiring",
    "AccessControlSemiring", "AuditReport", "B", "BOTTOM", "BX",
    "BooleanSemiring", "EVENTS", "EventSemiring", "FUZZY", "FuzzySemiring",
    "DEFAULT_REGISTRY", "INFINITE_OFFSET", "LEVELS", "LIN", "LIN_X_N2",
    "LUKASIEWICZ", "LineageSemiring", "ProductSemiring",
    "LukasiewiczSemiring", "N", "N2X", "N2_SATURATING", "N3X",
    "N3_SATURATING", "NX", "NaturalSemiring", "NonNegativeRationalSemiring",
    "POSBOOL", "PosBoolSemiring", "ProvenancePolynomialSemiring", "RPLUS",
    "SORP", "SSUR", "SaturatingNaturalSemiring", "Semiring",
    "SemiringProperties", "SemiringRegistry", "SsurFreeSemiring",
    "TMINUS", "TPLUS", "TRIO", "TrioSemiring", "TropicalMaxPlusSemiring",
    "TropicalMinPlusSemiring", "VITERBI", "ViterbiSemiring", "WHY",
    "WhySemiring", "audit", "audit_declared_axioms", "audit_positivity",
    "audit_semiring_laws", "check_positive_order_samples", "get_semiring",
]
