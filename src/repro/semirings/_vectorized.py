"""Concrete :class:`~repro.semirings.base.VectorizedOps` kernels.

This module is the only semiring-side code that imports numpy, and it
is only imported lazily from the ``vectorized_ops()`` hooks — the rest
of the semiring package stays importable without numpy installed.

Exactness is the whole point: the columnar evaluator promises answers
byte-identical to the tuple-at-a-time fold, so each kernel either
computes the same normalized Python values the scalar operations would,
or refuses.  Refusal is spelled ``OverflowError`` from :meth:`encode`
(or from an arithmetic kernel that detects int64 wraparound), which the
dispatcher in :mod:`repro.eval.kernels` catches to fall back to the
generic object-array path.  Silent wraparound never reaches an answer.

Covered semirings:

``N``
    int64 columns.  Addition guards ``a + b < a`` (non-negative domain)
    and multiplication guards the classic ``r // b != a`` check; segment
    sums pre-check ``max · count`` against 2**63.
``N_k``
    int64 columns.  Saturating folds are exact because
    ``min(min(a+b,k)+c, k) == min(a+b+c, k)``: the kernel clips the
    *true* sum once, so segment aggregation is a plain sum + clip.
``T+`` / ``T−``
    float64 columns — elements are small non-negative ints plus the
    semiring's infinity, and ⊗ is integer addition, so every value stays
    far below 2**53 where float64 arithmetic is exact.  Decode restores
    ``int`` for finite values and ``math.inf``/``-math.inf`` otherwise.
``B``
    bool columns; ``|`` / ``&`` / ``logical_or.reduceat``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from .base import VectorizedOps

__all__ = ["BooleanOps", "NaturalOps", "SaturatingNaturalOps",
           "TropicalMaxPlusOps", "TropicalMinPlusOps"]

#: Finite tropical costs must stay exactly representable (and leave
#: headroom for segment sums) in float64.
_TROPICAL_LIMIT = 2 ** 52


def _segments(group_ids: np.ndarray, group_count: int):
    """Row order + segment starts for ``ufunc.reduceat`` aggregation.

    ``group_ids`` assigns each row a group in ``range(group_count)``
    with every group populated (the ``return_inverse`` contract of
    :meth:`VectorizedOps.segment_add`).
    """
    order = np.argsort(group_ids, kind="stable")
    starts = np.searchsorted(group_ids[order], np.arange(group_count))
    return order, starts


class NaturalOps(VectorizedOps):
    """Exact int64 kernels for bag semantics ``N``."""

    dtype = np.int64

    def encode(self, values: Sequence[Any]) -> np.ndarray:
        # np.asarray raises OverflowError itself for ints beyond int64.
        return np.asarray(list(values), dtype=np.int64)

    def decode(self, array: np.ndarray) -> list:
        return [int(value) for value in array]

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = a + b
        if result.size and bool(np.any(result < a)):
            raise OverflowError("int64 overflow in N addition")
        return result

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = a * b
        nonzero = b != 0
        if result.size and bool(np.any(result[nonzero] // b[nonzero]
                                       != a[nonzero])):
            raise OverflowError("int64 overflow in N multiplication")
        return result

    def segment_add(self, values: np.ndarray, group_ids: np.ndarray,
                    group_count: int) -> np.ndarray:
        if not group_count:
            return np.zeros(0, dtype=np.int64)
        if int(values.max()) * values.size >= 2 ** 63:
            raise OverflowError("int64 overflow risk in N segment sum")
        order, starts = _segments(group_ids, group_count)
        return np.add.reduceat(values[order], starts)


class SaturatingNaturalOps(VectorizedOps):
    """int64 kernels for the saturating semirings ``N_k``."""

    dtype = np.int64

    def __init__(self, cap: int):
        self.cap = cap

    def encode(self, values: Sequence[Any]) -> np.ndarray:
        array = np.asarray(list(values), dtype=np.int64)
        if array.size and (int(array.min()) < 0
                           or int(array.max()) > self.cap):
            raise OverflowError(f"values outside N_{self.cap} range")
        return array

    def decode(self, array: np.ndarray) -> list:
        return [int(value) for value in array]

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # a, b ≤ cap so the true sum cannot overflow int64.
        return np.minimum(a + b, self.cap)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.minimum(a * b, self.cap)

    def segment_add(self, values: np.ndarray, group_ids: np.ndarray,
                    group_count: int) -> np.ndarray:
        if not group_count:
            return np.zeros(0, dtype=np.int64)
        # min(min(a+b,k)+c, k) == min(a+b+c, k): clip the true sum once.
        if self.cap * values.size >= 2 ** 63:
            raise OverflowError(
                f"int64 overflow risk in N_{self.cap} segment sum")
        order, starts = _segments(group_ids, group_count)
        totals = np.add.reduceat(values[order], starts)
        return np.minimum(totals, self.cap)


class _TropicalOps(VectorizedOps):
    """Shared float64 machinery for the two tropical semirings."""

    dtype = np.float64

    #: The semiring's additive identity (``math.inf`` or ``-math.inf``).
    infinity: float

    def encode(self, values: Sequence[Any]) -> np.ndarray:
        encoded = []
        for value in values:
            if value == self.infinity:
                encoded.append(self.infinity)
                continue
            number = int(value)
            if number != value or not -_TROPICAL_LIMIT < number < \
                    _TROPICAL_LIMIT:
                raise OverflowError(
                    f"tropical cost {value!r} is not an exactly "
                    "representable integer")
            encoded.append(float(number))
        return np.asarray(encoded, dtype=np.float64)

    def decode(self, array: np.ndarray) -> list:
        return [self.infinity if math.isinf(value) else int(value)
                for value in array]

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # ⊗ is numeric addition in both tropical semirings.
        result = a + b
        if result.size and bool(np.any(np.isfinite(result)
                                       & (np.abs(result) >= 2 ** 53))):
            raise OverflowError("tropical cost left the float64-exact "
                                "integer range")
        return result


class TropicalMinPlusOps(_TropicalOps):
    """Kernels for ``T+`` (min-plus, ``∞`` is the zero)."""

    infinity = math.inf

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.minimum(a, b)

    def segment_add(self, values: np.ndarray, group_ids: np.ndarray,
                    group_count: int) -> np.ndarray:
        if not group_count:
            return np.zeros(0, dtype=np.float64)
        order, starts = _segments(group_ids, group_count)
        return np.minimum.reduceat(values[order], starts)


class TropicalMaxPlusOps(_TropicalOps):
    """Kernels for ``T−`` (max-plus, ``−∞`` is the zero)."""

    infinity = -math.inf

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(a, b)

    def segment_add(self, values: np.ndarray, group_ids: np.ndarray,
                    group_count: int) -> np.ndarray:
        if not group_count:
            return np.zeros(0, dtype=np.float64)
        order, starts = _segments(group_ids, group_count)
        return np.maximum.reduceat(values[order], starts)


class BooleanOps(VectorizedOps):
    """Kernels for set semantics ``B``."""

    dtype = np.bool_

    def encode(self, values: Sequence[Any]) -> np.ndarray:
        return np.asarray([bool(value) for value in values],
                          dtype=np.bool_)

    def decode(self, array: np.ndarray) -> list:
        return [bool(value) for value in array]

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a | b

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a & b

    def segment_add(self, values: np.ndarray, group_ids: np.ndarray,
                    group_count: int) -> np.ndarray:
        if not group_count:
            return np.zeros(0, dtype=np.bool_)
        order, starts = _segments(group_ids, group_count)
        return np.logical_or.reduceat(values[order], starts)
