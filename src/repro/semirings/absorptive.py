"""The absorptive polynomial semiring ``Sorp[X] = N[X] / (1 + x = 1)``.

Imposing the 1-annihilation axiom on provenance polynomials collapses
``c·m`` to ``m`` (since ``1 + 1 = 1``) and absorbs every monomial that is
divisible by another present monomial (``m + m·q = m``).  The normal form
is an *antichain of monomials under divisibility* — like ``PosBool[X]``
but retaining exponents, so ⊗-idempotence fails while 1-annihilation
holds.

``Sorp[X]`` is the free 1-annihilating semiring, making it the canonical
representative of ``Cin`` (Thm. 4.9): CQ containment over it is
equivalent to the existence of an injective homomorphism.  Membership in
``Nin`` (and in ``N¹in``, giving ``C1in`` at the UCQ level, Thm. 5.6) is
witnessed by the generator valuation ``x ↦ {x}``: then ``x1⋯xn ≼ P`` iff
some monomial of ``P`` divides ``x1⋯xn``, i.e. ``P`` contains a
square-free monomial over a subset of the variables — exactly the
``Nin`` conclusion.

Elements are ``frozenset`` of :class:`Monomial`, pairwise incomparable
under divisibility.
"""

from __future__ import annotations

from ..polynomials.polynomial import Monomial
from .base import Semiring, SemiringProperties


def _absorb(monomials) -> frozenset:
    """Keep only division-minimal monomials."""
    monomials = set(monomials)
    return frozenset(
        mono for mono in monomials
        if not any(other.strictly_divides(mono) for other in monomials)
    )


class AbsorptivePolynomialSemiring(Semiring):
    """``Sorp[X]``: antichains of monomials under divisibility."""

    name = "Sorp[X]"
    properties = SemiringProperties(
        one_annihilating=True,
        add_idempotent=True,
        offset=1,
        in_nin=True,
        in_n1in=True,
        poly_order_decidable=True,
        notes="Free Sin-semiring: Cin representative (Thm. 4.9) and C1in "
              "at the UCQ level (Thm. 5.6). Not ⊗-(semi-)idempotent: "
              "x·y ⋠ x²·y since x²y does not divide xy.",
    )

    def __init__(self, variables: tuple[str, ...] = ()):
        #: Suggested sampling universe.
        self.variables = tuple(variables) or ("x", "y", "z")

    @property
    def zero(self) -> frozenset:
        return frozenset()

    @property
    def one(self) -> frozenset:
        return frozenset((Monomial.unit(),))

    def add(self, a: frozenset, b: frozenset) -> frozenset:
        return _absorb(a | b)

    def mul(self, a: frozenset, b: frozenset) -> frozenset:
        return _absorb(m1.mul(m2) for m1 in a for m2 in b)

    def leq(self, a: frozenset, b: frozenset) -> bool:
        """Natural order: every monomial of ``a`` is divisible by one of
        ``b`` (i.e. ``b`` absorbs ``a``)."""
        return all(any(mb.divides(ma) for mb in b) for ma in a)

    def normalize(self, a: frozenset) -> frozenset:
        return _absorb(a)

    def var(self, name: str) -> frozenset:
        """The annotation consisting of a single variable."""
        return frozenset((Monomial.variable(name),))

    def sample(self, rng) -> frozenset:
        count = rng.choice((0, 1, 1, 1, 2, 2))
        monomials = []
        for _ in range(count):
            degree = rng.choice((0, 1, 1, 2, 2, 3))
            word = tuple(rng.choice(self.variables) for _ in range(degree))
            monomials.append(Monomial.from_variables(word))
        return _absorb(monomials)

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼Sorp P2`` at the generic valuation.

        1-annihilation is an equational axiom, so ``Sorp[X]`` is the
        *free* algebra of its variety and the order is natural
        (``a ≼ b`` iff ``a + b = b``).  Any valuation into any
        1-annihilating semiring factors through the generic one
        ``x ↦ {x}`` by freeness, and semiring morphisms preserve
        natural orders — hence checking the generic valuation decides
        the universal polynomial order exactly (this is the same
        argument that witnesses ``Sorp[X] ∈ Nin``).
        """
        valuation = {
            var: self.var(var) for var in p1.variables() | p2.variables()
        }
        return self.leq(p1.eval_in(self, valuation),
                        p2.eval_in(self, valuation))


#: Singleton absorptive polynomial semiring.
SORP = AbsorptivePolynomialSemiring()
