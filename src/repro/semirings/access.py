"""The access-control (clearance) semiring.

A total order of confidentiality levels::

    public < confidential < secret < top-secret < nobody

A joint use of two tuples requires the *stricter* clearance (``⊗`` is
max-restriction) while alternative derivations take the *laxer* one
(``⊕`` is min-restriction).  ``0`` is "nobody can see this" and ``1`` is
"public".  As a finite chain this is a distributive lattice, hence a
``Chom`` member.

Elements are small integers (indices into :data:`LEVELS`).
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties

#: Clearance levels from least to most restricted.
LEVELS = ("public", "confidential", "secret", "top-secret", "nobody")


class AccessControlSemiring(Semiring):
    """Security clearance levels with min/max combination."""

    name = "A"
    properties = SemiringProperties(
        mul_idempotent=True,
        one_annihilating=True,
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        poly_order_decidable=True,
        notes="Finite chain lattice; Chom member (data security "
              "clearances).",
    )

    @property
    def zero(self) -> int:
        return len(LEVELS) - 1  # nobody

    @property
    def one(self) -> int:
        return 0  # public

    def add(self, a: int, b: int) -> int:
        """Alternative derivations: the laxer clearance wins."""
        return min(a, b)

    def mul(self, a: int, b: int) -> int:
        """Joint derivations: the stricter clearance wins."""
        return max(a, b)

    def leq(self, a: int, b: int) -> bool:
        """Natural order: more restricted ≼ less restricted."""
        return b <= a

    def sample(self, rng) -> int:
        return rng.randrange(len(LEVELS))

    def level(self, name: str) -> int:
        """Look up a level index by its name."""
        return LEVELS.index(name)

    def poly_leq(self, p1, p2) -> bool:
        """Exhaustive check over the finite chain."""
        variables = sorted(p1.variables() | p2.variables())
        return all(
            self.leq(p1.eval_in(self, dict(zip(variables, values))),
                     p2.eval_in(self, dict(zip(variables, values))))
            for values in _assignments(range(len(LEVELS)), len(variables))
        )


def _assignments(domain, length: int):
    if length == 0:
        yield ()
        return
    for rest in _assignments(domain, length - 1):
        for value in domain:
            yield (value,) + rest


#: Singleton access-control semiring.
ACCESS = AccessControlSemiring()
