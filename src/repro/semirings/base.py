"""Commutative positive semirings — the annotation domains of the paper.

A (commutative) semiring is ``K = (K, ⊕, ⊗, 0, 1)`` where ``(K, ⊕, 0)`` and
``(K, ⊗, 1)`` are commutative monoids, ``⊗`` distributes over ``⊕`` and
``a ⊗ 0 = 0``.  The paper (Sec. 3.1) equips each semiring with a partial
order ``≼`` and shows (Prop. 3.1) that the induced query-containment
relation satisfies the natural requirements (C1)–(C4) exactly when the
semiring is *positive*:

* ``0 ≼ a`` for every ``a``, and
* ``a ≼ b`` implies ``a ⊕ c ≼ b ⊕ c``.

Every semiring in this package is positive.  Most are *naturally ordered*
(``a ≼ b`` iff ``a ⊕ c = b`` for some ``c``); the ``leq`` implementations
are direct decision procedures for that order.

Elements are plain hashable Python values (ints, frozensets, polynomial
objects, ...).  A :class:`Semiring` instance bundles the operations, the
order, a random sampler (used by the axiom auditor and by the brute-force
containment oracle) and a :class:`SemiringProperties` record declaring
where the semiring sits in the paper's classification.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

#: Symbolic infinity used for offsets ("k = ∞" in the paper's notation).
INFINITE_OFFSET = math.inf


@dataclass(frozen=True)
class SemiringProperties:
    """Declared classification facts about a semiring.

    The *axiom* flags mirror the paper's sufficient-class axioms:

    * ``mul_idempotent``      — ⊗-idempotence ``x ⊗ x = x`` (class ``Shcov``).
    * ``one_annihilating``    — 1-annihilation ``1 ⊕ x = 1`` (class ``Sin``).
    * ``add_idempotent``      — ⊕-idempotence ``x ⊕ x = x`` (class ``S¹``).
    * ``mul_semi_idempotent`` — ``x ⊗ y ≼ x ⊗ x ⊗ y`` (class ``Ssur``).
    * ``offset``              — smallest ``k`` with ``k·x = ℓ·x`` for all
      ``ℓ ≥ k`` (Sec. 5.2); ``INFINITE_OFFSET`` when no such ``k`` exists.

    The *necessary-class* flags record membership in the classes the paper
    defines through conditions on (CQ-admissible) polynomials.  These cannot
    be decided by sampling alone, so they are declared from the paper's own
    claims or from the analysis documented next to each semiring, and are
    spot-audited by :mod:`repro.semirings.properties` and the test suite.

    * ``in_nhcov``   — homomorphic covering is necessary (``Nhcov``).
    * ``in_nin``     — injective homomorphism is necessary (``Nin``).
    * ``in_nsur``    — surjective homomorphism is necessary (``Nsur``).
    * ``in_n1in``    — UCQ-level injective condition necessary (``N¹in``).
    * ``in_n1sur``   — UCQ-level ``։1`` necessary (``N¹sur``).
    * ``in_ninf_sur``— UCQ-level ``։∞`` necessary (``N∞sur``).
    * ``in_n1hcov`` / ``in_n2hcov`` — UCQ-level ``⇉1`` / ``⇉2`` necessary
      (``Nkhcov``, Prop. 5.22; bag semantics lies in ``N²hcov``).
    * ``in_n1bi``    — UCQ-level ``→֒1`` necessary (``N¹bi``).
    * ``in_nk_bi``   — ``→֒k`` necessary at the semiring's own finite
      offset ``k ≥ 2`` (``Nkbi``; definition reconstructed, see DESIGN).
    * ``in_ninf_bi`` — ``⟨Q2⟩ →֒∞ ⟨Q1⟩`` necessary (``C∞bi`` axiom).

    ``poly_order_decidable`` marks semirings implementing
    :meth:`Semiring.poly_leq`, enabling the small-model procedure of
    Thm. 4.17 (e.g. the tropical semirings, Prop. 4.19).
    """

    mul_idempotent: bool = False
    one_annihilating: bool = False
    add_idempotent: bool = False
    mul_semi_idempotent: bool = False
    offset: float = INFINITE_OFFSET

    in_nhcov: bool = False
    in_nin: bool = False
    in_nsur: bool = False
    in_n1in: bool = False
    in_n1sur: bool = False
    in_ninf_sur: bool = False
    in_n1hcov: bool = False
    in_n2hcov: bool = False
    in_n1bi: bool = False
    in_nk_bi: bool = False
    in_ninf_bi: bool = False

    poly_order_decidable: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if self.one_annihilating and not self.add_idempotent:
            raise ValueError(
                "1-annihilation implies ⊕-idempotence (multiply 1+1=1 by x); "
                "declared flags are inconsistent"
            )
        if self.add_idempotent and self.offset != 1:
            raise ValueError("⊕-idempotent semirings have offset 1")
        if self.mul_idempotent and self.offset not in (1, 2):
            raise ValueError("Shcov ⊆ S² (Prop. 5.19): offset must be 1 or 2")


class VectorizedOps:
    """Columnar ⊕/⊗ kernels for one semiring (numpy-array semantics).

    The contract mirrors the scalar :class:`Semiring` operations exactly
    — a columnar evaluation (:mod:`repro.eval`) over encoded columns
    must produce, element by element, the same normalized values the
    scalar fold would.  Implementations therefore only exist where an
    exact dtype encoding is possible (integer counts, tropical costs as
    float64 with exact integer arithmetic below 2**53, booleans);
    everything else falls back to the generic object-array kernels in
    :mod:`repro.eval.kernels`, so *every* registered semiring is
    evaluable.

    ``encode``/``decode`` must be exact inverses on normalized elements:
    ``decode(encode(values)) == list(values)`` with identical Python
    types, which is what keeps columnar answers byte-identical to the
    tuple-at-a-time evaluator's.
    """

    #: numpy dtype of the annotation column (``None`` → object arrays).
    dtype: Any = None

    def encode(self, values: Sequence[Any]):
        """Normalized semiring elements → annotation column array."""
        raise NotImplementedError

    def decode(self, array) -> list:
        """Annotation column array → list of normalized elements."""
        raise NotImplementedError

    def add(self, a, b):
        """Element-wise ``a ⊕ b`` over two encoded columns."""
        raise NotImplementedError

    def mul(self, a, b):
        """Element-wise ``a ⊗ b`` over two encoded columns."""
        raise NotImplementedError

    def segment_add(self, values, group_ids, group_count: int):
        """Per-group ``⊕``-fold of ``values``.

        ``group_ids`` is an int64 array assigning each row to a group in
        ``range(group_count)`` with **every** group populated (the
        caller derives ids from ``np.unique(..., return_inverse=True)``);
        returns an encoded column of ``group_count`` aggregates.
        """
        raise NotImplementedError


class Semiring(ABC):
    """A commutative positive semiring with a decidable partial order.

    Subclasses implement the four operations plus the order, provide a
    random element sampler, and declare a :class:`SemiringProperties`
    record.  All operations must accept and return *normalized* elements;
    :meth:`normalize` canonicalizes external input (e.g. drops explicit
    zero coefficients).
    """

    #: Short human-readable name, e.g. ``"B"`` or ``"N[X]"``.
    name: str = "K"

    #: Classification facts; see :class:`SemiringProperties`.
    properties: SemiringProperties = SemiringProperties()

    #: For semirings whose :meth:`poly_leq` reduces to one of the two
    #: tropical linear-form orders, the order's kind —
    #: :data:`repro.polynomials.tropical_order.MIN_PLUS` (``T+``,
    #: Viterbi) or :data:`~repro.polynomials.tropical_order.MAX_PLUS`
    #: (``T−``).  ``None`` everywhere else.  Engines use this to
    #: certificate-memoize the order decisions: semirings sharing a
    #: kind share one cache keyed by canonical polynomial pair, never
    #: by semiring instance, so the entries survive process boundaries.
    poly_order: str | None = None

    # ------------------------------------------------------------------
    # The algebra
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def zero(self) -> Any:
        """The additive identity ``0`` (annotation of absent tuples)."""

    @property
    @abstractmethod
    def one(self) -> Any:
        """The multiplicative identity ``1``."""

    @abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Return ``a ⊕ b``."""

    @abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Return ``a ⊗ b``."""

    @abstractmethod
    def leq(self, a: Any, b: Any) -> bool:
        """Decide the positive partial order ``a ≼ b``."""

    # ------------------------------------------------------------------
    # Sampling (for the axiom auditor and the brute-force oracle)
    # ------------------------------------------------------------------

    @abstractmethod
    def sample(self, rng) -> Any:
        """Return a random element (biased toward small ones).

        ``rng`` is a :class:`random.Random`.  The sampler should return
        ``zero`` and ``one`` with non-negligible probability, because many
        axiom violations live at the identities.
        """

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------

    def eq(self, a: Any, b: Any) -> bool:
        """Element equality.  Default: normalized ``==``."""
        return a == b

    def normalize(self, a: Any) -> Any:
        """Canonicalize an externally constructed element."""
        return a

    def is_zero(self, a: Any) -> bool:
        """True iff ``a`` equals the additive identity."""
        return self.eq(a, self.zero)

    def sum(self, items: Iterable[Any]) -> Any:
        """Fold ``⊕`` over ``items`` (empty sum is ``0``)."""
        acc = self.zero
        for item in items:
            acc = self.add(acc, item)
        return acc

    def prod(self, items: Iterable[Any]) -> Any:
        """Fold ``⊗`` over ``items`` (empty product is ``1``)."""
        acc = self.one
        for item in items:
            acc = self.mul(acc, item)
        return acc

    def from_int(self, n: int) -> Any:
        """The image of ``n ∈ N`` under the unique morphism ``N → K``.

        That is, ``n·1 = 1 ⊕ ... ⊕ 1`` (``n`` times); ``0`` maps to ``zero``.
        """
        if n < 0:
            raise ValueError("semiring elements have no additive inverses")
        return self.sum(self.one for _ in range(n))

    def scale(self, n: int, a: Any) -> Any:
        """Return ``n·a = a ⊕ ... ⊕ a`` (``n`` times)."""
        if n < 0:
            raise ValueError("negative multiplicity")
        return self.sum(a for _ in range(n))

    def power(self, a: Any, n: int) -> Any:
        """Return ``a ⊗ ... ⊗ a`` (``n`` times); ``a^0 = 1``."""
        if n < 0:
            raise ValueError("negative exponent")
        return self.prod(a for _ in range(n))

    def sample_pool(self, rng, size: int) -> list[Any]:
        """A pool of ``size`` sampled elements, always containing 0 and 1."""
        pool = [self.zero, self.one]
        while len(pool) < size:
            pool.append(self.sample(rng))
        return pool

    def vectorized_ops(self) -> "VectorizedOps | None":
        """Columnar kernels for this semiring, or ``None``.

        ``None`` (the default) means no exact dtype encoding exists and
        the columnar evaluator must use its generic object-array
        fallback, which calls the scalar operations element-wise.
        """
        return None

    # ------------------------------------------------------------------
    # Polynomial order (hook for the small-model procedure, Thm. 4.17)
    # ------------------------------------------------------------------

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼K P2``: for *all* valuations ``ν : X → K``,
        ``Evalν(P1) ≼ Evalν(P2)`` (polynomial notation of Sec. 3.2).

        Only semirings with ``properties.poly_order_decidable`` implement
        this; the default raises.
        """
        raise NotImplementedError(
            f"{self.name} does not implement the polynomial order ≼K; "
            "the small-model procedure (Thm. 4.17) is unavailable for it"
        )

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Semiring {self.name}>"

    def __str__(self) -> str:
        return self.name


def check_positive_order_samples(semiring: Semiring,
                                 samples: Sequence[Any]) -> list[str]:
    """Audit the positivity axioms of ``semiring`` on ``samples``.

    Returns a list of human-readable violation descriptions (empty when no
    violation was found).  Used by tests; see
    :mod:`repro.semirings.properties` for the full auditor.
    """
    failures: list[str] = []
    for a in samples:
        if not semiring.leq(semiring.zero, a):
            failures.append(f"0 ≼ {a!r} fails")
        if not semiring.leq(a, a):
            failures.append(f"reflexivity fails at {a!r}")
    for a in samples:
        for b in samples:
            if (semiring.leq(a, b) and semiring.leq(b, a)
                    and not semiring.eq(a, b)):
                failures.append(f"antisymmetry fails at {a!r}, {b!r}")
            if semiring.leq(a, b):
                for c in samples:
                    if not semiring.leq(semiring.add(a, c),
                                        semiring.add(b, c)):
                        failures.append(
                            f"⊕-monotonicity fails at {a!r} ≼ {b!r}, +{c!r}")
    return failures
