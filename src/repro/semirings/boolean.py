"""The set-semantics semiring ``B`` (Sec. 3.3).

``B = ({false, true}, ∨, ∧, false, true)`` models ordinary relational
databases: a tuple is annotated ``true`` iff it belongs to the relation.
The order is ``false ≼ true``.  ``B`` satisfies both ⊗-idempotence and
1-annihilation, so it belongs to ``Chom``: CQ containment over ``B`` is
exactly the classical Chandra–Merlin homomorphism criterion.
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties


class BooleanSemiring(Semiring):
    """Set semantics ``B``: or/and over ``{False, True}``."""

    name = "B"
    properties = SemiringProperties(
        mul_idempotent=True,
        one_annihilating=True,
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        poly_order_decidable=True,
        notes="Chom representative (Thm. 3.3); equals type A' systems of "
              "Ioannidis-Ramakrishnan.",
    )

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def leq(self, a: bool, b: bool) -> bool:
        return (not a) or b

    def sample(self, rng) -> bool:
        return rng.random() < 0.5

    def vectorized_ops(self):
        try:
            from ._vectorized import BooleanOps
        except ImportError:  # numpy unavailable — generic fallback
            return None
        return BooleanOps()

    def poly_leq(self, p1, p2) -> bool:
        """``P1 ≼B P2`` by exhaustive boolean valuations.

        A monomial evaluates to the conjunction of its variables and a
        polynomial to the disjunction of its monomials, so ``P1 ≼B P2``
        iff every variable set satisfying some monomial of ``P1``
        satisfies some monomial of ``P2`` — checked monomial-wise: for
        each monomial of ``P1``, setting exactly its variables true must
        make ``P2`` true.
        """
        for mono, _ in p1.items():
            true_vars = mono.variables()
            satisfied = any(
                other.variables() <= true_vars for other, _ in p2.items()
            )
            if not satisfied:
                return False
        return True


#: Singleton instance of the boolean semiring.
B = BooleanSemiring()
