"""The fuzzy semiring ``F = ([0, 1], max, min, 0, 1)``.

Annotations are membership degrees (fuzzy set theory).  ``F`` is a
distributive lattice — a totally ordered one — so it satisfies both
⊗-idempotence and 1-annihilation and lies in ``Chom``: fuzzy containment
of CQs and UCQs coincides with classical set-semantics containment.

Elements are exact :class:`fractions.Fraction` values in ``[0, 1]``.
"""

from __future__ import annotations

from fractions import Fraction

from .base import Semiring, SemiringProperties

_SAMPLES = (
    Fraction(0), Fraction(1), Fraction(1, 2), Fraction(1, 3),
    Fraction(2, 3), Fraction(1, 4), Fraction(3, 4),
)


class FuzzySemiring(Semiring):
    """``F``: max/min over membership degrees."""

    name = "F"
    properties = SemiringProperties(
        mul_idempotent=True,
        one_annihilating=True,
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        poly_order_decidable=True,
        notes="Totally ordered distributive lattice; Chom member.",
    )

    @property
    def zero(self) -> Fraction:
        return Fraction(0)

    @property
    def one(self) -> Fraction:
        return Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return max(a, b)

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return min(a, b)

    def leq(self, a: Fraction, b: Fraction) -> bool:
        return a <= b

    def sample(self, rng) -> Fraction:
        return rng.choice(_SAMPLES)

    def poly_leq(self, p1, p2) -> bool:
        """In a chain lattice it suffices to compare on valuations drawn
        from a set with more points than variables; we use a dense grid
        of fractions, which is exact for min/max polynomials because
        only the relative order of variable values matters."""
        variables = sorted(p1.variables() | p2.variables())
        grid = [Fraction(i, max(len(variables), 1) + 1)
                for i in range(len(variables) + 2)]
        return all(
            p1.eval_in(self, dict(zip(variables, values)))
            <= p2.eval_in(self, dict(zip(variables, values)))
            for values in _assignments(grid, len(variables))
        )


def _assignments(domain, length: int):
    if length == 0:
        yield ()
        return
    for rest in _assignments(domain, length - 1):
        for value in domain:
            yield (value,) + rest


#: Singleton fuzzy semiring.
FUZZY = FuzzySemiring()
