"""The lineage semiring ``Lin[X]`` (Cui–Widom–Wiener).

An annotation is either ``⊥`` ("no derivation") or the *set* of base
tuples that the output tuple depends on.  Formally
``Lin[X] = (P(X) ∪ {⊥}, +, ·, ⊥, ∅)`` where both ``+`` and ``·`` are set
union on proper sets, ``⊥`` is the additive identity and multiplicatively
absorbing.  ``Lin[X]`` is ⊗-idempotent but not 1-annihilating, and the
paper places it in ``Chcov`` (Sec. 4.1): CQ containment over ``Lin[X]``
is equivalent to homomorphic covering ``Q2 ⇉ Q1``, and at the UCQ level
``Lin[X] ∈ C1hcov`` (Thm. 5.24 with ``k = 1``).

Elements here are ``None`` (for ``⊥``) or ``frozenset`` of variable
names.
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties

#: The bottom annotation ``⊥`` ("tuple absent / no lineage").
BOTTOM = None


class LineageSemiring(Semiring):
    """``Lin[X]``: sets of contributing tuple identifiers, plus ``⊥``."""

    name = "Lin[X]"
    properties = SemiringProperties(
        mul_idempotent=True,
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        in_nhcov=True,
        in_n1hcov=True,
        poly_order_decidable=True,
        notes="Chcov representative (Thm. 4.3); C1hcov at the UCQ level "
              "(Thm. 5.24, complexity first shown for Lin[X] in Green'11).",
    )

    def __init__(self, variables: tuple[str, ...] = ()):
        #: Suggested sampling universe.
        self.variables = tuple(variables) or ("x", "y", "z")

    @property
    def zero(self):
        return BOTTOM

    @property
    def one(self) -> frozenset:
        return frozenset()

    def add(self, a, b):
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        return a | b

    def mul(self, a, b):
        if a is BOTTOM or b is BOTTOM:
            return BOTTOM
        return a | b

    def leq(self, a, b) -> bool:
        """Natural order: ``⊥`` below everything, sets ordered by ``⊆``."""
        if a is BOTTOM:
            return True
        if b is BOTTOM:
            return False
        return a <= b

    def var(self, name: str) -> frozenset:
        """The lineage of a single base tuple."""
        return frozenset((name,))

    def sample(self, rng):
        if rng.random() < 0.2:
            return BOTTOM
        size = rng.choice((0, 1, 1, 2))
        return frozenset(rng.sample(self.variables, min(size, len(self.variables))))

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼Lin P2`` over the three-valued valuation family.

        A violation of ``Eval(P1) ⊆ Eval(P2)`` at an arbitrary valuation
        is witnessed by one tuple id ``t``; replacing the valuation by
        ``x ↦ ⊥`` (where it was ⊥), ``x ↦ {•}`` (where it contained
        ``t``) and ``x ↦ ∅ = 1`` (elsewhere) preserves the violation,
        because a monomial survives iff it avoids the ⊥-set, and ``•``
        appears in a surviving monomial's value iff the monomial uses a
        ``t``-containing variable.  So checking every valuation with
        values in ``{⊥, 1, {•}}`` is exact (3^|X| checks).
        """
        from itertools import product as _product

        variables = sorted(p1.variables() | p2.variables())
        marker = frozenset(("•",))
        for values in _product((BOTTOM, frozenset(), marker),
                               repeat=len(variables)):
            valuation = dict(zip(variables, values))
            if not self.leq(p1.eval_in(self, valuation),
                            p2.eval_in(self, valuation)):
                return False
        return True


#: Singleton lineage semiring.
LIN = LineageSemiring()
