"""The Łukasiewicz semiring ``L = ([0, 1], max, ⊗L, 0, 1)``.

The product is the Łukasiewicz t-norm ``a ⊗L b = max(0, a + b − 1)``,
used in many-valued logic and annotated RDF frameworks.  ``L`` is
1-annihilating (``max(1, x) = 1``) hence in ``Sin``, but not
⊗-idempotent (``x ⊗L x = max(0, 2x − 1) ≠ x`` in the open interval) and
not ⊗-semi-idempotent (t-norms shrink: ``x⊗x⊗y ≤ x⊗y``), so like ``T+``
it is a member of ``Sin`` with no homomorphism characterization.

Elements are exact :class:`fractions.Fraction` values in ``[0, 1]``.
"""

from __future__ import annotations

from fractions import Fraction

from .base import Semiring, SemiringProperties

_SAMPLES = (
    Fraction(0), Fraction(1), Fraction(1), Fraction(1, 2), Fraction(1, 3),
    Fraction(2, 3), Fraction(1, 4), Fraction(3, 4), Fraction(7, 8),
)


class LukasiewiczSemiring(Semiring):
    """``L``: max with the Łukasiewicz t-norm."""

    name = "L"
    properties = SemiringProperties(
        one_annihilating=True,
        add_idempotent=True,
        offset=1,
        notes="Sin member via the Łukasiewicz t-norm; no homomorphism "
              "characterization (injective homs sufficient only).",
    )

    @property
    def zero(self) -> Fraction:
        return Fraction(0)

    @property
    def one(self) -> Fraction:
        return Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return max(a, b)

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return max(Fraction(0), a + b - 1)

    def leq(self, a: Fraction, b: Fraction) -> bool:
        return a <= b

    def sample(self, rng) -> Fraction:
        return rng.choice(_SAMPLES)


#: Singleton Łukasiewicz semiring.
LUKASIEWICZ = LukasiewiczSemiring()
