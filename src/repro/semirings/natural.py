"""Bag semantics ``N`` and the saturating (finite-offset) variants ``N_k``.

``N = (N0, +, ×, 0, 1)`` models SQL bag semantics (Sec. 4).  CQ
``N``-containment is a long-standing open problem and UCQ
``N``-containment is undecidable, so the dispatcher only reports the
paper's *bounds* for ``N``: homomorphic covering (and the UCQ condition
``⇉2``, Cor. 5.23) is necessary, a surjective homomorphism (and the UCQ
condition ``։∞``, Cor. 5.16) is sufficient.

``N_k`` is ``N`` with addition and multiplication saturating at ``k``
(elements ``{0, …, k}``).  Saturation is a semiring quotient of ``N`` and
produces the canonical examples of semirings with *offset exactly k*
(Sec. 5.2): ``k·x = ℓ·x`` for all ``ℓ ≥ k`` but ``(k−1)·1 ≠ k·1``.
Notably ``N_1 ≅ B`` and ``N_2`` is ⊗-idempotent, giving a member of
``S²hcov`` — the paper's ``C2hcov`` row (Thm. 5.24) is exercised with it.
"""

from __future__ import annotations

from .base import INFINITE_OFFSET, Semiring, SemiringProperties


class NaturalSemiring(Semiring):
    """Bag semantics ``N``: ordinary arithmetic on the naturals."""

    name = "N"
    properties = SemiringProperties(
        mul_semi_idempotent=True,
        offset=INFINITE_OFFSET,
        in_nhcov=True,
        in_n1hcov=True,
        in_n2hcov=True,
        notes="Bag semantics. In Ssur ∩ Nhcov ∩ N2hcov; CQ containment "
              "open, UCQ containment undecidable (Ioannidis-Ramakrishnan).",
    )

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def leq(self, a: int, b: int) -> bool:
        return a <= b

    def sample(self, rng) -> int:
        return rng.choice((0, 0, 1, 1, 1, 2, 2, 3, 5, 7))

    def vectorized_ops(self):
        try:
            from ._vectorized import NaturalOps
        except ImportError:  # numpy unavailable — generic fallback
            return None
        return NaturalOps()


class SaturatingNaturalSemiring(Semiring):
    """``N_k``: naturals truncated at ``k`` with saturating operations.

    ``a ⊕ b = min(a + b, k)`` and ``a ⊗ b = min(a · b, k)`` on elements
    ``{0, …, k}``.  The truncation map ``N → N_k`` is a surjective
    semiring morphism, hence ``N_k`` is a positive semiring under the
    usual total order.  Its smallest offset is exactly ``k``.
    """

    def __init__(self, cap: int):
        if cap < 1:
            raise ValueError("cap must be at least 1")
        self.cap = cap
        self.name = f"N_{cap}"
        mul_idempotent = all(
            min(x * x, cap) == x for x in range(cap + 1)
        )
        self.properties = SemiringProperties(
            mul_idempotent=mul_idempotent,
            one_annihilating=(cap == 1),
            add_idempotent=(cap == 1),
            mul_semi_idempotent=True,
            offset=cap,
            # Saturation defeats every covering-necessity axiom: values
            # are bounded by the cap, so x·y ≼ cap·x holds although the
            # right side drops y (e.g. r·s ≼N₂ r + r).  N_k therefore
            # lies in NO necessity class; only bounds are available, and
            # the ⊗-idempotent N_2 gets its sufficient condition from
            # S²hcov (Prop. 5.21).  See semirings/product.py for the
            # C2hcov representative Lin[X] × N₂.
            poly_order_decidable=True,
            notes="Saturating bag semantics; smallest offset exactly k. "
                  "N_1 ≅ B; N_2 ∈ S²hcov (⊗-idempotent with offset 2).",
        )

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return min(a + b, self.cap)

    def mul(self, a: int, b: int) -> int:
        return min(a * b, self.cap)

    def leq(self, a: int, b: int) -> bool:
        return a <= b

    def normalize(self, a: int) -> int:
        return min(a, self.cap)

    def sample(self, rng) -> int:
        return rng.randint(0, self.cap)

    def vectorized_ops(self):
        try:
            from ._vectorized import SaturatingNaturalOps
        except ImportError:  # numpy unavailable — generic fallback
            return None
        return SaturatingNaturalOps(self.cap)

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼N_k P2`` by exhaustive valuation over ``{0,…,k}``.

        ``N_k`` is finite, so the universally quantified polynomial order
        is decidable by brute force; the search space is ``(k+1)^|X|``.
        """
        variables = sorted(p1.variables() | p2.variables())
        return all(
            self.leq(p1.eval_in(self, dict(zip(variables, values))),
                     p2.eval_in(self, dict(zip(variables, values))))
            for values in _tuples(range(self.cap + 1), len(variables))
        )


def _tuples(domain, length: int):
    """All tuples of ``length`` elements drawn from ``domain``."""
    if length == 0:
        yield ()
        return
    for rest in _tuples(domain, length - 1):
        for value in domain:
            yield (value,) + rest


#: Bag semantics singleton.
N = NaturalSemiring()

#: ``N_2``: the canonical offset-2, ⊗-idempotent semiring (S²hcov).
N2_SATURATING = SaturatingNaturalSemiring(2)

#: ``N_3``: offset-3 example (not ⊗-idempotent).
N3_SATURATING = SaturatingNaturalSemiring(3)
