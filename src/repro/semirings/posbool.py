"""Positive boolean expressions ``PosBool[X]`` (Imieliński–Lipski).

The free distributive lattice over ``X``: boolean formulas built from
variables with ``∨`` and ``∧`` only, modulo logical equivalence.  Used to
annotate incomplete databases (c-tables).  The canonical representation
is an irredundant DNF: an *antichain* of variable sets (no set contains
another).

As a distributive lattice, ``PosBool[X]`` satisfies both ⊗-idempotence
and 1-annihilation, so it lies in ``Chom`` (Sec. 3.3): containment is
decided by ordinary homomorphisms.

Elements are ``frozenset`` of ``frozenset`` of variable names, kept
antichain-minimal.
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties


def _minimalize(clauses) -> frozenset:
    """Drop clauses that are supersets of other clauses (absorption)."""
    clauses = set(clauses)
    return frozenset(
        clause for clause in clauses
        if not any(other < clause for other in clauses)
    )


class PosBoolSemiring(Semiring):
    """``PosBool[X]``: irredundant-DNF positive boolean expressions."""

    name = "PosBool[X]"
    properties = SemiringProperties(
        mul_idempotent=True,
        one_annihilating=True,
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        poly_order_decidable=True,
        notes="Free distributive lattice; Chom member (incomplete "
              "databases / c-tables).",
    )

    def __init__(self, variables: tuple[str, ...] = ()):
        #: Suggested sampling universe.
        self.variables = tuple(variables) or ("x", "y", "z")

    @property
    def zero(self) -> frozenset:
        return frozenset()

    @property
    def one(self) -> frozenset:
        return frozenset((frozenset(),))

    def add(self, a: frozenset, b: frozenset) -> frozenset:
        return _minimalize(a | b)

    def mul(self, a: frozenset, b: frozenset) -> frozenset:
        return _minimalize(c1 | c2 for c1 in a for c2 in b)

    def leq(self, a: frozenset, b: frozenset) -> bool:
        """Lattice implication order: every clause of ``a`` is entailed.

        ``a ≼ b`` iff ``a ∨ b ≡ b`` iff every clause of ``a`` is a
        superset of some clause of ``b``.
        """
        return all(any(cb <= ca for cb in b) for ca in a)

    def normalize(self, a: frozenset) -> frozenset:
        return _minimalize(a)

    def var(self, name: str) -> frozenset:
        """The expression consisting of a single variable."""
        return frozenset((frozenset((name,)),))

    def sample(self, rng) -> frozenset:
        count = rng.choice((0, 1, 1, 1, 2, 2))
        clauses = []
        for _ in range(count):
            size = rng.choice((0, 1, 1, 2))
            clauses.append(frozenset(
                rng.sample(self.variables, min(size, len(self.variables)))
            ))
        return _minimalize(clauses)

    def poly_leq(self, p1, p2) -> bool:
        """``P1 ≼ P2`` via the free construction: evaluate each variable
        to itself (the generators) and compare; freeness of the lattice
        makes the generator valuation the hardest case.
        """
        valuation = {
            var: self.var(var) for var in p1.variables() | p2.variables()
        }
        return self.leq(p1.eval_in(self, valuation),
                        p2.eval_in(self, valuation))


#: Singleton PosBool semiring.
POSBOOL = PosBoolSemiring()
