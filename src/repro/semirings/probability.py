"""The probabilistic event semiring ``P[Ω]`` (Fuhr–Rölleke, Zimányi).

Tuples in probabilistic event tables are annotated with *events* —
measurable subsets of a sample space ``Ω`` — combined with union for
alternative derivations and intersection for joint ones:
``P[Ω] = (P(Ω), ∪, ∩, ∅, Ω)``.

As a boolean algebra restricted to its positive operations this is a
distributive lattice, so ``P[Ω]`` lies in ``Chom`` (Sec. 3.3): query
containment over event tables coincides with set-semantics containment.

Elements are ``frozenset`` subsets of a finite sample space.
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties


class EventSemiring(Semiring):
    """``P[Ω]``: events over a finite sample space ``Ω``."""

    def __init__(self, sample_space=("w1", "w2", "w3")):
        #: The finite sample space ``Ω``.
        self.sample_space = frozenset(sample_space)
        if not self.sample_space:
            raise ValueError("sample space must be non-empty (else 0 = 1)")
        self.name = f"P[Ω({len(self.sample_space)})]"
        self.properties = SemiringProperties(
            mul_idempotent=True,
            one_annihilating=True,
            add_idempotent=True,
            mul_semi_idempotent=True,
            offset=1,
            poly_order_decidable=True,
            notes="Distributive lattice of events; Chom member "
                  "(probabilistic event tables).",
        )

    @property
    def zero(self) -> frozenset:
        return frozenset()

    @property
    def one(self) -> frozenset:
        return self.sample_space

    def add(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def mul(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def leq(self, a: frozenset, b: frozenset) -> bool:
        return a <= b

    def sample(self, rng) -> frozenset:
        return frozenset(
            outcome for outcome in self.sample_space if rng.random() < 0.5
        )

    def poly_leq(self, p1, p2) -> bool:
        """Exact check: a lattice polynomial inequality holds over every
        distributive lattice iff it holds over ``{0, 1}`` valuations
        (Birkhoff), checked per outcome; equivalently we evaluate on all
        two-valued valuations using ``Ω`` and ``∅``."""
        variables = sorted(p1.variables() | p2.variables())
        choices = (self.zero, self.one)
        return all(
            self.leq(p1.eval_in(self, dict(zip(variables, values))),
                     p2.eval_in(self, dict(zip(variables, values))))
            for values in _assignments(choices, len(variables))
        )


def _assignments(domain, length: int):
    if length == 0:
        yield ()
        return
    for rest in _assignments(domain, length - 1):
        for value in domain:
            yield (value,) + rest


#: Event semiring over a three-outcome sample space.
EVENTS = EventSemiring()
