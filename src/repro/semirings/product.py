"""Product semirings ``K1 × K2``.

The componentwise product of two positive semirings is positive again
(operations and the order act per coordinate), and query containment
over the product holds iff it holds over *both* factors — an instance
over ``K1 × K2`` is just a pair of instances.  Products are how the
classification's intersections are inhabited: the registered

    ``Lin[X] × N₂``

is ⊗-idempotent (both factors are) with smallest offset 2 (the ``N₂``
factor), making it a member of ``S²hcov`` that — unlike bare ``N₂``,
whose saturation defeats covering necessity (``r·s ≼ r + r`` whenever
``s ≤ 2``) — also satisfies the ``N²hcov`` necessity axiom: the lineage
factor forces every variable to be used and the saturating factor
forces ``min(ℓ, 2)`` monomials.  It is our representative for the
``C2hcov`` row of Table 1 (Thm. 5.24, ``k = 2``); the membership is
validated against the brute-force oracle.
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties
from .lineage import LIN
from .natural import N2_SATURATING

__all__ = ["ProductSemiring", "LIN_X_N2"]


class ProductSemiring(Semiring):
    """Componentwise product of two semirings, elements are pairs."""

    def __init__(self, left: Semiring, right: Semiring,
                 properties: SemiringProperties | None = None):
        self.left = left
        self.right = right
        self.name = f"{left.name}×{right.name}"
        if properties is not None:
            self.properties = properties
        else:
            lp, rp = left.properties, right.properties
            self.properties = SemiringProperties(
                mul_idempotent=lp.mul_idempotent and rp.mul_idempotent,
                one_annihilating=lp.one_annihilating and rp.one_annihilating,
                add_idempotent=lp.add_idempotent and rp.add_idempotent,
                mul_semi_idempotent=(lp.mul_semi_idempotent
                                     and rp.mul_semi_idempotent),
                offset=max(lp.offset, rp.offset),
                notes=f"componentwise product of {left.name} and "
                      f"{right.name}",
            )

    @property
    def zero(self) -> tuple:
        return (self.left.zero, self.right.zero)

    @property
    def one(self) -> tuple:
        return (self.left.one, self.right.one)

    def add(self, a: tuple, b: tuple) -> tuple:
        return (self.left.add(a[0], b[0]), self.right.add(a[1], b[1]))

    def mul(self, a: tuple, b: tuple) -> tuple:
        return (self.left.mul(a[0], b[0]), self.right.mul(a[1], b[1]))

    def leq(self, a: tuple, b: tuple) -> bool:
        return self.left.leq(a[0], b[0]) and self.right.leq(a[1], b[1])

    def eq(self, a: tuple, b: tuple) -> bool:
        return self.left.eq(a[0], b[0]) and self.right.eq(a[1], b[1])

    def normalize(self, a: tuple) -> tuple:
        return (self.left.normalize(a[0]), self.right.normalize(a[1]))

    def sample(self, rng) -> tuple:
        return (self.left.sample(rng), self.right.sample(rng))

    def var(self, name: str) -> tuple:
        """Generic generator pair (delegates where factors support it)."""
        left = getattr(self.left, "var", None)
        right = getattr(self.right, "var", None)
        return (
            left(name) if left else self.left.one,
            right(name) if right else self.right.one,
        )


#: The C2hcov representative: ⊗-idempotent with smallest offset 2 and
#: the N²hcov necessity axiom (validated empirically).
LIN_X_N2 = ProductSemiring(
    LIN, N2_SATURATING,
    properties=SemiringProperties(
        mul_idempotent=True,
        mul_semi_idempotent=True,
        offset=2,
        in_nhcov=False,
        in_n1hcov=True,
        in_n2hcov=True,
        notes="C2hcov representative (Thm. 5.24, k = 2): the lineage "
              "factor supplies covering necessity, the saturating factor "
              "the offset-2 multiplicity requirement.",
    ),
)
