"""Empirical axiom auditing for semirings.

Python's dynamic encoding loses the algebraic type safety that would
make a mis-declared semiring fail to compile, so every registered
semiring is *audited*: the semiring laws, the positivity of the order,
and each declared classification flag are tested on thousands of sampled
elements.  Declared-False axioms are conversely checked by *searching*
for a violating sample, so a copy-paste error in a properties record is
caught from both sides.

These audits are necessarily one-sided for infinite semirings (sampling
cannot prove a universal statement), which mirrors the paper's own
division of labour: the algebra is proved on paper, the code verifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from .base import INFINITE_OFFSET, Semiring


@dataclass
class AuditReport:
    """Outcome of auditing one semiring."""

    semiring: str
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.failures


def _samples(semiring: Semiring, rng: random.Random, count: int) -> list:
    pool = [semiring.zero, semiring.one]
    for _ in range(count):
        pool.append(semiring.sample(rng))
    return pool


def audit_semiring_laws(semiring: Semiring, rng: random.Random | None = None,
                        rounds: int = 200) -> AuditReport:
    """Check the commutative-semiring laws on sampled triples."""
    rng = rng or random.Random(0)
    report = AuditReport(semiring.name)
    eq = semiring.eq
    add, mul = semiring.add, semiring.mul
    zero, one = semiring.zero, semiring.one
    for _ in range(rounds):
        a, b, c = (semiring.sample(rng) for _ in range(3))
        if not eq(add(a, b), add(b, a)):
            report.failures.append(f"⊕ not commutative at {a!r}, {b!r}")
        if not eq(mul(a, b), mul(b, a)):
            report.failures.append(f"⊗ not commutative at {a!r}, {b!r}")
        if not eq(add(add(a, b), c), add(a, add(b, c))):
            report.failures.append(f"⊕ not associative at {a!r},{b!r},{c!r}")
        if not eq(mul(mul(a, b), c), mul(a, mul(b, c))):
            report.failures.append(f"⊗ not associative at {a!r},{b!r},{c!r}")
        if not eq(add(a, zero), a):
            report.failures.append(f"0 not ⊕-identity at {a!r}")
        if not eq(mul(a, one), a):
            report.failures.append(f"1 not ⊗-identity at {a!r}")
        if not eq(mul(a, zero), zero):
            report.failures.append(f"0 not absorbing at {a!r}")
        if not eq(mul(a, add(b, c)), add(mul(a, b), mul(a, c))):
            report.failures.append(f"⊗ not distributive at {a!r},{b!r},{c!r}")
    if eq(zero, one):
        report.failures.append("trivial semiring: 0 = 1")
    return report


def audit_positivity(semiring: Semiring, rng: random.Random | None = None,
                     rounds: int = 120) -> AuditReport:
    """Check the positive-semiring axioms of Prop. 3.1 on samples."""
    rng = rng or random.Random(1)
    report = AuditReport(semiring.name)
    samples = _samples(semiring, rng, max(6, rounds // 10))
    leq, eq, add = semiring.leq, semiring.eq, semiring.add
    for a in samples:
        if not leq(semiring.zero, a):
            report.failures.append(f"0 ≼ {a!r} fails")
        if not leq(a, a):
            report.failures.append(f"≼ not reflexive at {a!r}")
    for _ in range(rounds):
        a, b, c = (rng.choice(samples) for _ in range(3))
        if leq(a, b) and leq(b, a) and not eq(a, b):
            report.failures.append(f"≼ not antisymmetric at {a!r},{b!r}")
        if leq(a, b) and leq(b, c) and not leq(a, c):
            report.failures.append(f"≼ not transitive at {a!r},{b!r},{c!r}")
        if leq(a, b) and not leq(add(a, c), add(b, c)):
            report.failures.append(
                f"⊕ not monotone at {a!r} ≼ {b!r}, + {c!r}")
        if not leq(a, add(a, b)):
            report.failures.append(f"a ≼ a ⊕ b fails at {a!r},{b!r}")
    return report


def _holds_on_samples(semiring: Semiring, predicate: Callable,
                      rng: random.Random, rounds: int) -> str | None:
    """Return a violation description, or None if none found."""
    for _ in range(rounds):
        a, b = semiring.sample(rng), semiring.sample(rng)
        if not predicate(a, b):
            return f"violated at {a!r}, {b!r}"
    return None


def _axiom_predicates(semiring: Semiring) -> dict[str, Callable]:
    eq, leq = semiring.eq, semiring.leq
    add, mul, one = semiring.add, semiring.mul, semiring.one
    return {
        "mul_idempotent": lambda a, b: eq(mul(a, a), a),
        "one_annihilating": lambda a, b: eq(add(one, a), one),
        "add_idempotent": lambda a, b: eq(add(a, a), a),
        "mul_semi_idempotent":
            lambda a, b: leq(mul(a, b), mul(mul(a, a), b)),
    }


def audit_declared_axioms(semiring: Semiring,
                          rng: random.Random | None = None,
                          rounds: int = 300) -> AuditReport:
    """Check every declared axiom flag in both directions.

    Declared-True axioms must hold on all samples; declared-False axioms
    must admit a sampled counterexample (the samplers are written to hit
    the small elements where violations live).
    """
    rng = rng or random.Random(2)
    report = AuditReport(semiring.name)
    props = semiring.properties
    for axiom, predicate in _axiom_predicates(semiring).items():
        declared = getattr(props, axiom)
        violation = _holds_on_samples(semiring, predicate, rng, rounds)
        if declared and violation:
            report.failures.append(f"{axiom} declared but {violation}")
        if not declared and violation is None:
            report.failures.append(
                f"{axiom} declared False but no violation found")
    report.failures.extend(_audit_offset(semiring, rng, rounds))
    return report


def _audit_offset(semiring: Semiring, rng: random.Random,
                  rounds: int) -> list[str]:
    """Check the declared offset: ``k·x = ℓ·x`` for ``ℓ > k`` and, when
    ``k > 1``, that ``(k−1)·x = k·x`` fails for some sample."""
    offset = semiring.properties.offset
    failures: list[str] = []
    if offset == INFINITE_OFFSET:
        # No finite offset: for each small k there must be a violation of
        # k·x = (k+1)·x (Prop. 5.11 makes one k enough, we try a few).
        for k in (1, 2, 3):
            if _scale_violation(semiring, k, rng, rounds) is None:
                failures.append(
                    f"offset declared ∞ but {k}x = {k + 1}x on all samples")
        return failures
    k = int(offset)
    for _ in range(rounds):
        x = semiring.sample(rng)
        base = semiring.scale(k, x)
        for extra in (1, 2):
            if not semiring.eq(base, semiring.scale(k + extra, x)):
                failures.append(
                    f"offset {k} declared but {k}x ≠ {k + extra}x at {x!r}")
                break
    if k > 1 and _scale_violation(semiring, k - 1, rng, rounds) is None:
        failures.append(
            f"offset {k} declared but {k - 1}x = {k}x on all samples "
            "(smallest offset is smaller)")
    return failures


def _scale_violation(semiring: Semiring, k: int, rng: random.Random,
                     rounds: int) -> str | None:
    """Find a sample with ``k·x ≠ (k+1)·x``, or None."""
    for _ in range(rounds):
        x = semiring.sample(rng)
        if not semiring.eq(semiring.scale(k, x), semiring.scale(k + 1, x)):
            return f"{x!r}"
    return None


def audit(semiring: Semiring, rng: random.Random | None = None,
          rounds: int = 200) -> AuditReport:
    """Run all audits and merge the reports."""
    rng = rng or random.Random(3)
    report = AuditReport(semiring.name)
    report.failures.extend(audit_semiring_laws(semiring, rng, rounds).failures)
    report.failures.extend(audit_positivity(semiring, rng, rounds).failures)
    report.failures.extend(
        audit_declared_axioms(semiring, rng, rounds).failures)
    return report
