"""Provenance polynomial semirings: ``N[X]``, ``B[X]`` and ``N_k[X]``.

``N[X]`` (Green–Karvounarakis–Tannen) is the most general annotation
domain: by Prop. 3.2 it is universal for all positive semirings, and by
Thm. 4.10 / Prop. 5.9 CQ and UCQ containment over it are characterized by
bijective homomorphisms and the isomorphism-counting condition
``⟨Q2⟩ →֒∞ ⟨Q1⟩`` respectively (class ``C∞bi``).

``B[X]`` replaces the natural-number coefficients with booleans; it is
universal for the ⊕-idempotent semirings ``S¹`` and sits in ``C1bi``
(Thm. 5.13 with ``k = 1``).

``N_k[X]`` caps coefficients at ``k`` with saturating coefficient
arithmetic, the polynomial analogue of :class:`~repro.semirings.natural.
SaturatingNaturalSemiring`.  It has smallest offset exactly ``k`` and is
our representative for the intermediate classes ``Ckbi`` of Thm. 5.13
(``→֒k``); this membership is a reconstruction validated against the
brute-force oracle (the paper defers the ``Nkbi`` axioms to its full
version).
"""

from __future__ import annotations

from ..polynomials.polynomial import Monomial, Polynomial
from .base import INFINITE_OFFSET, Semiring, SemiringProperties


class ProvenancePolynomialSemiring(Semiring):
    """``N[X]`` or its coefficient-capped quotient ``N_k[X]``.

    ``coefficient_cap=None`` gives ``N[X]``; ``coefficient_cap=k`` applies
    saturating coefficient arithmetic (so ``k = 1`` is ``B[X]``).
    Elements are :class:`~repro.polynomials.polynomial.Polynomial` values
    (already normalized for ``N[X]``; capping re-normalizes coefficients).

    The order is the natural order, which for these semirings amounts to
    coefficient-wise ``≤`` (after capping).
    """

    def __init__(self, variables: tuple[str, ...] = (),
                 coefficient_cap: int | None = None):
        if coefficient_cap is not None and coefficient_cap < 1:
            raise ValueError("coefficient cap must be at least 1")
        #: Suggested sampling variables (the domain itself is open-ended).
        self.variables = tuple(variables) or ("x", "y", "z")
        self.coefficient_cap = coefficient_cap
        if coefficient_cap is None:
            self.name = "N[X]"
            offset = INFINITE_OFFSET
        elif coefficient_cap == 1:
            self.name = "B[X]"
            offset = 1
        else:
            self.name = f"N_{coefficient_cap}[X]"
            offset = coefficient_cap
        self.properties = SemiringProperties(
            add_idempotent=(coefficient_cap == 1),
            offset=offset,
            in_nin=True,
            in_nsur=True,
            in_nhcov=True,
            in_n1bi=(coefficient_cap == 1),
            in_nk_bi=(coefficient_cap is not None and coefficient_cap >= 2),
            in_ninf_bi=(coefficient_cap is None),
            poly_order_decidable=True,
            notes="Cbi = Nin ∩ Nsur (Thm. 4.10). N[X] ∈ C∞bi (Prop. 5.10), "
                  "B[X] ∈ C1bi, N_k[X] ∈ Ckbi (reconstruction).",
        )

    # ------------------------------------------------------------------

    def _cap(self, poly: Polynomial) -> Polynomial:
        if self.coefficient_cap is None:
            return poly
        cap = self.coefficient_cap
        return Polynomial(
            (mono, min(coeff, cap)) for mono, coeff in poly.items()
        )

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return self._cap(a.add(b))

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return self._cap(a.mul(b))

    def leq(self, a: Polynomial, b: Polynomial) -> bool:
        """Natural order: coefficient-wise ``≤`` (coefficients capped)."""
        return self._cap(a).natural_leq(self._cap(b))

    def normalize(self, a: Polynomial) -> Polynomial:
        return self._cap(a)

    def var(self, name: str) -> Polynomial:
        """The annotation consisting of the single variable ``name``."""
        return Polynomial.variable(name)

    def sample(self, rng) -> Polynomial:
        """A random small polynomial over the sampling variables."""
        term_count = rng.choice((0, 1, 1, 2, 2, 3))
        terms = []
        for _ in range(term_count):
            degree = rng.choice((0, 1, 1, 2))
            word = tuple(rng.choice(self.variables) for _ in range(degree))
            coeff = rng.choice((1, 1, 1, 2, 3))
            terms.append((Monomial.from_variables(word), coeff))
        return self._cap(Polynomial(terms))

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼ P2`` at the generic valuation ``x ↦ x``.

        ``N[X]`` is the free commutative semiring over ``X`` and
        ``N_k[X]`` the free one of the variety with the (equational)
        offset axiom ``k·a = (k+1)·a``; in both cases any valuation into
        the semiring factors through the generic one by freeness, and
        morphisms preserve the natural (coefficient-wise) order — so the
        generic comparison decides the universal polynomial order.
        """
        valuation = {
            var: Polynomial.variable(var)
            for var in p1.variables() | p2.variables()
        }
        return self.leq(p1.eval_in(self, valuation),
                        p2.eval_in(self, valuation))


#: Provenance polynomials ``N[X]`` — the universal semiring.
NX = ProvenancePolynomialSemiring()

#: Boolean provenance polynomials ``B[X]`` — universal for ``S¹``.
BX = ProvenancePolynomialSemiring(coefficient_cap=1)

#: Coefficient-capped provenance polynomials with offset exactly 2.
N2X = ProvenancePolynomialSemiring(coefficient_cap=2)

#: Coefficient-capped provenance polynomials with offset exactly 3.
N3X = ProvenancePolynomialSemiring(coefficient_cap=3)
