"""The non-negative rationals ``R+`` with ordinary arithmetic.

The paper uses ``R+`` (Sec. 4.3) as an example of a semiring for which
even the bijective-homomorphism condition is *not* necessary: by AM–GM,
``x1·x2 ≼R+ x1² + x2²`` although the right side has no square-free
monomial, so ``R+`` lies outside ``Nin`` (and ``Nsur``).  It is also not
⊗-semi-idempotent (``x·y ≤ x²·y`` fails for ``x < 1``), leaving it in
the plain class ``S``: bijective homomorphisms are sufficient, only
homomorphic covering is known to be necessary, and no decision procedure
for containment over ``R+`` is provided by the paper.

Elements are exact :class:`fractions.Fraction` values ``≥ 0``.
"""

from __future__ import annotations

from fractions import Fraction

from .base import INFINITE_OFFSET, Semiring, SemiringProperties

_SAMPLES = (
    Fraction(0), Fraction(1), Fraction(1), Fraction(1, 2), Fraction(2),
    Fraction(1, 3), Fraction(3), Fraction(5, 2),
)


class NonNegativeRationalSemiring(Semiring):
    """``R+``: ordinary arithmetic on the non-negative rationals."""

    name = "R+"
    properties = SemiringProperties(
        offset=INFINITE_OFFSET,
        in_nhcov=True,
        notes="Plain S member: outside Ssur (x < 1 defeats "
              "semi-idempotence) and outside Nin/Nsur (AM-GM); only "
              "bounds are available for containment.",
    )

    @property
    def zero(self) -> Fraction:
        return Fraction(0)

    @property
    def one(self) -> Fraction:
        return Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return a + b

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return a * b

    def leq(self, a: Fraction, b: Fraction) -> bool:
        return a <= b

    def sample(self, rng) -> Fraction:
        return rng.choice(_SAMPLES)


#: Singleton non-negative rational semiring.
RPLUS = NonNegativeRationalSemiring()
