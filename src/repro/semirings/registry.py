"""Registry of all built-in annotation semirings.

The registry drives the parameterized test suites, the classification
benchmark (Table 1 membership matrix) and name-based lookup in the
examples.
"""

from __future__ import annotations

from .absorptive import SORP, AbsorptivePolynomialSemiring
from .access import ACCESS, AccessControlSemiring
from .base import Semiring
from .boolean import B, BooleanSemiring
from .fuzzy import FUZZY, FuzzySemiring
from .lineage import LIN, LineageSemiring
from .lukasiewicz import LUKASIEWICZ, LukasiewiczSemiring
from .natural import (N, N2_SATURATING, N3_SATURATING,
                      NaturalSemiring, SaturatingNaturalSemiring)
from .posbool import POSBOOL, PosBoolSemiring
from .probability import EVENTS, EventSemiring
from .product import LIN_X_N2, ProductSemiring
from .provenance import BX, N2X, N3X, NX, ProvenancePolynomialSemiring
from .rationals import RPLUS, NonNegativeRationalSemiring
from .ssur_free import SSUR, SsurFreeSemiring
from .trio import TRIO, TrioSemiring
from .tropical import (TMINUS, TPLUS, TropicalMaxPlusSemiring,
                       TropicalMinPlusSemiring)
from .viterbi import VITERBI, ViterbiSemiring
from .why import WHY, WhySemiring

#: Every built-in semiring instance, in presentation order.
ALL_SEMIRINGS: tuple[Semiring, ...] = (
    B,
    POSBOOL,
    EVENTS,
    FUZZY,
    ACCESS,
    LIN,
    SORP,
    TPLUS,
    VITERBI,
    LUKASIEWICZ,
    WHY,
    TRIO,
    SSUR,
    TMINUS,
    N,
    N2_SATURATING,
    N3_SATURATING,
    LIN_X_N2,
    NX,
    BX,
    N2X,
    N3X,
    RPLUS,
)


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring by its display name.

    Raises ``KeyError`` with the available names on a miss.
    """
    for semiring in ALL_SEMIRINGS:
        if semiring.name == name:
            return semiring
    available = ", ".join(s.name for s in ALL_SEMIRINGS)
    raise KeyError(f"unknown semiring {name!r}; available: {available}")
