"""Registry of annotation semirings.

:class:`SemiringRegistry` is a mutable, dict-backed name → semiring map
with alias support, case-insensitive fallback and "did you mean"
suggestions on a miss.  :data:`DEFAULT_REGISTRY` holds every built-in
semiring and drives the parameterized test suites, the classification
benchmark (Table 1 membership matrix) and name-based lookup in the
examples; :class:`~repro.api.ContainmentEngine` instances start from a
copy of it, so per-engine registrations never leak globally.

``ALL_SEMIRINGS`` and :func:`get_semiring` are kept as thin back-compat
shims over the default registry.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Iterator, Mapping

from .absorptive import SORP
from .access import ACCESS
from .base import Semiring
from .boolean import B
from .fuzzy import FUZZY
from .lineage import LIN
from .lukasiewicz import LUKASIEWICZ
from .natural import N, N2_SATURATING, N3_SATURATING
from .posbool import POSBOOL
from .probability import EVENTS
from .product import LIN_X_N2
from .provenance import BX, N2X, N3X, NX
from .rationals import RPLUS
from .ssur_free import SSUR
from .trio import TRIO
from .tropical import TMINUS, TPLUS
from .viterbi import VITERBI
from .why import WHY

__all__ = ["ALL_SEMIRINGS", "DEFAULT_REGISTRY", "SemiringRegistry",
           "get_semiring"]

#: Every built-in semiring instance, in presentation order (back-compat
#: shim; new code should iterate a :class:`SemiringRegistry`).
ALL_SEMIRINGS: tuple[Semiring, ...] = (
    B,
    POSBOOL,
    EVENTS,
    FUZZY,
    ACCESS,
    LIN,
    SORP,
    TPLUS,
    VITERBI,
    LUKASIEWICZ,
    WHY,
    TRIO,
    SSUR,
    TMINUS,
    N,
    N2_SATURATING,
    N3_SATURATING,
    LIN_X_N2,
    NX,
    BX,
    N2X,
    N3X,
    RPLUS,
)

#: Human-friendly alternative names for the built-in semirings.
_DEFAULT_ALIASES: dict[str, tuple[str, ...]] = {
    "B": ("bool", "boolean", "set"),
    "N": ("bag", "nat", "counting"),
    "T+": ("tropical", "min-plus", "cost"),
    "T-": ("max-plus", "schedule"),
    "N[X]": ("provenance", "prov", "polynomials"),
    "Why[X]": ("why",),
    "Lin[X]": ("lineage",),
    "Trio[X]": ("trio",),
    "F": ("fuzzy",),
    "V": ("viterbi",),
    "A": ("access",),
    "L": ("lukasiewicz",),
    "R+": ("rationals", "prob-weights"),
}


class SemiringRegistry:
    """A mutable name → :class:`Semiring` map with aliases.

    Lookup tries the exact name, then aliases, then a case-insensitive
    fallback over both.  A miss raises ``KeyError`` listing the
    available canonical names plus a closest-name suggestion.

    The registry tracks a monotonically increasing :attr:`version`,
    bumped by :meth:`register`, so caches layered above it
    (classification, verdicts) can detect semiring mutation and
    invalidate themselves; alias edits do not bump it because those
    caches key by semiring instance.
    """

    def __init__(self, semirings: Iterable[Semiring] = (),
                 aliases: Mapping[str, Iterable[str]] | None = None):
        self._by_name: dict[str, Semiring] = {}
        self._aliases: dict[str, str] = {}   # alias → canonical name
        self._version = 0
        for semiring in semirings:
            self.register(semiring)
        for name, alts in (aliases or {}).items():
            self.alias(name, *alts)

    # -- mutation -------------------------------------------------------

    def register(self, semiring: Semiring, *,
                 aliases: Iterable[str] = (),
                 replace: bool = False) -> Semiring:
        """Add ``semiring`` under its :attr:`~Semiring.name`.

        Re-registering an existing name — or registering a name that
        would shadow an existing alias (canonical names win on lookup)
        — raises ``ValueError`` unless ``replace=True``, which also
        drops the shadowed alias binding.  Returns the semiring for
        chaining.
        """
        name = semiring.name
        aliases = tuple(aliases)
        if not replace:
            if name in self._by_name:
                raise ValueError(f"semiring {name!r} is already "
                                 "registered; pass replace=True to "
                                 "override")
            if name in self._aliases:
                raise ValueError(
                    f"semiring name {name!r} would shadow an alias of "
                    f"{self._aliases[name]!r}; pass replace=True to "
                    "rebind it")
        # Validate everything before mutating, so a failed register
        # leaves the registry (and dependent caches) untouched.
        for alias in aliases:
            self._validate_alias(alias, name, replace, pending_name=name)
        self._aliases.pop(name, None)
        self._by_name[name] = semiring
        self._version += 1
        for alias in aliases:
            self._aliases[alias] = name
        return semiring

    def _validate_alias(self, alias: str, name: str, replace: bool, *,
                        pending_name: str | None = None) -> None:
        """Reject alias bindings that could never take effect or would
        silently rebind an established name."""
        if alias in self._by_name or alias == pending_name:
            raise ValueError(
                f"alias {alias!r} collides with a registered semiring "
                "name; canonical names always win on lookup, so the "
                "alias could never take effect")
        if not replace:
            bound = self._aliases.get(alias)
            if bound is not None and bound != name:
                raise ValueError(
                    f"alias {alias!r} is already bound to {bound!r}; "
                    "pass replace=True to rebind it")

    def alias(self, name: str, *aliases: str, replace: bool = False) -> None:
        """Declare alternative lookup names for a registered semiring.

        Rebinding an alias that already points at a *different*
        semiring raises ``ValueError`` unless ``replace=True``; an
        alias equal to a registered canonical name is always rejected
        (canonical names win on lookup, so it would be a dead binding).
        Validation happens before any mutation — a failing call is a
        no-op.
        """
        if name not in self._by_name:
            raise KeyError(f"cannot alias unregistered semiring {name!r}")
        for alias in aliases:
            self._validate_alias(alias, name, replace)
        for alias in aliases:
            self._aliases[alias] = name
        # No version bump: caches layered above the registry are keyed
        # by semiring *instances*, which alias edits cannot affect.

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> Semiring:
        """Look up a semiring by canonical name or alias.

        Falls back to a case-insensitive match; raises ``KeyError`` with
        the available names and a "did you mean" suggestion on a miss.
        """
        found = self.find(name)
        if found is not None:
            return found
        message = f"unknown semiring {name!r}; available: " \
                  f"{', '.join(self.names())}"
        candidates = list(self._by_name) + list(self._aliases)
        close = difflib.get_close_matches(name, candidates, n=1,
                                          cutoff=0.5)
        if close:
            message += f"; did you mean {close[0]!r}?"
        raise KeyError(message)

    def find(self, name: str) -> Semiring | None:
        """Like :meth:`get` but returns ``None`` on a miss."""
        semiring = self._by_name.get(name)
        if semiring is not None:
            return semiring
        canonical = self._aliases.get(name)
        if canonical is not None:
            return self._by_name[canonical]
        folded = name.casefold()
        for known, semiring in self._by_name.items():
            if known.casefold() == folded:
                return semiring
        for alias, canonical in self._aliases.items():
            if alias.casefold() == folded:
                return self._by_name[canonical]
        return None

    def names(self) -> tuple[str, ...]:
        """Canonical names, in registration order."""
        return tuple(self._by_name)

    def semirings(self) -> tuple[Semiring, ...]:
        """Registered semirings, in registration order."""
        return tuple(self._by_name.values())

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every :meth:`register` call."""
        return self._version

    def copy(self) -> "SemiringRegistry":
        """An independent copy (mutations do not propagate back)."""
        clone = SemiringRegistry()
        clone._by_name = dict(self._by_name)
        clone._aliases = dict(self._aliases)
        return clone

    # -- dunder ---------------------------------------------------------

    def __iter__(self) -> Iterator[Semiring]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.find(name) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SemiringRegistry {', '.join(self._by_name)}>"


#: The registry of built-in semirings (shared process-wide; engines
#: copy it so their registrations stay local).
DEFAULT_REGISTRY = SemiringRegistry(ALL_SEMIRINGS, aliases=_DEFAULT_ALIASES)


def get_semiring(name: str) -> Semiring:
    """Back-compat shim: look up ``name`` in :data:`DEFAULT_REGISTRY`."""
    return DEFAULT_REGISTRY.get(name)
