"""The Trio provenance semiring ``Trio[X]`` (Das Sarma–Theobald–Widom).

Trio lineage counts *how many times* each witness derives a tuple but
forgets exponents inside a witness: ``Trio[X]`` is the quotient of
``N[X]`` by the congruence ``x² = x`` — polynomials whose monomials are
square-free ("bags of witnesses").

``Trio[X]`` is ⊗-semi-idempotent (squaring a sum only grows coefficients)
but neither ⊗-idempotent, 1-annihilating, nor ⊕-idempotent; its smallest
offset is ``∞``.  The paper places it in ``Csur`` at the CQ level
(Thm. 4.14) and *excludes* it from ``N¹sur`` (Sec. 5.3) — at the UCQ
level the right condition for it is the matching-based ``։∞``
(Thm. 5.17, membership in ``C∞sur`` validated against the oracle).

Elements are :class:`~repro.polynomials.polynomial.Polynomial` values
whose monomials are square-free.
"""

from __future__ import annotations

from ..polynomials.polynomial import Monomial, Polynomial
from .base import INFINITE_OFFSET, Semiring, SemiringProperties


def _squash(poly: Polynomial) -> Polynomial:
    """Project onto square-free monomials (drop exponents)."""
    return Polynomial(
        (mono.support_monomial(), coeff) for mono, coeff in poly.items()
    )


class TrioSemiring(Semiring):
    """``Trio[X]``: bags of witnesses — ``N[X]`` modulo ``x² = x``."""

    name = "Trio[X]"
    properties = SemiringProperties(
        mul_semi_idempotent=True,
        offset=INFINITE_OFFSET,
        in_nhcov=True,
        in_nsur=True,
        notes="Csur representative with infinite offset (Thm. 4.14). "
              "Explicitly NOT in N1sur (Sec. 5.3), hence not in N∞sur "
              "either (N∞sur ⊆ N1sur via the quotient-map composition), "
              "so at the UCQ level only bounds are available; the C∞sur "
              "representative is the free ordered Ssur[X].",
    )

    def __init__(self, variables: tuple[str, ...] = ()):
        #: Suggested sampling universe.
        self.variables = tuple(variables) or ("x", "y", "z")

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return a.add(b)

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        return _squash(a.mul(b))

    def leq(self, a: Polynomial, b: Polynomial) -> bool:
        """Natural order: coefficient-wise ``≤`` on witness bags."""
        return a.natural_leq(b)

    def normalize(self, a: Polynomial) -> Polynomial:
        return _squash(a)

    def var(self, name: str) -> Polynomial:
        """The annotation of a base tuple: one singleton witness."""
        return Polynomial.variable(name)

    def sample(self, rng) -> Polynomial:
        count = rng.choice((0, 1, 1, 2, 2))
        terms = []
        for _ in range(count):
            size = rng.choice((0, 1, 1, 2))
            witness = rng.sample(self.variables, min(size, len(self.variables)))
            coeff = rng.choice((1, 1, 2, 3))
            terms.append((Monomial.from_variables(witness), coeff))
        return Polynomial(terms)


#: Singleton Trio semiring.
TRIO = TrioSemiring()
