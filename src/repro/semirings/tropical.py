"""The tropical semiring ``T+`` and the schedule algebra ``T−``.

``T+ = (N0 ∪ {∞}, min, +, ∞, 0)`` models shortest-cost / most-economical
derivations; it is 1-annihilating (``min(0, x) = 0``), so it lies in
``Sin`` — but *not* in ``Nin`` (Ex. 4.6), so injective homomorphisms are
sufficient but not necessary.  Its natural order is the *reversed*
numeric order (``∞`` is the bottom).

``T− = (N0 ∪ {−∞}, max, +, −∞, 0)`` (max-plus / schedule algebra) models
critical-path durations; it is ⊗-semi-idempotent, so surjective
homomorphisms are sufficient (``Ssur``), but it is not in ``Nsur``.  Its
natural order is the usual numeric order.

Neither semiring has a homomorphism characterization, which is precisely
why the paper develops the small-model procedure (Thm. 4.17): both are
⊕-idempotent and their polynomial orders are decidable (Prop. 4.19),
implemented in :mod:`repro.polynomials.tropical_order`.

Elements are non-negative ``int`` values or the appropriate infinity.
"""

from __future__ import annotations

import math

from .base import Semiring, SemiringProperties


class TropicalMinPlusSemiring(Semiring):
    """``T+``: min-plus over ``N0 ∪ {∞}`` (cost semantics)."""

    name = "T+"
    poly_order = "min-plus"
    properties = SemiringProperties(
        one_annihilating=True,
        add_idempotent=True,
        offset=1,
        poly_order_decidable=True,
        notes="Sin \\ (Chom ∪ Nin): injective homs sufficient, not "
              "necessary (Ex. 4.6); containment decided by the "
              "small-model procedure (Thm. 4.17, Prop. 4.19).",
    )

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> int:
        return 0

    def add(self, a, b):
        return min(a, b)

    def mul(self, a, b):
        return a + b

    def leq(self, a, b) -> bool:
        """Natural order of min-plus: ``a ≼ b`` iff ``b ≤ a`` numerically
        (``∞``, the additive identity, is the bottom)."""
        return b <= a

    def sample(self, rng):
        return rng.choice((math.inf, 0, 0, 1, 1, 2, 3, 5))

    def vectorized_ops(self):
        try:
            from ._vectorized import TropicalMinPlusOps
        except ImportError:  # numpy unavailable — generic fallback
            return None
        return TropicalMinPlusOps()

    def poly_leq(self, p1, p2) -> bool:
        """The plain (uncached) LP decision; engines route this call
        through their certificate memo via ``poly_order``."""
        from ..polynomials.tropical_order import min_plus_poly_leq
        return min_plus_poly_leq(p1, p2)


class TropicalMaxPlusSemiring(Semiring):
    """``T−``: max-plus over ``N0 ∪ {−∞}`` (schedule algebra)."""

    name = "T-"
    poly_order = "max-plus"
    properties = SemiringProperties(
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        in_nhcov=True,
        in_n1hcov=True,
        poly_order_decidable=True,
        notes="Ssur \\ Nsur: surjective homs sufficient, not necessary; "
              "homomorphic covering IS necessary (Nhcov: set all xi = 0 "
              "and y = 1). Decided by the small-model procedure.",
    )

    @property
    def zero(self) -> float:
        return -math.inf

    @property
    def one(self) -> int:
        return 0

    def add(self, a, b):
        return max(a, b)

    def mul(self, a, b):
        return a + b

    def leq(self, a, b) -> bool:
        """Natural order of max-plus: the usual numeric order."""
        return a <= b

    def sample(self, rng):
        return rng.choice((-math.inf, 0, 0, 1, 1, 2, 3, 5))

    def vectorized_ops(self):
        try:
            from ._vectorized import TropicalMaxPlusOps
        except ImportError:  # numpy unavailable — generic fallback
            return None
        return TropicalMaxPlusOps()

    def poly_leq(self, p1, p2) -> bool:
        """The plain (uncached) LP decision; engines route this call
        through their certificate memo via ``poly_order``."""
        from ..polynomials.tropical_order import max_plus_poly_leq
        return max_plus_poly_leq(p1, p2)


#: The tropical (min-plus) semiring.
TPLUS = TropicalMinPlusSemiring()

#: The schedule algebra (max-plus).
TMINUS = TropicalMaxPlusSemiring()
