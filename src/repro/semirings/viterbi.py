"""The Viterbi semiring ``V = ([0, 1], max, ·, 0, 1)``.

Annotations are confidence scores; query evaluation computes the
confidence of the best derivation.  ``V`` is isomorphic to the tropical
semiring over the reals via ``a ↦ −log a``, and behaves like ``T+`` in
the classification: 1-annihilating (``max(1, x) = 1``), hence in ``Sin``
and ⊕-idempotent, but not in ``Nin`` (the Ex. 4.6 counterexample
transfers: ``x1² + 2x1x2 + x2² =V x1² + x2²`` because
``x1x2 ≤ max(x1, x2)²``).

Elements are exact :class:`fractions.Fraction` values in ``[0, 1]`` so
that the algebra is associative on the nose (floats would violate the
axioms in the last ulp and trip the auditor).
"""

from __future__ import annotations

from fractions import Fraction

from .base import Semiring, SemiringProperties

_SAMPLES = (
    Fraction(0), Fraction(1), Fraction(1), Fraction(1, 2), Fraction(1, 3),
    Fraction(2, 3), Fraction(1, 4), Fraction(3, 4), Fraction(1, 8),
)


class ViterbiSemiring(Semiring):
    """``V``: best-derivation confidence scores."""

    name = "V"
    poly_order = "min-plus"
    properties = SemiringProperties(
        one_annihilating=True,
        add_idempotent=True,
        offset=1,
        poly_order_decidable=True,
        notes="Sin member isomorphic to real-valued T+ via −log; "
              "not in Nin (Ex. 4.6 transfers). The isomorphism makes "
              "the T+ polynomial-order LP decide ≼V, so the small-model "
              "procedure (Cor. 4.18) applies.",
    )

    @property
    def zero(self) -> Fraction:
        return Fraction(0)

    @property
    def one(self) -> Fraction:
        return Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return max(a, b)

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return a * b

    def leq(self, a: Fraction, b: Fraction) -> bool:
        """Natural order: the usual order on ``[0, 1]``."""
        return a <= b

    def sample(self, rng) -> Fraction:
        return rng.choice(_SAMPLES)

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼V P2`` through the −log isomorphism.

        ``a ↦ −log a`` carries ``([0,1], max, ×)`` onto the real-valued
        min-plus semiring (``0 ↦ ∞``), reversing the order direction the
        same way ``T+``'s natural order reverses the numeric one — so
        ``P1 ≼V P2`` iff ``P1 ≼T+ P2`` read over real exponents, which
        is exactly what the homogeneous-LP decision answers (its
        relaxation is real-valued to begin with, and tropical addition
        absorbs coefficients on both sides of the isomorphism).
        """
        from ..polynomials.tropical_order import min_plus_poly_leq
        return min_plus_poly_leq(p1, p2)


#: Singleton Viterbi semiring.
VITERBI = ViterbiSemiring()
