"""The why-provenance semiring ``Why[X]`` (Buneman–Khanna–Tan).

An annotation is a *set of witnesses*; each witness is the set of base
tuples used jointly in one derivation.  ``Why[X] = (P(P(X)), ∪, ⋓, ∅,
{∅})`` where ``a ⋓ b = {w1 ∪ w2 : w1 ∈ a, w2 ∈ b}``.

``Why[X]`` is ⊗-*semi*-idempotent (but not ⊗-idempotent: squaring can
create merged witnesses) and ⊕-idempotent.  The paper places it in
``Csur`` (Thm. 4.14): CQ containment is equivalent to the existence of a
surjective homomorphism, and at the UCQ level ``Why[X] ∈ C1sur``
(Cor. 5.18: the local condition ``Q2 ։1 Q1``).

Elements are ``frozenset`` of ``frozenset`` of variable names.
"""

from __future__ import annotations

from .base import Semiring, SemiringProperties

Witness = frozenset


class WhySemiring(Semiring):
    """``Why[X]``: witness sets with union / pairwise-union."""

    name = "Why[X]"
    properties = SemiringProperties(
        add_idempotent=True,
        mul_semi_idempotent=True,
        offset=1,
        in_nhcov=True,
        in_nsur=True,
        in_n1sur=True,
        in_n1hcov=True,
        poly_order_decidable=True,
        notes="Csur representative (Thm. 4.14); C1sur at the UCQ level "
              "(Cor. 5.18). Nsur membership is witnessed by the valuation "
              "x ↦ {{x}}; ։∞ is NOT necessary (finite offset 1).",
    )

    def __init__(self, variables: tuple[str, ...] = ()):
        #: Suggested sampling universe.
        self.variables = tuple(variables) or ("x", "y", "z")

    @property
    def zero(self) -> frozenset:
        return frozenset()

    @property
    def one(self) -> frozenset:
        return frozenset((Witness(),))

    def add(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def mul(self, a: frozenset, b: frozenset) -> frozenset:
        return frozenset(w1 | w2 for w1 in a for w2 in b)

    def leq(self, a: frozenset, b: frozenset) -> bool:
        """Natural order: witness-set inclusion."""
        return a <= b

    def var(self, name: str) -> frozenset:
        """The annotation of a base tuple: one singleton witness."""
        return frozenset((Witness((name,)),))

    def sample(self, rng) -> frozenset:
        count = rng.choice((0, 1, 1, 1, 2, 2, 3))
        witnesses = []
        for _ in range(count):
            size = rng.choice((0, 1, 1, 2))
            witnesses.append(Witness(
                rng.sample(self.variables, min(size, len(self.variables)))
            ))
        return frozenset(witnesses)

    def poly_leq(self, p1, p2) -> bool:
        """Decide ``P1 ≼Why P2`` over the private-witness family.

        A violation at an arbitrary valuation is a witness
        ``w ∈ Eval(P1) \\ Eval(P2)`` built from at most ``d`` chosen
        witnesses per variable (``d`` = the largest exponent in ``P1``).
        Shrinking each ``ν(x)`` to exactly the chosen witnesses
        preserves the violation (``Eval(P2)`` only loses elements), and
        *separating* the witnesses into private singletons preserves it
        too: mapping the private tags back onto the original witnesses
        is a semiring morphism ``f`` with ``f ∘ Eval_sep = Eval_orig``,
        so if the separated ``P2`` produced the separated witness, its
        ``f``-image would witness ``w ∈ Eval(P2)`` — contradiction.
        Hence checking all valuations with
        ``ν(x) ⊆ {∅} ∪ {{x·1}, …, {x·d}}`` (plus the empty set = 0) is
        exact.
        """
        from itertools import product as _product

        variables = sorted(p1.variables() | p2.variables())
        depth = max(
            (exp for mono, _ in p1.items() for _, exp in mono.powers),
            default=1,
        )
        per_var_options: dict[str, list[frozenset]] = {}
        for var in variables:
            atoms = [Witness()] + [Witness((f"{var}·{i}",))
                                   for i in range(1, depth + 1)]
            options = []
            for mask in _product((False, True), repeat=len(atoms)):
                options.append(frozenset(
                    atom for atom, chosen in zip(atoms, mask) if chosen))
            per_var_options[var] = options
        for values in _product(*(per_var_options[var] for var in variables)):
            valuation = dict(zip(variables, values))
            if not self.leq(p1.eval_in(self, valuation),
                            p2.eval_in(self, valuation)):
                return False
        return True


#: Singleton why-provenance semiring.
WHY = WhySemiring()
