"""``repro.service`` — the containment engine as a deployable service.

Three layers turn the cached :class:`~repro.api.ContainmentEngine`
library facade into a scalable decision service:

* :mod:`repro.service.pool` — :class:`WorkerPool`, a multiprocess
  ``decide_many``/``decide_stream`` that shards requests onto
  per-process engines by a deterministic query/semiring digest
  (identical pairs share one worker's LRUs), preserves input order and
  reports per-worker engine stats;
* :mod:`repro.service.snapshot` — versioned, validated warm-start
  snapshots of every engine cache layer, so short-lived CLI batch runs
  stop re-paying for structural work;
* :mod:`repro.service.server` — :class:`DecisionServer`, a long-lived
  stdin/stdout or TCP JSONL loop with in-band errors, control ops and
  periodic snapshot flushes, behind ``python -m repro serve``.
"""

from .pool import DecisionError, WorkerPool, shard_key
from .server import DecisionServer
from .snapshot import (SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SnapshotError,
                       load_snapshot, merge_states, read_snapshot,
                       save_snapshot, write_snapshot)

__all__ = [
    "DecisionError",
    "DecisionServer",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "WorkerPool",
    "load_snapshot",
    "merge_states",
    "read_snapshot",
    "save_snapshot",
    "shard_key",
    "write_snapshot",
]
