"""``repro.service`` — the containment engine as a deployable service.

Five layers turn the cached :class:`~repro.api.ContainmentEngine`
library facade into a scalable, self-healing decision service:

* :mod:`repro.service.pool` — :class:`WorkerPool`, a multiprocess
  ``decide_many``/``decide_stream`` that shards requests onto
  per-process engines by a deterministic query/semiring digest
  (identical pairs share one worker's LRUs), preserves input order and
  reports per-worker engine stats;
* :mod:`repro.service.supervisor` — :class:`SupervisedWorkerPool`, the
  self-healing pool: dead workers are respawned warm from the latest
  snapshot, their in-flight requests re-driven, and skewed shards
  relieved through a bounded work-stealing overflow queue — all while
  keeping results byte-identical to sequential evaluation;
* :mod:`repro.service.snapshot` — versioned, validated warm-start
  snapshots of every engine cache layer, so short-lived CLI batch runs
  stop re-paying for structural work;
* :mod:`repro.service.server` — :class:`DecisionServer`, a long-lived
  stdin/stdout or TCP JSONL loop with in-band errors, control ops,
  bounded input lines and periodic snapshot flushes, behind
  ``python -m repro serve``;
* :mod:`repro.service.gateway` — :class:`AsyncGateway`, the asyncio
  front end (``serve --tcp --async``) adding per-connection
  pipelining, bounded admission with load shedding, and per-request
  deadlines, with :mod:`repro.service.metrics` counting every
  admission and supervision event for the ``stats`` op.
"""

from .gateway import AsyncGateway
from .metrics import ServiceMetrics
from .pool import DecisionError, WorkerPool, shard_key
from .server import DecisionServer
from .snapshot import (SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SnapshotError,
                       load_snapshot, merge_states, read_snapshot,
                       save_snapshot, write_snapshot)
from .supervisor import SupervisedWorkerPool

__all__ = [
    "AsyncGateway",
    "DecisionError",
    "DecisionServer",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "ServiceMetrics",
    "SnapshotError",
    "SupervisedWorkerPool",
    "WorkerPool",
    "load_snapshot",
    "merge_states",
    "read_snapshot",
    "save_snapshot",
    "shard_key",
    "write_snapshot",
]
