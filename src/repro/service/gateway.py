"""Asyncio JSONL front end: pipelining, backpressure, deadlines.

``serve --tcp`` handles each connection with a thread and decides one
request at a time per connection — robust, but a single slow client
ties up a thread and a pipelining client gets no overlap.  The
:class:`AsyncGateway` (``python -m repro serve --tcp --async``) is a
single-threaded asyncio front end over the same
:class:`~repro.service.server.DecisionServer` protocol that adds the
elastic-serving behaviours:

**Pipelining.**  A connection may write many request lines without
waiting; the gateway submits each to the worker pool as it arrives
and writes responses back *in request order*, overlapping the pool's
computation across the whole pipeline.

**Backpressure & load shedding.**  At most ``queue_limit`` decisions
are admitted gateway-wide at once; a request past the high watermark
is *rejected newest* with a structured in-band response —
``{"error": "overloaded...", "overloaded": true, "id": ...}`` — in
its pipeline position, so clients can retry with their correlation id
instead of hanging.  (Reject-newest keeps already-admitted work — the
work most likely to be near completion — running.)

**Deadlines.**  With ``deadline`` set, a decision that does not
complete in time is answered in-band with ``{"error": "deadline
expired...", "expired": true}`` and the pool's interest in the result
is abandoned; the eventual verdict is discarded instead of leaking.

**Bounded lines.**  The same ``max_line_bytes`` contract as the
synchronous server: an over-long line is drained in bounded chunks and
answered in-band, never buffered whole.

Admission outcomes are counted in the shared
:class:`~repro.service.metrics.ServiceMetrics` (``accepted`` / ``shed``
/ ``expired``) next to the supervisor's respawn/steal counters, and
the protocol's control ops (``ping``/``stats``/``snapshot``/
``shutdown``) are delegated to the wrapped ``DecisionServer`` on an
executor thread so a stats broadcast never stalls the event loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Mapping

from ..api.batch import error_text
from ..api.documents import coerce_request_id
from ..queries.parser import ParseError
from .metrics import ServiceMetrics
from .pool import DecisionError, WorkerPool
from .server import DecisionServer

__all__ = ["AsyncGateway"]

_REQUEST_ERRORS = (ValueError, TypeError, KeyError, ParseError)

#: Chunk size for draining oversized lines without buffering them.
_DRAIN_CHUNK = 1 << 16


class _BoundedLineReader:
    """Newline-delimited reads off a StreamReader with a byte bound.

    Owns its buffer (``StreamReader.readline`` raises and leaves
    partial state on overrun) so an oversized line can be drained in
    bounded chunks while pipelined follow-on lines in the same TCP
    segment are preserved.
    """

    def __init__(self, reader: asyncio.StreamReader, max_bytes: int):
        self._reader = reader
        self._max = max(0, int(max_bytes))
        self._buffer = b""

    def _pop_line(self) -> tuple[str, object] | None:
        """Split one complete line off the buffer, if one is there."""
        index = self._buffer.find(b"\n")
        if index < 0:
            return None
        raw = self._buffer[:index]
        self._buffer = self._buffer[index + 1:]
        if self._max and len(raw) > self._max:
            return ("oversized", len(raw))
        return ("line", raw.decode("utf-8", errors="replace"))

    async def next(self) -> tuple[str, object]:
        """The next event: ``(kind, payload)``.

        ``("line", text)`` for a complete line within the bound,
        ``("oversized", byte_count)`` for a dropped over-long line, and
        ``("eof", None)`` when the peer is done.
        """
        while True:
            popped = self._pop_line()
            if popped is not None:
                return popped
            if self._max and len(self._buffer) > self._max:
                dropped = len(self._buffer)
                self._buffer = b""
                while True:  # drain to the next newline, never buffering
                    chunk = await self._reader.read(_DRAIN_CHUNK)
                    if not chunk:
                        return ("oversized", dropped)
                    index = chunk.find(b"\n")
                    if index >= 0:
                        dropped += index
                        self._buffer = chunk[index + 1:]
                        return ("oversized", dropped)
                    dropped += len(chunk)
            chunk = await self._reader.read(_DRAIN_CHUNK)
            if not chunk:
                if self._buffer:
                    raw, self._buffer = self._buffer, b""
                    if self._max and len(raw) > self._max:
                        return ("oversized", len(raw))
                    return ("line", raw.decode("utf-8", errors="replace"))
                return ("eof", None)
            self._buffer += chunk


def _resolve(future: asyncio.Future, outcome) -> None:
    """Set a bridged result, tolerating a deadline-cancelled future."""
    if not future.done():
        future.set_result(outcome)


def _bridge(loop: asyncio.AbstractEventLoop, future: asyncio.Future,
            outcome) -> None:
    """Deliver a collector-thread outcome into the event loop.

    Runs on the pool's collector thread; a loop that already closed
    (teardown race) makes the outcome moot and must not kill the
    collector.
    """
    try:
        loop.call_soon_threadsafe(_resolve, future, outcome)
    except RuntimeError:
        pass


class AsyncGateway:
    """An asyncio TCP server multiplexing JSONL clients into a pool.

    Wraps a :class:`WorkerPool` (for byte-identical decisions) and a
    :class:`DecisionServer` (for control ops, counters and snapshot
    flushing).  One instance serves many concurrent connections on one
    event loop; per-request work happens in the pool's worker
    processes, bridged back via ``call_soon_threadsafe``.
    """

    def __init__(self, pool: WorkerPool, *,
                 server: DecisionServer | None = None,
                 deadline: float = 0.0,
                 queue_limit: int = 256,
                 pipeline_depth: int = 64,
                 max_line_bytes: int = 0,
                 metrics: ServiceMetrics | None = None):
        self._pool = pool
        self._server = (server if server is not None
                        else DecisionServer(pool=pool,
                                            max_line_bytes=max_line_bytes))
        self._deadline = max(0.0, float(deadline))
        self._queue_limit = max(1, int(queue_limit))
        self._pipeline_depth = max(1, int(pipeline_depth))
        self._max_line_bytes = max(0, int(max_line_bytes))
        if metrics is not None:
            self.metrics = metrics
        else:
            pool_metrics = getattr(pool, "metrics", None)
            self.metrics = (pool_metrics if pool_metrics is not None
                            else ServiceMetrics())
        self._inflight = 0  # repro-lint: owner=_admit,_decide
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping: asyncio.Event | None = None
        self._readers: set = set()
        self._writers: set = set()
        self._conn_tasks: set = set()
        self.tcp_address: tuple | None = None

    @property
    def served(self) -> int:
        """Decision requests answered (shared with the wrapped server)."""
        return self._server.served

    # -- serving -------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 0, *,
                    ready=None) -> int:
        """Accept and serve connections until a ``shutdown`` op arrives.

        With ``port=0`` the OS picks a free port; :attr:`tcp_address`
        carries the bound address once ``ready`` (a
        ``threading.Event`` or ``asyncio.Event``) is set.  On shutdown,
        open connections are closed, in-flight responses are drained,
        and the wrapped server's final snapshot flush runs.  Returns
        the number of decision requests served.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(self._on_connection, host, port)
        self.tcp_address = server.sockets[0].getsockname()[:2]
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stopping.wait()
        finally:
            # Wind the open conversations down gracefully: an EOF nudge
            # ends each read loop, and every connection then drains its
            # own response pipeline before closing its writer.  Only
            # stragglers (e.g. a pump wedged on a stalled client) get
            # their transports yanked and their tasks cancelled.
            for stream in list(self._readers):
                stream.feed_eof()
            tasks = list(self._conn_tasks)
            if tasks:
                _, stragglers = await asyncio.wait(tasks, timeout=5.0)
                for writer in list(self._writers):
                    writer.close()
                for task in stragglers:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
            await loop.run_in_executor(None, self._server.close)
        return self._server.served

    def shutdown(self) -> None:
        """Stop :meth:`serve` from the event loop's own callbacks."""
        if self._stopping is not None:
            self._stopping.set()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """One client conversation: read, admit, answer in order."""
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._readers.add(reader)
        self._writers.add(writer)
        lines = _BoundedLineReader(reader, self._max_line_bytes)
        pending: asyncio.Queue = asyncio.Queue(maxsize=self._pipeline_depth)
        pump = asyncio.ensure_future(self._write_responses(pending, writer))
        stopping = False
        try:
            while not self._stopping.is_set():
                kind, payload = await lines.next()
                if kind == "eof":
                    break
                if kind == "oversized":
                    self._server.record(served=1, errors=1)
                    await pending.put(self._server.oversized_response())
                    continue
                item, stop = self._admit(payload)
                if item is not None:
                    await pending.put(item)
                if stop:
                    stopping = True
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await pending.put(None)
            try:
                await pump
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            self._readers.discard(reader)
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            if stopping:
                # Set only after this connection's pipeline is fully
                # drained: the shutdown ack — and every pipelined reply
                # admitted before it — must reach the client before
                # serve() starts tearing other connections down.
                self._stopping.set()

    async def _write_responses(self, pending: asyncio.Queue,
                               writer: asyncio.StreamWriter) -> None:
        """Drain the connection's pipeline, writing responses in order."""
        while True:
            item = await pending.get()
            if item is None:
                return
            response = (await item) if isinstance(item, asyncio.Future) \
                else item
            if response is None:
                continue
            payload = json.dumps(response, ensure_ascii=False)
            writer.write(payload.encode("utf-8") + b"\n")
            try:
                await writer.drain()
            except (ConnectionError, ConnectionResetError):
                return

    # -- admission -----------------------------------------------------

    def _admit(self, text: str) -> tuple:
        """Classify one line; returns ``(pipeline item, stop serving)``.

        The pipeline item is ``None`` (nothing to answer), a plain
        response dict, or a scheduled task whose result the writer
        pump will await in pipeline order.  Admission — including the
        shed decision — happens *here*, synchronously in arrival
        order, so the high watermark cannot be overrun by a burst.
        """
        text = text.strip()
        if not text or text.startswith("#"):
            return None, False
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("request line must be a JSON object")
        except ValueError as error:
            self._server.record(served=1, errors=1)
            return {"error": error_text(error)}, False
        if "op" in data:
            if data.get("op") == "shutdown":
                return {"op": "shutdown", "ok": True}, True
            return asyncio.ensure_future(self._control(data)), False
        if self._inflight >= self._queue_limit:
            self.metrics.add("shed")
            self._server.record(served=1, errors=1)
            response = {"error": f"overloaded: {self._inflight} requests "
                                 f"in flight (limit {self._queue_limit}); "
                                 f"retry later",
                        "overloaded": True}
            request_id = self._request_id_of(data)
            if request_id is not None:
                response["id"] = request_id
            return response, False
        self._inflight += 1
        self.metrics.add("accepted")
        return asyncio.ensure_future(self._decide(data)), False

    @staticmethod
    def _request_id_of(data: Mapping) -> str | None:
        """The request's correlation id, when one is readable."""
        try:
            return coerce_request_id(data.get("id"))
        except TypeError:
            return None

    async def _control(self, data: dict) -> dict:
        """Run a control op on an executor thread; never blocks the loop."""
        response, stop = await self._loop.run_in_executor(
            None, self._server.control, data)
        if stop:  # pragma: no cover - shutdown is short-circuited earlier
            self._stopping.set()
        return response

    async def _decide(self, data: dict) -> dict:
        """Decide one admitted request against the pool, with deadline."""
        try:
            try:
                request = self._pool.normalize(data)
            except _REQUEST_ERRORS as error:
                self._server.record(served=1, errors=1)
                response = {"error": error_text(error)}
                request_id = self._request_id_of(data)
                if request_id is not None:
                    response["id"] = request_id
                return response
            try:
                seq = self._pool.submit(request)
            except RuntimeError as error:  # dead shard / closed: in-band
                self._server.record(served=1, errors=1)
                return DecisionError(str(error), id=request.id).to_dict()
            loop = self._loop
            future = loop.create_future()
            self._pool.on_result(
                seq, lambda outcome: _bridge(loop, future, outcome))
            try:
                if self._deadline > 0:
                    outcome = await asyncio.wait_for(future, self._deadline)
                else:
                    outcome = await future
            except asyncio.TimeoutError:
                self._pool.abandon(seq)
                self.metrics.add("expired")
                self._server.record(served=1, errors=1)
                response = {"error": f"deadline expired after "
                                     f"{self._deadline:g}s",
                            "expired": True}
                if request.id is not None:
                    response["id"] = request.id
                return response
            if isinstance(outcome, DecisionError):
                self._server.record(served=1, errors=1)
                return outcome.to_dict()
            self._server.record(served=1, decided=1)
            loop.run_in_executor(None, self._server.maybe_flush)
            return outcome.to_dict()
        finally:
            self._inflight -= 1
