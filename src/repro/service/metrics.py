"""Service-level counters for the supervised pool and async gateway.

The engine's ``cache_info()`` counters describe *decision* work (hits,
misses, hom searches); they say nothing about the serving layer —
whether requests were shed under load, expired past their deadline,
or re-driven through a respawned worker.  :class:`ServiceMetrics` is
the one shared scoreboard for that layer: the supervisor, the gateway
and the :class:`~repro.service.server.DecisionServer` ``stats`` op all
read and write the same instance, so a single ``{"op": "stats"}``
round-trip shows the full serving picture.

Everything here is a plain monotonic counter or a gauge — cheap enough
to update on every request under one lock, JSON-able via
:meth:`ServiceMetrics.as_dict`, and summable across restarts only by
the reader (the service itself never resets them).
"""

from __future__ import annotations

import threading

__all__ = ["ServiceMetrics"]

#: The monotonic counters a metrics instance tracks, in report order.
_COUNTERS = ("accepted", "shed", "expired", "respawns", "steals",
             "redriven", "redrive_failures")


class ServiceMetrics:
    """Thread-safe counters describing the serving layer's behaviour.

    ``accepted``/``shed``/``expired`` count gateway admission outcomes;
    ``respawns``/``steals``/``redriven``/``redrive_failures`` count
    supervisor actions.  ``worker_restarts`` is a per-shard restart
    tally, and the queue-depth gauges record the most recent and the
    high-watermark backlog the dispatcher has seen.
    """

    def __init__(self, workers: int = 0):
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in _COUNTERS}  # repro-lint: owner=add
        self._restarts = [0] * max(0, int(workers))  # repro-lint: owner=note_restart
        self._queue_depths: list[int] = []  # repro-lint: owner=note_depths
        self._overflow_depth = 0  # repro-lint: owner=note_depths
        self._max_backlog = 0  # repro-lint: owner=note_depths

    def add(self, name: str, amount: int = 1) -> None:
        """Increment one of the named monotonic counters."""
        with self._lock:
            self._counts[name] += amount

    def get(self, name: str) -> int:
        """Read one counter (mostly for tests and assertions)."""
        with self._lock:
            return self._counts[name]

    def note_restart(self, index: int) -> None:
        """Record that worker ``index`` was respawned once more."""
        with self._lock:
            while len(self._restarts) <= index:
                self._restarts.append(0)
            self._restarts[index] += 1

    def note_depths(self, queue_depths: list[int],
                    overflow_depth: int) -> None:
        """Record the dispatcher's current per-shard/overflow backlog."""
        with self._lock:
            self._queue_depths = list(queue_depths)
            self._overflow_depth = overflow_depth
            backlog = sum(queue_depths) + overflow_depth
            if backlog > self._max_backlog:
                self._max_backlog = backlog

    def as_dict(self) -> dict:
        """A JSON-able snapshot of every counter and gauge."""
        with self._lock:
            report: dict = dict(self._counts)
            report["worker_restarts"] = list(self._restarts)
            report["queue_depths"] = list(self._queue_depths)
            report["overflow_depth"] = self._overflow_depth
            report["max_backlog"] = self._max_backlog
            return report
