"""A sharded multiprocess worker pool over :class:`ContainmentEngine`.

``ContainmentEngine.decide_many`` is strictly sequential — fine for a
library call, wasteful for the rewrite-auditing and bag-semantics sweep
workloads that issue thousands of independent Table-1 decisions.
:class:`WorkerPool` runs one engine per OS process and shards requests
with a *deterministic* digest of the parsed-query/semiring key, so:

* identical ``(semiring, q1, q2, equivalence)`` requests always land on
  the same worker and therefore share that worker's verdict LRU — a
  repeat is a ``cached: true`` hit exactly as in a sequential engine;
* structurally similar requests cluster, so the per-worker structural
  LRUs (hom search/enumeration, covered atoms, descriptions, tropical
  poly_leq certificates) stay hot;
* the assignment is reproducible across runs (the digest does not
  depend on ``PYTHONHASHSEED``).

Results are returned in input order regardless of which worker finishes
first.  Per-request failures (unknown semirings, malformed queries) are
reported in-band as :class:`DecisionError` values — one bad request
never kills the stream.  A worker process that dies is detected and its
in-flight requests are converted to in-band errors; the pool refuses
new work for its shard afterwards.  (The subclass in
:mod:`repro.service.supervisor` upgrades that policy to respawn and
re-drive.)

Every dispatched request carries a *ticket* — the worker echoes it back
with the reply, and the collector drops replies whose ticket no longer
matches the current dispatch of that sequence number.  For this base
pool a ticket never changes; the supervisor bumps it when it re-drives
a request after a respawn, so a zombie reply from the previous worker
generation can never race the re-driven one.

Workers can warm-start from a :mod:`repro.service.snapshot` file, and
:meth:`WorkerPool.collect_caches` gathers the merged cache state back
out of the workers so a batch run can leave a fresh snapshot behind.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..api.batch import error_text
from ..api.documents import (ContainmentRequest, VerdictDocument,
                             coerce_request_id)
from ..api.engine import ContainmentEngine
from ..queries.parser import ParseError
from .snapshot import SnapshotError, load_snapshot, merge_states

__all__ = ["DecisionError", "WorkerPool", "shard_key", "sum_stats"]

#: How often the collector checks worker liveness even while results
#: keep flowing — a steady stream must not postpone crash detection.
_REAP_INTERVAL = 0.25


def sum_stats(infos: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum per-worker ``cache_info()`` counter dicts into one.

    The single aggregation rule for worker stats — used by
    :meth:`WorkerPool.aggregate_stats` and by the server's ``stats``
    op (which already holds the per-worker list and must not trigger a
    second broadcast).
    """
    totals: dict[str, int] = {}
    for info in infos:
        for key, value in info.items():
            totals[key] = totals.get(key, 0) + value
    return totals

#: Exceptions a decision may raise that are *request* problems, not
#: pool problems — converted to in-band errors.
_REQUEST_ERRORS = (ValueError, TypeError, KeyError, ParseError)


@dataclass(frozen=True)
class DecisionError:
    """An in-band per-request failure from the pool.

    Mirrors the error objects of the JSONL batch stream: the message
    text plus the request's correlation id (when one was readable).
    """

    error: str
    id: str | None = None

    def to_dict(self) -> dict:
        """Plain JSON-able representation."""
        data: dict = {"error": self.error}
        if self.id is not None:
            data["id"] = self.id
        return data


def shard_key(request: ContainmentRequest, registry=None) -> bytes:
    """The deterministic sharding key of a request.

    Built from the canonical semiring name (resolved through
    ``registry`` so aliases like ``"bool"`` and ``"B"`` co-locate) and
    the canonical reprs of the parsed queries — both stable across
    processes and runs.  Must align with the engine's verdict-cache key:
    same shard key ⟺ same verdict-cache entry, which is what makes a
    parallel run's ``cached`` flags identical to a sequential run's.
    """
    token = request.semiring
    if registry is not None:
        semiring = registry.find(request.semiring)
        if semiring is not None:
            token = semiring.name
    return "\x1f".join((token, repr(request.q1), repr(request.q2),
                        str(int(request.equivalence)))).encode("utf-8")


def _close_inherited_sockets() -> None:
    """Close every socket fd this process inherited across fork.

    A worker forked while the serving tier has open TCP sockets —
    above all a *respawned* worker, forked mid-service — inherits
    duplicates of the listen socket and of every accepted connection.
    Held in the worker, those duplicates mean a client never sees the
    connection close (no FIN while any copy of the fd is open), so a
    pipelined client would hang waiting for EOF after a respawn.  The
    pool's queue pipes are FIFOs, not sockets, and stay untouched.
    """
    import stat
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover - non-/proc platform
        fds = list(range(3, 4096))
    for fd in fds:
        if fd < 3:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_main(index: int, inbox, outbox, snapshot_path,
                 load_verdicts: bool) -> None:
    """One worker process: an engine plus a message loop.

    ``load_verdicts`` controls whether the warm-start snapshot's
    verdict layer is imported: a *respawned* worker must start with the
    structural layers only, so the requests it re-decides carry the
    same ``cached`` flags a sequential run would produce (the
    supervisor re-stamps true duplicates at delivery).
    """
    _close_inherited_sockets()
    engine = ContainmentEngine()
    if snapshot_path is not None:
        try:
            load_snapshot(engine, snapshot_path,
                          include_verdicts=load_verdicts)
        except SnapshotError:
            pass  # a stale/corrupt snapshot means a cold start, not a crash
    try:
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "req":
                _, seq, request, ticket = message
                try:
                    outbox.put(("ok", seq, engine.decide_request(request),
                                ticket))
                except _REQUEST_ERRORS as error:
                    outbox.put(("err", seq, error_text(error), request.id,
                                ticket))
            elif kind == "caches":
                outbox.put(("caches", index,
                            engine.export_caches(
                                include_verdicts=message[1])))
            elif kind == "stats":
                outbox.put(("stats", index, engine.cache_info()))
            elif kind == "stop":
                outbox.put(("bye", index))
                return
    except (KeyboardInterrupt, EOFError, OSError):
        return  # parent went away or is shutting down


class WorkerPool:
    """``decide_many``/``decide_stream`` across a pool of engine processes.

    ``workers`` defaults to ``os.cpu_count()``.  ``snapshot_path`` makes
    every worker warm-start from that snapshot file (missing or stale
    files are silently ignored).  The pool is a context manager; always
    :meth:`close` it (worker processes are not daemons of your request
    stream).

    Thread safety: all public methods may be called from multiple
    threads (a TCP server decides from one thread per connection); a
    single background collector routes worker replies to waiters.
    """

    def __init__(self, workers: int | None = None, *,
                 snapshot_path: str | os.PathLike | None = None,
                 include_verdict_snapshot: bool = True,
                 start_method: str | None = None):
        count = workers if workers is not None else (os.cpu_count() or 1)
        if count < 1:
            raise ValueError(f"need at least one worker, got {count}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._snapshot_path = (os.fspath(snapshot_path)
                               if snapshot_path is not None else None)
        self._include_verdict_snapshot = include_verdict_snapshot
        # Parent-side engine: parse interning for request normalization
        # plus the registry for canonical shard keys.  It never decides.
        self._parent_engine = ContainmentEngine()
        self._outbox = self._context.Queue()
        # repro-lint: owner=_spawn_process,submit,_broadcast,_dispatch_locked,_handle_worker_death
        self._inboxes: list = []
        self._processes: list = []
        self._cond = threading.Condition()
        # repro-lint: owner=_collect,_deliver_error_locked,result,on_result,abandon
        self._results: dict[int, tuple] = {}
        self._replies: dict[str, dict[int, Any]] = {"caches": {},
                                                    "stats": {}}
        self._assigned: dict[int, int] = {}     # seq → worker index
        self._requests: dict[int, ContainmentRequest] = {}  # in flight
        self._tickets: dict[int, int] = {}      # seq → dispatch ticket
        self._callbacks: dict[int, Callable] = {}
        self._abandoned: set[int] = set()
        self._active_broadcast: tuple | None = None
        self._dead: set[int] = set()
        self._next_seq = 0
        self._dispatch_lock = threading.Lock()
        self._control_lock = threading.Lock()
        self._closed = False
        self._stop = threading.Event()
        for index in range(count):
            self._spawn_process(index)
        self._collector = threading.Thread(target=self._collect,
                                           name="repro-pool-collector",
                                           daemon=True)
        self._collector.start()

    # -- lifecycle ------------------------------------------------------

    @property
    def workers(self) -> int:
        """Number of worker processes (including any that have died)."""
        return len(self._processes)

    def worker_pids(self) -> list[int | None]:
        """Live worker process ids by shard index (``None`` when dead)."""
        pids: list[int | None] = []
        for index, process in enumerate(self._processes):
            alive = index not in self._dead and process.is_alive()
            pids.append(process.pid if alive else None)
        return pids

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _spawn_process(self, index: int, *, load_verdicts: bool = True):
        """Create, register and start the worker process for ``index``.

        Reuses the slot when respawning (the inbox is replaced so a
        fresh worker never replays the dead one's queued messages).
        Returns the started process.
        """
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(index, inbox, self._outbox, self._snapshot_path,
                  load_verdicts and self._include_verdict_snapshot),
            name=f"repro-worker-{index}", daemon=True)
        if index == len(self._inboxes):
            self._inboxes.append(inbox)
            self._processes.append(process)
        else:
            self._inboxes[index] = inbox
            self._processes[index] = process
        process.start()
        return process

    def close(self, timeout: float = 10.0) -> None:
        """Stop the workers and the collector (idempotent).

        Escalates per worker: a cooperative ``stop`` message, then
        ``join(timeout)``, then ``terminate()`` (SIGTERM), and finally
        ``kill()`` (SIGKILL) — a worker stuck in an uninterruptible
        decision, or stopped by a debugger, cannot wedge shutdown.
        """
        with self._dispatch_lock:
            if self._closed:
                return
            self._closed = True
        for index, inbox in enumerate(self._inboxes):
            if index not in self._dead:
                try:
                    inbox.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - teardown
                    pass
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
            if process.is_alive():
                # SIGTERM can sit pending forever on a SIGSTOPped (or
                # masked) worker; SIGKILL cannot be blocked.
                process.kill()
                process.join(1.0)
        self._stop.set()
        self._collector.join(timeout=2.0)
        for q in (*self._inboxes, self._outbox):
            q.close()
            q.cancel_join_thread()

    # -- result collection ----------------------------------------------

    @staticmethod
    def _outcome(message: tuple) -> "VerdictDocument | DecisionError":
        """Convert a routed result message to its in-band outcome value."""
        if message[0] == "ok":
            return message[2]
        return DecisionError(message[2], id=message[3])

    def _note_result(self, seq: int, worker: int | None,
                     message: tuple) -> tuple:
        """Hook: observe (and possibly rewrite) a result at delivery.

        Runs on the collector thread with ``self._cond`` held, after
        the seq's dispatch records were removed.  The base pool does
        nothing; the supervisor uses it for dispatch accounting and
        for re-stamping the ``cached`` flag of duplicate requests.
        """
        return message

    def _collect(self) -> None:
        """Single reader of the worker outbox; routes replies to waiters."""
        last_reap = time.monotonic()
        while not self._stop.is_set():
            try:
                message = self._outbox.get(timeout=0.1)
            except queue.Empty:
                self._reap_dead_workers()
                last_reap = time.monotonic()
                continue
            except (EOFError, OSError):  # pragma: no cover - teardown
                return
            callback = None
            outcome = None
            with self._cond:
                kind = message[0]
                if kind in ("ok", "err"):
                    seq = message[1]
                    if message[-1] != self._tickets.get(seq):
                        # A zombie reply: this seq was re-driven on a
                        # fresh worker generation after its first
                        # worker was declared dead mid-decision.
                        continue
                    worker = self._assigned.pop(seq, None)
                    self._requests.pop(seq, None)
                    self._tickets.pop(seq, None)
                    message = self._note_result(seq, worker, message)
                    if seq in self._abandoned:
                        self._abandoned.discard(seq)
                    elif seq in self._callbacks:
                        callback = self._callbacks.pop(seq)
                        outcome = self._outcome(message)
                    else:
                        self._results[seq] = message
                elif kind in ("caches", "stats"):
                    self._replies[kind][message[1]] = message[2]
                self._cond.notify_all()
            if callback is not None:
                callback(outcome)
            if time.monotonic() - last_reap > _REAP_INTERVAL:
                self._reap_dead_workers()
                last_reap = time.monotonic()

    def _deliver_error_locked(self, seq: int, text: str,
                              request_id) -> tuple | None:
        """Record an in-band error outcome for ``seq`` (``_cond`` held).

        Routes to the registered callback (returned as ``(callback,
        outcome)`` for the caller to fire outside the lock), the
        abandoned set, or the results map — mirroring ``_collect``.
        """
        self._tickets.pop(seq, None)
        if seq in self._abandoned:
            self._abandoned.discard(seq)
            return None
        if seq in self._callbacks:
            return (self._callbacks.pop(seq),
                    DecisionError(text, id=request_id))
        self._results[seq] = ("err", seq, text, request_id, None)
        return None

    def _handle_worker_death(self, index: int, process) -> list:
        """Policy hook for a crashed worker (``self._cond`` held).

        The base pool retires the shard: the index joins ``_dead`` and
        every in-flight request becomes an in-band error.  Returns the
        ``(callback, outcome)`` pairs to fire outside the lock.  The
        supervisor overrides this with respawn-and-re-drive.
        """
        self._dead.add(index)
        fired = []
        pending = sorted(seq for seq, worker in self._assigned.items()
                         if worker == index)
        for seq in pending:
            del self._assigned[seq]
            request = self._requests.pop(seq, None)
            routed = self._deliver_error_locked(
                seq,
                f"worker {index} exited with code {process.exitcode} "
                f"while deciding",
                request.id if request is not None else None)
            if routed is not None:
                fired.append(routed)
        return fired

    def _reap_dead_workers(self) -> None:
        """Detect crashed workers and apply the death policy."""
        if self._closed:
            return
        for index in range(len(self._processes)):
            process = self._processes[index]
            if index in self._dead or process.is_alive():
                continue
            with self._cond:
                fired = self._handle_worker_death(index, process)
                self._cond.notify_all()
            for callback, outcome in fired:
                callback(outcome)

    # -- dispatch --------------------------------------------------------

    def shard_of(self, request: ContainmentRequest) -> int:
        """The worker index a request is routed to (deterministic)."""
        digest = hashlib.blake2b(
            shard_key(request, self._parent_engine.registry),
            digest_size=8).digest()
        return int.from_bytes(digest, "big") % len(self._processes)

    def submit(self, request: ContainmentRequest) -> int:
        """Queue one request; returns its sequence token for :meth:`result`."""
        worker = self.shard_of(request)
        with self._dispatch_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if worker in self._dead:
                raise RuntimeError(
                    f"worker {worker} died; its shard cannot accept work")
            seq = self._next_seq
            self._next_seq += 1
            with self._cond:
                self._assigned[seq] = worker
                self._requests[seq] = request
                self._tickets[seq] = 0
            self._inboxes[worker].put(("req", seq, request, 0))
            return seq

    def result(self, seq: int,
               timeout: float | None = None) -> VerdictDocument | DecisionError:
        """Wait for one submitted request's outcome (in-band errors)."""
        with self._cond:
            while seq not in self._results:
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(f"no result for request #{seq}")
            message = self._results.pop(seq)
        return self._outcome(message)

    def on_result(self, seq: int, callback: Callable) -> None:
        """Register a one-shot callback for a submitted request's outcome.

        The callback receives the :class:`VerdictDocument` or
        :class:`DecisionError` as its only argument and runs on the
        pool's collector thread (or on the calling thread, when the
        result already arrived) — it must be quick and must not call
        back into blocking pool methods.  A seq with a callback must
        not also be awaited via :meth:`result`.  This is the bridge the
        asyncio gateway uses to await pool results without a thread per
        request.
        """
        with self._cond:
            if seq not in self._results:
                self._callbacks[seq] = callback
                return
            message = self._results.pop(seq)
        callback(self._outcome(message))

    def abandon(self, seq: int) -> None:
        """Drop all interest in a submitted request (deadline expiry).

        The request may keep computing on its worker, but its outcome
        is discarded on arrival instead of accumulating in the results
        map forever.  Safe to call whether or not the result already
        arrived; any registered callback is dropped unfired.
        """
        with self._cond:
            if seq in self._results:
                del self._results[seq]
            elif seq in self._assigned or seq in self._callbacks:
                self._abandoned.add(seq)
            self._callbacks.pop(seq, None)

    def normalize(self, item) -> ContainmentRequest:
        """Coerce dict/request inputs, sharing the parent parse cache."""
        if isinstance(item, ContainmentRequest):
            return item
        if isinstance(item, Mapping):
            return ContainmentRequest.from_dict(
                item, parse=self._parent_engine.parse)
        raise TypeError(f"cannot read request {item!r}")

    # Kept for callers of the pre-gateway private name.
    _normalize = normalize

    # -- deciding --------------------------------------------------------

    def decide_one(self,
                   request) -> VerdictDocument | DecisionError:
        """Decide a single request (dicts accepted); errors in-band."""
        try:
            normalized = self.normalize(request)
        except _REQUEST_ERRORS as error:
            request_id = None
            if isinstance(request, Mapping):
                try:
                    request_id = coerce_request_id(request.get("id"))
                except TypeError:
                    request_id = None
            return DecisionError(error_text(error), id=request_id)
        try:
            seq = self.submit(normalized)
        except RuntimeError as error:  # dead shard / closed pool: in-band
            return DecisionError(str(error), id=normalized.id)
        return self.result(seq)

    def decide_stream(self, requests: Iterable, *,
                      window: int | None = None
                      ) -> Iterator[VerdictDocument | DecisionError]:
        """Lazily decide an iterable of requests, preserving input order.

        Keeps at most ``window`` requests in flight (default
        ``32 × workers``), so an endless stream runs at bounded memory;
        results are yielded strictly in input order even though workers
        finish out of order.
        """
        window = window if window is not None else 32 * len(self._processes)
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        outputs: deque = deque()   # ("done", value) | ("seq", token)
        iterator = iter(requests)
        exhausted = False
        in_flight = 0
        while True:
            while not exhausted and in_flight < window:
                try:
                    item = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                try:
                    request = self.normalize(item)
                except _REQUEST_ERRORS as error:
                    request_id = None
                    if isinstance(item, Mapping):
                        try:
                            request_id = coerce_request_id(item.get("id"))
                        except TypeError:
                            request_id = None
                    outputs.append(("done", DecisionError(
                        error_text(error), id=request_id)))
                    continue
                try:
                    outputs.append(("seq", self.submit(request)))
                except RuntimeError as error:  # dead shard: in-band
                    outputs.append(("done", DecisionError(
                        str(error), id=request.id)))
                    continue
                in_flight += 1
            if not outputs:
                if exhausted:
                    return
                continue  # pragma: no cover - window >= 1 always queues
            kind, value = outputs.popleft()
            if kind == "done":
                yield value
            else:
                in_flight -= 1
                yield self.result(value)

    def decide_many(self, requests: Iterable
                    ) -> list[VerdictDocument | DecisionError]:
        """Decide a batch of requests across the pool, preserving order."""
        return list(self.decide_stream(requests))

    # -- introspection / snapshots ---------------------------------------

    def _broadcast(self, kind: str, payload: tuple = (),
                   timeout: float = 60.0) -> list:
        """Send a control message to every live worker; gather replies.

        The in-progress message is remembered in ``_active_broadcast``
        so a supervisor that respawns a worker mid-broadcast can re-send
        it to the replacement — otherwise a ``stats`` call issued just
        before a crash would block until its timeout.
        """
        with self._control_lock:
            message = (kind, *payload)
            with self._cond:
                self._replies[kind] = {}
                self._active_broadcast = message
            try:
                live = [index for index in range(len(self._processes))
                        if index not in self._dead]
                for index in live:
                    self._inboxes[index].put(message)
                with self._cond:
                    while True:
                        expected = [index for index in live
                                    if index not in self._dead]
                        replies = self._replies[kind]
                        if all(index in replies for index in expected):
                            return [replies[index]
                                    for index in sorted(replies)]
                        if not self._cond.wait(timeout=timeout):
                            raise TimeoutError(
                                f"workers did not answer {kind!r} request")
            finally:
                with self._cond:
                    self._active_broadcast = None

    def stats(self) -> list[dict[str, int]]:
        """Per-worker ``cache_info()`` (stats counters + cache sizes),
        ordered by worker index.  Call between batches: replies queue
        behind any in-flight decisions on each worker."""
        return self._broadcast("stats")

    def aggregate_stats(self) -> dict[str, int]:
        """The per-worker stats summed into one counters dict."""
        return sum_stats(self.stats())

    def collect_caches(self, *, include_verdicts: bool | None = None) -> dict:
        """The merged cache state of every worker (snapshot payload)."""
        if include_verdicts is None:
            include_verdicts = self._include_verdict_snapshot
        return merge_states(self._broadcast("caches", (include_verdicts,)))

    def save_snapshot(self, path: str | os.PathLike | None = None, *,
                      include_verdicts: bool | None = None) -> dict[str, int]:
        """Write the merged worker caches as a snapshot file.

        ``path`` defaults to the pool's warm-start path.  Returns the
        per-layer entry counts written.
        """
        from .snapshot import write_snapshot
        path = path if path is not None else self._snapshot_path
        if path is None:
            raise ValueError("no snapshot path configured")
        state = self.collect_caches(include_verdicts=include_verdicts)
        write_snapshot(state, path,
                       semirings=self._parent_engine.registry.names())
        return {layer: len(entries) for layer, entries in state.items()}
