"""Long-lived JSONL decision service (``python -m repro serve``).

Wraps one :class:`ContainmentEngine` (or a
:class:`~repro.service.pool.WorkerPool`) in a newline-delimited-JSON
request/response loop, served either over stdin/stdout (the default —
composable with pipes and process supervisors) or over TCP (one
concurrent JSONL conversation per connection).

Protocol
--------
One JSON object per line.  A *decision* request is exactly the JSONL
batch format::

    {"semiring": "B", "q1": "Q() :- R(x, y)", "q2": "Q() :- R(x, x)",
     "id": "r1"}

and is answered with the verdict document (the ``request_id`` echoes
``id``).  Malformed lines and per-request failures are answered
*in-band* as ``{"error": ..., "id": ...}`` — the loop never dies on a
bad request.  Blank lines and ``#`` comments are ignored.

A *control* request is an object with an ``"op"`` key:

``{"op": "ping"}``
    liveness probe; answers ``{"op": "ping", "ok": true}``.
``{"op": "stats"}``
    engine ``cache_info()`` plus a layered ``cache_stats`` report —
    every cache layer (poly_leq certificates included) with
    zero-division-safe hit ratios; pools answer with the per-worker
    counter list and the report over their sum.
``{"op": "snapshot"}``
    flush the warm-start snapshot now; answers the per-layer counts.
``{"op": "shutdown"}``
    acknowledge, flush the snapshot, and stop serving (stdio: end the
    loop; TCP: stop the whole server).

Shutdown is always graceful: EOF on stdin, the ``shutdown`` op, and
``SIGINT``/``SIGTERM`` (installed by the CLI) all run the final
snapshot flush before the process exits.  When a snapshot path is
configured, the server also flushes periodically — every
``flush_every`` decisions and/or every ``flush_interval`` seconds —
so a crash loses at most one flush window of cache warmth.
:meth:`DecisionServer.close` returns the final counters *including*
any snapshot-flush failure, so supervising callers see a broken
snapshot path instead of silently losing warmth.

With ``max_line_bytes`` set, a single over-long (or unterminated)
input line is answered with an in-band ``{"error": ..., "oversized":
true}`` response instead of being buffered without bound — on stdio
and TCP alike.  The asyncio gateway applies the same bound with the
same response shape.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Iterable, TextIO

from ..api.batch import error_text
from ..api.documents import ContainmentRequest, coerce_request_id
from ..api.engine import ContainmentEngine
from ..queries.parser import ParseError
from .pool import DecisionError, WorkerPool
from .snapshot import SnapshotError, load_snapshot, save_snapshot

__all__ = ["DecisionServer"]

_REQUEST_ERRORS = (ValueError, TypeError, KeyError, ParseError)

#: Sentinel yielded by the bounded line iterators for a line that was
#: dropped (never fully buffered) because it exceeded the byte bound.
_OVERSIZED = object()


class DecisionServer:
    """A JSONL request/response loop over an engine or a worker pool.

    Exactly one of ``engine``/``pool`` is used: pass a ``pool`` for
    multi-core service, otherwise an ``engine`` (created on demand) is
    decided on directly, guarded by a lock so TCP connection threads
    can share it.  The server does not own the pool — close it where
    you created it; :meth:`close` only stops the flush timer and runs
    the final snapshot flush.
    """

    def __init__(self, *, engine: ContainmentEngine | None = None,
                 pool: WorkerPool | None = None,
                 snapshot_path=None,
                 include_verdict_snapshot: bool = True,
                 flush_every: int = 0,
                 flush_interval: float = 0.0,
                 max_line_bytes: int = 0,
                 metrics=None):
        if pool is not None and engine is not None:
            raise ValueError("pass an engine or a pool, not both")
        self._pool = pool
        self._engine = (None if pool is not None
                        else (engine or ContainmentEngine()))
        self._snapshot_path = snapshot_path
        self._include_verdict_snapshot = include_verdict_snapshot
        self._flush_every = max(0, int(flush_every))
        self._flush_interval = max(0.0, float(flush_interval))
        self._max_line_bytes = max(0, int(max_line_bytes))
        # Serving-layer counters (respawns, shedding, …): default to the
        # pool's scoreboard so the stats op needs no extra wiring.
        self._metrics = (metrics if metrics is not None
                         else getattr(pool, "metrics", None))
        self._flush_error: str | None = None
        self._close_stats: dict | None = None
        self._decide_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        # Guards the counters: handle_line runs concurrently from TCP
        # handler threads.
        self._count_lock = threading.Lock()
        self._decided_since_flush = 0
        self._served = 0
        self._errors = 0
        self._closed = False
        self._stopped = threading.Event()
        self._tcp_server: socketserver.BaseServer | None = None
        # The warm start: the pool's workers load the snapshot
        # themselves; an engine-backed server loads it here.
        if (self._engine is not None and snapshot_path is not None):
            try:
                load_snapshot(self._engine, snapshot_path)
            except SnapshotError:
                pass  # cold start; the first flush will create the file
        self._flusher = None
        if self._snapshot_path is not None and self._flush_interval > 0:
            self._flusher = threading.Thread(
                target=self._flush_loop, name="repro-serve-flusher",
                daemon=True)
            self._flusher.start()

    # -- counters --------------------------------------------------------

    @property
    def served(self) -> int:
        """Decision requests answered so far (including in-band errors)."""
        return self._served

    @property
    def errors(self) -> int:
        """How many of those answers were in-band errors."""
        return self._errors

    # -- snapshot flushing -----------------------------------------------

    def flush_snapshot(self) -> dict[str, int]:
        """Write the warm-start snapshot now; returns per-layer counts."""
        if self._snapshot_path is None:
            raise ValueError("no snapshot path configured")
        with self._flush_lock:
            if self._pool is not None:
                counts = self._pool.save_snapshot(
                    self._snapshot_path,
                    include_verdicts=self._include_verdict_snapshot)
            else:
                with self._decide_lock:
                    counts = save_snapshot(
                        self._engine, self._snapshot_path,
                        include_verdicts=self._include_verdict_snapshot)
            with self._count_lock:
                self._decided_since_flush = 0
                self._flush_error = None
            return counts

    def _flush_loop(self) -> None:
        while not self._stopped.wait(self._flush_interval):
            try:
                self.flush_snapshot()
            except Exception as error:  # flush must not kill serve
                self._flush_error = error_text(error)

    def _maybe_flush(self) -> None:
        if (self._snapshot_path is not None and self._flush_every > 0
                and self._decided_since_flush >= self._flush_every):
            try:
                self.flush_snapshot()
            except Exception as error:  # flush must not kill serve
                self._flush_error = error_text(error)

    def maybe_flush(self) -> None:
        """Apply the every-N-decisions flush policy now, if it is due.

        The synchronous loops call this after each decision; the async
        gateway calls it from an executor thread so a flush never
        blocks the event loop.
        """
        self._maybe_flush()

    def close(self) -> dict:
        """Stop the flush timer and run the final snapshot flush.

        Idempotent: the serve loops close on exit and CLI teardown may
        close again — the snapshot is flushed exactly once and every
        call returns the same final stats dict: ``served``/``errors``
        counters, the per-layer ``flushed`` counts (``None`` when no
        snapshot is configured), and ``flush_error`` — the final
        flush's failure text instead of a silent drop.
        """
        with self._count_lock:
            if self._closed:
                return dict(self._close_stats or {})
            self._closed = True
        self._stopped.set()
        if self._flusher is not None:
            self._flusher.join(timeout=2.0)
        flushed = None
        flush_error = None
        if self._snapshot_path is not None:
            try:
                flushed = self.flush_snapshot()
            except Exception as error:  # teardown stays graceful
                flush_error = error_text(error)
                self._flush_error = flush_error
        self._close_stats = {"served": self._served,
                             "errors": self._errors,
                             "flushed": flushed,
                             "flush_error": flush_error}
        return dict(self._close_stats)

    # -- request handling ------------------------------------------------

    def _count(self, *, served: int = 0, errors: int = 0,
               decided: int = 0) -> None:
        with self._count_lock:
            self._served += served
            self._errors += errors
            self._decided_since_flush += decided

    def record(self, *, served: int = 0, errors: int = 0,
               decided: int = 0) -> None:
        """Fold request accounting from an external front end in.

        The asyncio gateway answers requests without going through
        :meth:`handle_line`; it reports its outcomes here so ``served``
        and ``errors`` stay the single source of truth.
        """
        self._count(served=served, errors=errors, decided=decided)

    def _decide(self, data: dict) -> dict:
        """Decide one request document; in-band error dict on failure."""
        if self._pool is not None:
            outcome = self._pool.decide_one(data)
            if isinstance(outcome, DecisionError):
                self._count(errors=1)
                return outcome.to_dict()
            return outcome.to_dict()
        request_id = None
        try:
            try:
                request_id = coerce_request_id(data.get("id"))
            except TypeError:
                request_id = None
            with self._decide_lock:
                request = ContainmentRequest.from_dict(
                    data, parse=self._engine.parse)
                return self._engine.decide_request(request).to_dict()
        except _REQUEST_ERRORS as error:
            self._count(errors=1)
            response: dict = {"error": error_text(error)}
            if request_id is not None:
                response["id"] = request_id
            return response

    def _control(self, data: dict) -> tuple[dict, bool]:
        """Handle an ``op`` object; returns (response, stop-serving)."""
        op = data["op"]
        if op == "ping":
            return {"op": "ping", "ok": True}, False
        if op == "stats":
            from ..api.engine import stats_report
            from .pool import sum_stats

            response: dict = {"op": "stats", "served": self._served,
                              "errors": self._errors}
            service = None
            if self._metrics is not None:
                service = self._metrics.as_dict()
                if self._pool is not None:
                    service["worker_pids"] = self._pool.worker_pids()
            if self._pool is not None:
                # Per-worker flat counters plus one layered report over
                # their sum — hit ratios stay zero-division-safe even
                # for layers (e.g. poly_orders) that saw no traffic.
                workers = self._pool.stats()
                response["workers"] = workers
                response["cache_stats"] = stats_report(sum_stats(workers),
                                                       service=service)
            else:
                with self._decide_lock:
                    response["cache_info"] = self._engine.cache_info()
                    response["cache_stats"] = self._engine.cache_stats()
            if service is not None:
                response["service"] = service
            if self._flush_error is not None:
                response["flush_error"] = self._flush_error
            return response, False
        if op == "snapshot":
            try:
                return {"op": "snapshot",
                        "layers": self.flush_snapshot()}, False
            except (ValueError, OSError) as error:
                return {"op": "snapshot",
                        "error": error_text(error)}, False
        if op == "shutdown":
            return {"op": "shutdown", "ok": True}, True
        return {"error": f"unknown op {op!r}"}, False

    def control(self, data: dict) -> tuple[dict, bool]:
        """Handle one already-parsed control op; returns (response, stop).

        The public entry point for front ends (the asyncio gateway)
        that parse their own lines but share this server's engine,
        snapshot and counters.
        """
        return self._control(data)

    def oversized_response(self) -> dict:
        """The in-band answer for a line exceeding ``max_line_bytes``."""
        return {"error": f"request line exceeds --max-line-bytes "
                         f"({self._max_line_bytes} bytes)",
                "oversized": True}

    def _line_too_long(self, text: str) -> bool:
        """True when a line's UTF-8 payload exceeds the configured bound.

        Character count is a lower bound on byte count, so the encode
        only runs for lines that could actually be over.
        """
        limit = self._max_line_bytes
        if limit <= 0:
            return False
        if len(text) > limit:
            return True
        return len(text.encode("utf-8", errors="replace")) > limit

    def handle_line(self, line: str) -> tuple[dict | None, bool]:
        """Process one protocol line.

        Returns ``(response, stop)``: ``response`` is ``None`` for
        blank/comment lines, ``stop`` is True after a ``shutdown`` op.
        An over-long line (when ``max_line_bytes`` is set) is answered
        in-band and never parsed.
        """
        text = line.strip()
        if not text or text.startswith("#"):
            return None, False
        if self._line_too_long(text):
            self._count(served=1, errors=1)
            return self.oversized_response(), False
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("request line must be a JSON object")
        except ValueError as error:
            self._count(served=1, errors=1)
            return {"error": error_text(error)}, False
        if "op" in data:
            return self._control(data)
        response = self._decide(data)
        self._count(served=1, decided=1)
        self._maybe_flush()
        return response, False

    # -- serving ---------------------------------------------------------

    def _iter_bounded(self, source: Iterable[str]):
        """Iterate input lines without ever buffering an oversized one.

        With ``max_line_bytes`` set and a ``readline``-capable source,
        lines are read in bounded chunks: an over-long line is drained
        chunk by chunk (never concatenated) and surfaced as the
        :data:`_OVERSIZED` sentinel.  Other sources fall back to plain
        iteration — :meth:`handle_line` still rejects long lines, it
        just cannot prevent the buffering.
        """
        readline = getattr(source, "readline", None)
        if self._max_line_bytes <= 0 or readline is None:
            yield from source
            return
        limit = self._max_line_bytes
        while True:
            chunk = readline(limit + 2)
            if not chunk:
                return
            if len(chunk) > limit + 1 and not chunk.endswith("\n"):
                # Oversized and unterminated: drop the rest of the
                # physical line in bounded reads.
                while True:
                    rest = readline(limit + 2)
                    if not rest or rest.endswith("\n"):
                        break
                yield _OVERSIZED
            else:
                yield chunk

    def serve_lines(self, source: Iterable[str],
                    sink: TextIO) -> int:
        """The stdio loop: one response line per request line.

        Flushes per line (downstream consumers must see each verdict as
        its request is decided) and runs the final snapshot flush on
        EOF or ``shutdown``.  Returns the number of decision requests
        served.
        """
        try:
            for line in self._iter_bounded(source):
                if line is _OVERSIZED:
                    self._count(served=1, errors=1)
                    response, stop = self.oversized_response(), False
                else:
                    response, stop = self.handle_line(line)
                if response is not None:
                    print(json.dumps(response, ensure_ascii=False),
                          file=sink, flush=True)
                if stop:
                    break
        finally:
            self.close()
        return self._served

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0, *,
                  ready: threading.Event | None = None) -> int:
        """Serve the JSONL protocol over TCP until shut down.

        Each connection is its own conversation; connections are
        handled in threads, sharing this server's engine/pool.  With
        ``port=0`` the OS picks a free port — :attr:`tcp_address`
        carries the bound address once ``ready`` is set.  Returns the
        number of decision requests served.
        """
        decision_server = self

        limit = self._max_line_bytes

        class _Handler(socketserver.StreamRequestHandler):
            def _read_bounded(self):
                """One physical line, or ``_OVERSIZED`` (drained), or b''."""
                if limit <= 0:
                    return self.rfile.readline()
                raw = self.rfile.readline(limit + 2)
                if len(raw) > limit + 1 and not raw.endswith(b"\n"):
                    while True:
                        rest = self.rfile.readline(limit + 2)
                        if not rest or rest.endswith(b"\n"):
                            return _OVERSIZED
                return raw

            def handle(self) -> None:
                while True:
                    raw = self._read_bounded()
                    if raw is _OVERSIZED:
                        decision_server._count(served=1, errors=1)
                        response, stop = (decision_server
                                          .oversized_response(), False)
                    elif not raw:
                        return
                    else:
                        line = raw.decode("utf-8", errors="replace")
                        response, stop = decision_server.handle_line(line)
                    if response is not None:
                        payload = json.dumps(response, ensure_ascii=False)
                        try:
                            self.wfile.write(payload.encode("utf-8") + b"\n")
                            self.wfile.flush()
                        except (BrokenPipeError, ConnectionError):
                            return
                    if stop:
                        # Stop accepting while finishing this handler;
                        # shutdown() must run off the serve_forever
                        # thread, and handler threads qualify.
                        self.server.shutdown()
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        with _Server((host, port), _Handler) as server:
            self._tcp_server = server
            self.tcp_address = server.server_address
            if ready is not None:
                ready.set()
            try:
                server.serve_forever(poll_interval=0.1)
            finally:
                self._tcp_server = None
                self.close()
        return self._served

    def shutdown(self) -> None:
        """Stop a running :meth:`serve_tcp` loop from another thread."""
        server = self._tcp_server
        if server is not None:
            server.shutdown()
