"""Persistent warm-start snapshots of an engine's cache layers.

Short-lived ``python -m repro batch`` invocations — and worker
processes of :class:`repro.service.pool.WorkerPool` — start with cold
caches, re-paying for parse interning, classification, homomorphism
searches, covered-atom sets, complete descriptions, canonical labeling
records and LP-backed tropical order certificates that a previous run
already computed.  A
*snapshot* persists those layers to disk so the next run starts warm.

Format
------
A snapshot file is a pickled envelope with four fields::

    {"magic": "repro.engine-snapshot", "version": 1,
     "semirings": [...canonical names...], "caches": {layer: [...]}}

``magic``
    The literal :data:`SNAPSHOT_MAGIC` string — rejects arbitrary
    pickles (and accidental non-snapshot files) before anything else
    is looked at.
``version``
    The envelope schema version, :data:`SNAPSHOT_VERSION`.  A reader
    accepts exactly its own version; anything else is *stale* (or from
    the future) and rejected wholesale.  New cache layers do **not**
    bump the version: unknown layers are ignored on import and absent
    layers default to empty, so snapshots interoperate across adjacent
    builds.
``semirings``
    The canonical names registered on the exporting engine —
    informational (debugging which registry produced a file); import
    resolves names against the *restoring* registry and skips unknowns.
``caches``
    Exactly the payload of
    :meth:`repro.api.ContainmentEngine.export_caches`: per-layer
    ``(key, value)`` lists whose keys never contain semiring
    *instances* (classifications and verdicts are re-keyed by
    canonical registry name; the ``poly_orders`` layer is keyed by
    ``(order kind, canonical polynomial pair)`` and its certificate
    values are revalidated on every recall, so a doctored entry can
    never change an answer).

Validation is strict and failure is always *graceful*: every way a
file can disappoint — missing, truncated, corrupted, a different
pickle, an envelope from a future format version — raises
:class:`SnapshotError`, which warm-start callers catch to fall back to
a cold start.  A stale snapshot must never crash a batch run, and an
unreadable one must never be half-imported.

The verdict layer is included by default (right for long-lived
services, where "served from cache" is true across restarts) but can
be excluded with ``include_verdicts=False`` so a warmed run's verdict
documents stay byte-identical to a cold run's (``cached`` stays
``false``) — the CLI default.
"""

from __future__ import annotations

import io
import os
import pickle
import tempfile
from typing import Any, Mapping

from ..api.engine import ContainmentEngine
from ..api.layers import SNAPSHOT_LAYERS as _LAYERS

__all__ = ["SNAPSHOT_MAGIC", "SNAPSHOT_VERSION", "SnapshotError",
           "load_snapshot", "merge_states", "read_snapshot",
           "save_snapshot", "write_snapshot"]

SNAPSHOT_MAGIC = "repro.engine-snapshot"
SNAPSHOT_VERSION = 1

# The cache layers a snapshot may carry, in import order, come from the
# one cache-layer registry (repro.api.layers) — never re-list them here
# (RL002 flags a literal copy as a drift hazard).


class SnapshotError(ValueError):
    """A snapshot file cannot be used (missing/corrupt/stale/foreign).

    Deliberately one exception type for every failure mode: warm-start
    callers only ever need "fall back to cold", and the message says
    why.
    """


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves classes snapshots legitimately use.

    A snapshot is an *input file*; a hand-crafted pickle must not be
    able to import arbitrary callables through the loader.  Three
    gates: dotted names are rejected outright (protocol 4's
    ``STACK_GLOBAL`` would otherwise traverse attributes — e.g. reach
    ``os.system`` through any repro module that imports ``os``), the
    module must live in the ``repro`` package, and the resolved object
    must be a class (or one of the two query-restore functions the
    pickle hooks emit) — never a module-level import or helper.
    """

    _ALLOWED_BUILTINS = frozenset({"frozenset", "set", "tuple", "list",
                                   "dict"})
    _ALLOWED_FUNCTIONS = frozenset({"_restore_cq", "_restore_ccq"})

    def find_class(self, module: str, name: str):
        if "." in name:
            raise SnapshotError(
                f"snapshot references disallowed dotted name "
                f"{module}.{name}")
        if module == "builtins" and name in self._ALLOWED_BUILTINS:
            return super().find_class(module, name)
        if module == "repro" or module.startswith("repro."):
            obj = super().find_class(module, name)
            if isinstance(obj, type) or name in self._ALLOWED_FUNCTIONS:
                return obj
        raise SnapshotError(
            f"snapshot references disallowed type {module}.{name}")


def _validate(envelope: Any, source: str) -> dict:
    """Check the envelope schema; return the cache-state payload."""
    if not isinstance(envelope, Mapping):
        raise SnapshotError(f"{source}: not a snapshot envelope")
    if envelope.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{source}: not a repro engine snapshot")
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{source}: snapshot version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION}); re-create "
            "the snapshot with this version")
    caches = envelope.get("caches")
    if not isinstance(caches, Mapping):
        raise SnapshotError(f"{source}: snapshot has no cache payload")
    state: dict = {}
    for layer in _LAYERS:
        entries = caches.get(layer, [])
        if not isinstance(entries, (list, tuple)):
            raise SnapshotError(
                f"{source}: layer {layer!r} is not an entry list")
        for entry in entries:
            if not isinstance(entry, tuple) or len(entry) != 2:
                raise SnapshotError(
                    f"{source}: layer {layer!r} has a malformed entry")
        state[layer] = list(entries)
    return state


def write_snapshot(state: Mapping[str, Any], path: str | os.PathLike, *,
                   semirings: tuple[str, ...] = ()) -> None:
    """Persist an exported cache state atomically.

    Writes to a temporary sibling and ``os.replace``s it into place, so
    a concurrent reader (another batch run warm-starting off the same
    path) never sees a torn file.
    """
    envelope = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "semirings": tuple(semirings),
        "caches": dict(state),
    }
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_snapshot(path: str | os.PathLike) -> dict:
    """Read and validate a snapshot file into a cache state.

    Raises :class:`SnapshotError` on every failure mode (missing file,
    truncated/corrupted pickle, foreign payload, unsupported version).
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise SnapshotError(f"{path}: cannot read snapshot "
                            f"({error})") from error
    try:
        envelope = _RestrictedUnpickler(io.BytesIO(data)).load()
    except SnapshotError:
        raise
    except Exception as error:  # truncated, corrupt, foreign pickle, …
        raise SnapshotError(f"{path}: corrupted snapshot "
                            f"({type(error).__name__}: {error})") from error
    return _validate(envelope, path)


def save_snapshot(engine: ContainmentEngine, path: str | os.PathLike, *,
                  include_verdicts: bool = True) -> dict[str, int]:
    """Export an engine's caches to ``path``; returns per-layer sizes."""
    state = engine.export_caches(include_verdicts=include_verdicts)
    write_snapshot(state, path, semirings=engine.registry.names())
    return {layer: len(entries) for layer, entries in state.items()}


def load_snapshot(engine: ContainmentEngine,
                  path: str | os.PathLike, *,
                  include_verdicts: bool = True) -> dict[str, int]:
    """Restore a snapshot file into an engine; returns restore counts.

    Entries for semirings unknown to this engine's registry are
    skipped; a bad file raises :class:`SnapshotError` *before* any
    entry is imported.  With ``include_verdicts=False`` the verdict
    layer is dropped even when the file carries one — how a respawned
    pool worker warm-starts its structural caches without inheriting
    ``cached: true`` flags its replacement run never earned.
    """
    state = read_snapshot(path)
    if not include_verdicts:
        state.pop("verdicts", None)
    return engine.import_caches(state)


def merge_states(states) -> dict:
    """Merge several exported cache states into one.

    Used to combine the per-worker caches of a pool into a single
    snapshot.  Entries are concatenated layer-wise; on key collisions
    the later state wins at import time (``import_caches`` overwrites),
    which is correct because every engine computes identical values for
    identical keys.
    """
    merged: dict = {layer: [] for layer in _LAYERS}
    for state in states:
        for layer in _LAYERS:
            merged[layer].extend(state.get(layer, ()))
    return merged
