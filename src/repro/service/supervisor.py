"""Self-healing worker-pool supervision: respawn, re-drive, steal.

:class:`~repro.service.pool.WorkerPool` detects a crashed worker but
then retires the shard — every later request hashing there gets an
in-band error for the life of the pool.  Fine for batch runs; fatal
for the ROADMAP's "no human on call" service.
:class:`SupervisedWorkerPool` upgrades the death policy in three ways:

**Respawn.**  A dead worker is replaced *in its own shard slot* by a
fresh process, warm-started from the pool's snapshot file with the
verdict layer stripped (structural caches — parses, classifications,
hom searches, descriptions, tropical certificates — carry over; the
``cached`` flags of its verdicts do not, so re-decided requests still
look exactly like a sequential run's).  A worker that keeps dying
past ``max_respawns`` is retired with the base policy.

**Re-drive.**  Requests that were on the dead worker when it crashed
are re-queued, in sequence order, at the *front* of the replacement's
backlog.  Each dispatch carries a ticket (the shard's restart count),
so a reply from the dead generation — e.g. a worker that answered and
was then killed before the parent read the answer — can never race
the re-driven computation.  A request that kills its worker
``max_redrives`` times is declared poisonous and answered with an
in-band error instead of crash-looping the shard.

**Stealing.**  Dispatch is parent-side: each shard has a backlog deque
and at most ``prefetch`` requests actually inside the worker process.
When a shard's backlog outgrows ``steal_threshold``, its *stealable*
tail spills into a bounded overflow deque that any worker with an
empty backlog may drain.  Only globally-fresh requests are stealable:
a request whose key was already decided (or is in flight) is pinned to
its home shard so verdict-LRU locality — and therefore the ``cached``
flag — is preserved.

The byte-identity contract (``decide_many`` equals sequential
evaluation, chaos included) is kept by one delivery-time rule: a
request whose key was seen before — the definition of "would have hit
a sequential engine's verdict cache" — has its ``cached`` flag
re-stamped ``true`` even when chaos (a respawned worker's cold verdict
LRU, or a steal to a foreign worker) forced a recomputation.  Fresh
keys are never stamped, and stamping never flips ``true`` to
``false``.

Every supervision event is counted in a shared
:class:`~repro.service.metrics.ServiceMetrics` instance, surfaced by
the server's ``stats`` op.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict, deque

from ..api.documents import ContainmentRequest
from .metrics import ServiceMetrics
from .pool import WorkerPool, shard_key

__all__ = ["SupervisedWorkerPool"]


class _BoundedKeySet:
    """An insertion-bounded set of key digests (oldest dropped first).

    Mirrors the engine's verdict-LRU bound so the parent's "was this
    key decided before?" memory cannot grow without limit on endless
    streams.  Eviction only ever *under*-reports a duplicate, which
    degrades a ``cached`` stamp, never correctness — and the bound is
    far above the per-worker verdict LRU, so in practice the parent
    forgets after the workers do.
    """

    def __init__(self, maxsize: int = 1 << 17):
        self._maxsize = max(1, int(maxsize))
        self._entries: OrderedDict[bytes, None] = OrderedDict()

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def add(self, key: bytes) -> None:
        """Insert a key, evicting the oldest entry past the bound."""
        if key in self._entries:
            return
        self._entries[key] = None
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)


class SupervisedWorkerPool(WorkerPool):
    """A :class:`WorkerPool` that respawns, re-drives and steals.

    Drop-in compatible with the base pool (same ``decide_*`` API and
    byte-identical results); the extra knobs bound the supervision
    behaviour:

    ``max_respawns``
        restarts allowed per shard before it is retired for good.
    ``max_redrives``
        times one request may be re-driven after killing its worker
        before it is answered with an in-band error.
    ``prefetch``
        requests kept inside each worker process; the rest of the
        backlog stays parent-side where it can be re-driven or stolen.
    ``steal_threshold``
        backlog depth beyond which a shard spills stealable work into
        the overflow deque.
    ``overflow_limit``
        bound on the overflow deque (spilling stops at the bound; the
        backlog then simply grows on its home shard).
    ``metrics``
        a shared :class:`ServiceMetrics`; one is created when omitted.
    """

    def __init__(self, workers: int | None = None, *,
                 snapshot_path: str | os.PathLike | None = None,
                 include_verdict_snapshot: bool = True,
                 start_method: str | None = None,
                 max_respawns: int = 5,
                 max_redrives: int = 2,
                 prefetch: int = 4,
                 steal_threshold: int = 8,
                 overflow_limit: int = 256,
                 metrics: ServiceMetrics | None = None):
        # The collector thread starts inside super().__init__ and may
        # call our overrides before this constructor finishes — they
        # fall back to base behaviour until supervision state exists.
        self._supervising = False
        super().__init__(workers, snapshot_path=snapshot_path,
                         include_verdict_snapshot=include_verdict_snapshot,
                         start_method=start_method)
        count = len(self._processes)
        self.metrics = metrics if metrics is not None \
            else ServiceMetrics(workers=count)
        self._max_respawns = max(0, int(max_respawns))
        self._max_redrives = max(0, int(max_redrives))
        self._prefetch = max(1, int(prefetch))
        self._steal_threshold = max(1, int(steal_threshold))
        self._overflow_limit = max(1, int(overflow_limit))
        # Parent-side dispatch state, all guarded by self._cond.
        # repro-lint: owner=submit,_pump_locked,_retire_worker_locked,_handle_worker_death
        self._home: list[deque] = [deque() for _ in range(count)]
        # repro-lint: owner=submit,_pump_locked,_retire_worker_locked,_handle_worker_death
        self._overflow: deque = deque()   # (seq, request, origin shard)
        self._outstanding = [0] * count   # requests inside each worker
        self._restarts = [0] * count  # repro-lint: owner=_handle_worker_death
        self._redrives: dict[int, int] = {}
        self._key_of: dict[int, bytes] = {}
        self._live_keys: dict[bytes, int] = {}   # key → in-flight count
        self._seen_keys = _BoundedKeySet()
        self._expect_cached: set[int] = set()
        self._supervising = True

    # -- dispatch ------------------------------------------------------

    def _request_key(self, request: ContainmentRequest) -> bytes:
        """The duplicate-detection digest of a request's verdict key."""
        return hashlib.blake2b(
            shard_key(request, self._parent_engine.registry),
            digest_size=16).digest()

    def submit(self, request: ContainmentRequest) -> int:
        """Queue one request through the supervised dispatcher.

        Unlike the base pool, the request is *not* pushed straight into
        the worker process: it joins the shard's parent-side backlog,
        from which the pump keeps each worker ``prefetch`` deep.  The
        parent therefore still holds everything it may need to re-drive
        or steal.
        """
        if not self._supervising:  # pragma: no cover - construction only
            return super().submit(request)
        worker = self.shard_of(request)
        with self._dispatch_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if worker in self._dead:
                raise RuntimeError(
                    f"worker {worker} died; its shard cannot accept work")
            seq = self._next_seq
            self._next_seq += 1
            key = self._request_key(request)
            with self._cond:
                self._requests[seq] = request
                self._key_of[seq] = key
                duplicate = key in self._seen_keys or key in self._live_keys
                self._live_keys[key] = self._live_keys.get(key, 0) + 1
                if duplicate:
                    self._expect_cached.add(seq)
                self._home[worker].append((seq, request, not duplicate))
                self._pump_locked()
            return seq

    def _dispatch_locked(self, index: int, seq: int,
                         request: ContainmentRequest) -> None:
        """Hand one request to worker ``index`` (``self._cond`` held)."""
        ticket = self._restarts[index]
        self._assigned[seq] = index
        self._tickets[seq] = ticket
        self._outstanding[index] += 1
        self._inboxes[index].put(("req", seq, request, ticket))

    def _pump_locked(self) -> None:
        """Fill every worker to ``prefetch``; spill and steal as needed.

        Must run with ``self._cond`` held.  Called after every submit
        and every delivery, so dispatch depth is an invariant, not a
        schedule.
        """
        count = len(self._processes)
        # Spill the stealable tails of oversized backlogs.
        for index in range(count):
            if index in self._dead:
                continue
            home = self._home[index]
            while (len(home) > self._steal_threshold
                   and len(self._overflow) < self._overflow_limit
                   and home[-1][2]):
                seq, request, _ = home.pop()
                self._overflow.append((seq, request, index))
        # Top every worker up; idle workers drain the overflow.
        for index in range(count):
            if index in self._dead:
                continue
            home = self._home[index]
            while self._outstanding[index] < self._prefetch:
                if home:
                    seq, request, _ = home.popleft()
                elif self._overflow:
                    seq, request, origin = self._overflow.popleft()
                    if origin != index:
                        self.metrics.add("steals")
                else:
                    break
                self._dispatch_locked(index, seq, request)
        self.metrics.note_depths([len(backlog) for backlog in self._home],
                                 len(self._overflow))

    # -- delivery ------------------------------------------------------

    def _forget_seq(self, seq: int) -> None:
        """Drop a seq's duplicate-tracking state (``self._cond`` held)."""
        self._redrives.pop(seq, None)
        self._expect_cached.discard(seq)
        key = self._key_of.pop(seq, None)
        if key is not None:
            live = self._live_keys.get(key, 0) - 1
            if live > 0:
                self._live_keys[key] = live
            else:
                self._live_keys.pop(key, None)

    def _note_result(self, seq: int, worker: int | None,
                     message: tuple) -> tuple:
        """Account a delivery; re-stamp duplicate ``cached`` flags."""
        if not self._supervising:  # pragma: no cover - construction only
            return message
        if worker is not None and worker < len(self._outstanding):
            self._outstanding[worker] -= 1
        expect_cached = seq in self._expect_cached
        key = self._key_of.get(seq)
        self._forget_seq(seq)
        if message[0] == "ok":
            if key is not None:
                self._seen_keys.add(key)
            document = message[2]
            if expect_cached and not document.cached:
                # Chaos (respawn or steal) recomputed a verdict that a
                # sequential engine would have served from cache; the
                # document must say so.
                document = document.with_request(document.request_id, True)
                message = (message[0], message[1], document, message[3])
        self._pump_locked()
        return message

    # -- death policy --------------------------------------------------

    def _retire_worker_locked(self, index: int, process) -> list:
        """Apply the base retire policy plus backlog cleanup."""
        for seq in [seq for seq, worker in self._assigned.items()
                    if worker == index]:
            self._forget_seq(seq)
        fired = list(super()._handle_worker_death(index, process))
        for seq, request, _ in self._home[index]:
            self._forget_seq(seq)
            self._requests.pop(seq, None)
            routed = self._deliver_error_locked(
                seq,
                f"worker {index} died and exceeded its respawn budget",
                request.id)
            if routed is not None:
                fired.append(routed)
        self._home[index].clear()
        self._outstanding[index] = 0
        live = [other for other in range(len(self._processes))
                if other not in self._dead]
        if not live:
            # Nobody left to steal the overflow: fail it in-band rather
            # than strand its waiters.
            while self._overflow:
                seq, request, _ = self._overflow.popleft()
                self._forget_seq(seq)
                self._requests.pop(seq, None)
                routed = self._deliver_error_locked(
                    seq, "all workers died; request abandoned", request.id)
                if routed is not None:
                    fired.append(routed)
        return fired

    def _handle_worker_death(self, index: int, process) -> list:
        """Respawn the shard and re-drive its work (``self._cond`` held).

        Falls back to the base retire-the-shard policy once the shard
        exhausts ``max_respawns``.  In-flight seqs whose base pool
        records survive (they were dispatched) are re-queued at the
        front of the backlog in sequence order; seqs past their
        ``max_redrives`` budget are answered in-band instead.
        """
        if not self._supervising:  # pragma: no cover - construction only
            return super()._handle_worker_death(index, process)
        self._restarts[index] += 1
        if self._restarts[index] > self._max_respawns:
            return self._retire_worker_locked(index, process)
        self.metrics.add("respawns")
        self.metrics.note_restart(index)
        fired = []
        requeue = []
        pending = sorted(seq for seq, worker in self._assigned.items()
                         if worker == index)
        for seq in pending:
            del self._assigned[seq]
            request = self._requests.get(seq)
            if seq in self._abandoned:
                self._abandoned.discard(seq)
                self._forget_seq(seq)
                self._requests.pop(seq, None)
                self._tickets.pop(seq, None)
                continue
            attempts = self._redrives.get(seq, 0) + 1
            if attempts > self._max_redrives:
                self.metrics.add("redrive_failures")
                self._forget_seq(seq)
                self._requests.pop(seq, None)
                routed = self._deliver_error_locked(
                    seq,
                    f"request crashed worker {index} {attempts} times; "
                    f"giving up",
                    request.id if request is not None else None)
                if routed is not None:
                    fired.append(routed)
                continue
            self._redrives[seq] = attempts
            self.metrics.add("redriven")
            # Bump the ticket to the new generation *now*: the dead
            # worker may have answered just before dying, and that
            # zombie reply must not beat the re-driven dispatch.
            self._tickets[seq] = self._restarts[index]
            # Re-driven work is pinned: it must re-run on its home
            # shard, in its original order, ahead of newer arrivals.
            requeue.append((seq, request, False))
        self._outstanding[index] = 0
        self._home[index].extendleft(reversed(requeue))
        self._spawn_process(index, load_verdicts=False)
        if self._active_broadcast is not None:
            # A stats/caches broadcast was waiting on the dead worker;
            # re-send it so the caller is answered by the replacement.
            self._inboxes[index].put(self._active_broadcast)
        self._pump_locked()
        return fired
