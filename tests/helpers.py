"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.semirings import ALL_SEMIRINGS


def semiring_params():
    """All registered semirings as pytest params keyed by name."""
    return [pytest.param(s, id=s.name) for s in ALL_SEMIRINGS]


def exact_cq_semirings():
    """Semirings whose CQ containment is decided by Table 1."""
    from repro.core import classify
    return [
        pytest.param(s, id=s.name) for s in ALL_SEMIRINGS
        if classify(s).cq_exact_class() is not None
        or classify(s).small_model
    ]


def exact_ucq_semirings():
    """Semirings whose UCQ containment is decided by Table 1."""
    from repro.core import classify
    return [
        pytest.param(s, id=s.name) for s in ALL_SEMIRINGS
        if classify(s).ucq_exact_class() is not None
        or classify(s).small_model
    ]
