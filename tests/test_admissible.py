"""CQ-admissible polynomials (Def. 4.7, Prop. 4.16).

Covers the paper's explicit examples and the structural property that
every polynomial produced by evaluating a CQ on a canonical instance is
admissible.
"""

from __future__ import annotations

import random

import pytest

from repro.data import canonical_instance
from repro.polynomials import (Polynomial, distinct_orderings,
                               is_cq_admissible, representations,
                               zigzag_closed)
from repro.polynomials.polynomial import Monomial
from repro.queries import evaluate, parse_cq
from repro.queries.generators import random_cq
from repro.semirings import NX


def poly(terms):
    return Polynomial.parse_terms(terms)


# --- paper's examples (Sec. 4.5) --------------------------------------

def test_x_squared_admissible():
    assert is_cq_admissible(poly([(1, "xx")]))


def test_2xy_admissible():
    assert is_cq_admissible(poly([(2, "xy")]))


def test_x_plus_y_admissible():
    assert is_cq_admissible(poly([(1, "x"), (1, "y")]))


def test_2x_not_admissible():
    """Only one ordering of 'x' exists — coefficient 2 is unreachable."""
    assert not is_cq_admissible(poly([(2, "x")]))


def test_x2_plus_y_not_admissible():
    """Not homogeneous."""
    assert not is_cq_admissible(poly([(1, "xx"), (1, "y")]))


def test_x2_xy_y2_not_admissible():
    """The paper's subtle example: satisfies the degree requirements but
    fails the zig-zag closure (the missing mixed term is forced)."""
    assert not is_cq_admissible(poly([(1, "xx"), (1, "xy"), (1, "yy")]))


def test_full_square_admissible():
    """(x + y)² = x² + 2xy + y² IS admissible (Ex. 4.6's Q1 produces it)."""
    assert is_cq_admissible(poly([(1, "xx"), (2, "xy"), (1, "yy")]))


def test_power_of_sum_admissible():
    """(x1 + … + xn)^k is the paper's canonical admissible polynomial."""
    s = Polynomial.variable("x") + Polynomial.variable("y")
    assert is_cq_admissible(s.power(2))
    assert is_cq_admissible(s.power(3))


def test_zero_and_single_variable_admissible():
    assert is_cq_admissible(Polynomial.zero())
    assert is_cq_admissible(poly([(1, "x")]))


def test_constants_not_admissible():
    """Every CQ has at least one atom, so degree-0 terms cannot occur."""
    assert not is_cq_admissible(Polynomial.one())
    assert not is_cq_admissible(Polynomial.constant(2))


# --- machinery --------------------------------------------------------

def test_distinct_orderings():
    assert distinct_orderings(Monomial.from_variables("xy")) == (
        ("x", "y"), ("y", "x"))
    assert distinct_orderings(Monomial.from_variables("xx")) == (("x", "x"),)


def test_representations_count():
    # 2xy has exactly one representation: both orderings.
    reps = list(representations(poly([(2, "xy")])))
    assert reps == [frozenset({("x", "y"), ("y", "x")})]
    # 1xy has two: either ordering.
    reps = list(representations(poly([(1, "xy")])))
    assert len(reps) == 2


def test_representation_overflow_rejected():
    assert list(representations(poly([(3, "xy")]))) == []


def test_zigzag_closed_simple():
    assert zigzag_closed(frozenset({("x", "x"), ("y", "y")}))
    assert zigzag_closed(frozenset({("x", "y"), ("y", "x")}))
    # {xx, yy, xy} forces yx via the chain yy ~ xy ~ xx.
    assert not zigzag_closed(frozenset({("x", "x"), ("y", "y"), ("x", "y")}))
    # Degree-1 words are always closed.
    assert zigzag_closed(frozenset({("x",), ("y",)}))
    assert zigzag_closed(frozenset())


# --- every query-produced polynomial is admissible --------------------

@pytest.mark.parametrize("text", [
    "Q() :- R(u, v), R(u, w)",
    "Q() :- R(u, v), R(u, v)",
    "Q() :- R(u, u), R(u, w)",
    "Q() :- R(u, v), S(u)",
    "Q() :- R(u, v), R(v, u)",
])
def test_canonical_evaluations_admissible(text):
    query = parse_cq(text)
    tagged = canonical_instance(query)
    result = evaluate(query, tagged.instance, (), NX)
    assert is_cq_admissible(result), (text, result)


def test_random_canonical_evaluations_admissible():
    rng = random.Random(42)
    for _ in range(25):
        q_data = random_cq(rng, max_atoms=2, max_vars=3)
        q_eval = random_cq(rng, max_atoms=2, max_vars=3)
        tagged = canonical_instance(q_data)
        result = evaluate(q_eval, tagged.instance, (), NX)
        assert is_cq_admissible(result), (q_data, q_eval, result)


# --- the constructive direction (realize) ------------------------------

from repro.polynomials.admissible import realize


@pytest.mark.parametrize("terms", [
    [(1, "xx")],
    [(2, "xy")],
    [(1, "x"), (1, "y")],
    [(1, "xx"), (2, "xy"), (1, "yy")],
    [(1, "xx"), (1, "yy")],
], ids=["x^2", "2xy", "x+y", "(x+y)^2", "x^2+y^2"])
def test_realize_finds_witnesses(terms):
    target = poly(terms)
    witness = realize(target)
    assert witness is not None
    query, tagged, renaming = witness
    produced = evaluate(query, tagged.instance, (), NX)
    # the witness reproduces the polynomial modulo the tag renaming
    renamed = Polynomial(
        (Monomial(tuple((renaming[var], exp) for var, exp in mono.powers)),
         coeff)
        for mono, coeff in produced.items()
    )
    assert renamed == target


@pytest.mark.parametrize("terms", [
    [(2, "x")],
    [(1, "xx"), (1, "xy"), (1, "yy")],
    [(1, "xx"), (1, "y")],
], ids=["2x", "x^2+xy+y^2", "x^2+y"])
def test_realize_rejects_inadmissible(terms):
    assert realize(poly(terms)) is None


def test_realize_agrees_with_characterization():
    """On a pool of small polynomials the two directions of Prop. 4.16
    coincide: realizable ⟺ zig-zag representable."""
    candidates = [
        poly([(1, "x")]),
        poly([(2, "x")]),
        poly([(1, "xy")]),
        poly([(2, "xy")]),
        poly([(1, "xx"), (1, "xy")]),
        poly([(1, "xx"), (2, "xy"), (1, "yy")]),
        poly([(1, "xx"), (1, "xy"), (1, "yy")]),
    ]
    for candidate in candidates:
        realized = realize(candidate) is not None
        characterized = is_cq_admissible(candidate)
        assert realized == characterized, candidate
