"""The positive relational algebra layer and its UCQ compilation."""

from __future__ import annotations

import random

import pytest

from repro.algebra import check_rewrite, table
from repro.data import Instance
from repro.queries import evaluate_all
from repro.semirings import B, LIN, N, NX, TPLUS, WHY

R = table("R", "src", "dst")
S = table("S", "dst", "kind")


def bag_instance():
    return Instance(N, {
        "R": {("a", "b"): 2, ("c", "b"): 1, ("a", "d"): 1},
        "S": {("b", "x"): 3, ("d", "y"): 5},
    })


# --- construction validation -------------------------------------------

def test_table_schema_must_be_distinct():
    with pytest.raises(ValueError):
        table("R", "a", "a")


def test_selection_validates_attribute():
    with pytest.raises(ValueError):
        R.select("nope", 1)
    with pytest.raises(ValueError):
        R.select("src", "@nope")


def test_projection_validates_attributes():
    with pytest.raises(ValueError):
        R.project("nope")


def test_union_needs_matching_schema():
    with pytest.raises(ValueError):
        R.union(S)


def test_renaming_collision_rejected():
    with pytest.raises(ValueError):
        R.rename({"src": "dst"})


# --- evaluation ----------------------------------------------------------

def test_join_multiplies_annotations():
    result = R.join(S).evaluate(bag_instance())
    assert result[("a", "b", "x")] == 6
    assert result[("c", "b", "x")] == 3
    assert result[("a", "d", "y")] == 5


def test_projection_adds_annotations():
    result = R.join(S).project("src").evaluate(bag_instance())
    assert result[("a",)] == 6 + 5
    assert result[("c",)] == 3


def test_selection_constant():
    result = R.join(S).select("kind", "x").project("src").evaluate(
        bag_instance())
    assert result == {("a",): 6, ("c",): 3}


def test_selection_attribute_equality():
    instance = Instance(N, {"R": {("a", "a"): 4, ("a", "b"): 7}})
    result = R.select("src", "@dst").evaluate(instance)
    assert result == {("a", "a"): 4}


def test_union_adds():
    instance = Instance(N, {"R": {("a", "b"): 2}, "T": {("a", "b"): 5}})
    T = table("T", "src", "dst")
    assert R.union(T).evaluate(instance) == {("a", "b"): 7}


def test_rename_relabels_schema():
    renamed = R.rename({"dst": "mid"})
    assert renamed.attributes == ("src", "mid")
    chained = renamed.join(R.rename({"src": "mid"}))
    assert chained.attributes == ("src", "mid", "dst")


def test_two_hop_join():
    two_hop = R.rename({"dst": "mid"}).join(
        R.rename({"src": "mid"})).project("src", "dst")
    instance = Instance(N, {"R": {("a", "b"): 2, ("b", "c"): 3}})
    assert two_hop.evaluate(instance) == {("a", "c"): 6}


# --- compilation ----------------------------------------------------------

def test_compiled_head_matches_schema():
    ucq = R.join(S).project("src", "kind").to_ucq()
    assert ucq.arity == 2
    assert len(ucq) == 1


def test_union_compiles_to_members():
    T = table("T", "src", "dst")
    ucq = R.union(T).to_ucq()
    assert len(ucq) == 2


def test_selection_of_union_distributes():
    T = table("T", "src", "dst")
    ucq = R.union(T).select("src", "a").project("dst").to_ucq()
    assert len(ucq) == 2


def test_projecting_away_selected_constant_ok():
    ucq = R.select("dst", "b").project("src").to_ucq()
    assert ucq.cqs[0].constants() == ("b",)


def test_constant_in_head_rejected():
    with pytest.raises(ValueError):
        R.select("dst", "b").to_ucq()


SEMIRINGS = [B, N, NX, LIN, WHY, TPLUS]


def _random_instance(semiring, rng):
    relations = {"R": {}, "S": {}}
    for a in "abc":
        for b in "abc":
            if rng.random() < 0.5:
                relations["R"][(a, b)] = semiring.sample(rng)
        if rng.random() < 0.5:
            relations["S"][(a, rng.choice("xy"))] = semiring.sample(rng)
    return Instance(semiring, relations)


EXPRESSIONS = [
    R,
    R.project("src"),
    R.select("src", "@dst"),
    R.join(S),
    R.join(S).select("kind", "x").project("src"),
    R.rename({"dst": "mid"}).join(R.rename({"src": "mid"})).project(
        "src", "dst"),
    R.project("src").union(
        R.select("src", "@dst").project("src")),
    R.join(S).project("src").union(R.project("src")),
]


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("expression", EXPRESSIONS,
                         ids=[f"expr{i}" for i in range(len(EXPRESSIONS))])
def test_compilation_agrees_with_evaluation(semiring, expression):
    """The UCQ compilation is exact: same annotated answers on random
    instances over six differently-shaped semirings."""
    rng = random.Random(hash((semiring.name, repr(expression))) & 0xFFFF)
    for _ in range(3):
        instance = _random_instance(semiring, rng)
        direct = expression.evaluate(instance)
        compiled = evaluate_all(expression.to_ucq(), instance)
        assert direct == compiled, (semiring.name, expression, instance)


# --- rewrite checking --------------------------------------------------------

def test_selfjoin_elimination_semiring_dependent():
    doubled = R.join(R.rename({"dst": "dst2"})).project("src")
    single = R.project("src")
    assert check_rewrite(doubled, single, B).equivalent is True
    assert check_rewrite(doubled, single, NX).equivalent is False
    assert check_rewrite(doubled, single, LIN).equivalent is True


def test_rewrite_check_reports_direction():
    bigger = R.project("src").union(R.project("src"))
    smaller = R.project("src")
    check = check_rewrite(smaller, bigger, NX)
    assert check.forward.result is True     # smaller ⊆ bigger
    assert check.backward.result is False   # bigger ⊄ smaller over N[X]
    assert check.equivalent is False
    assert "NOT EQUIVALENT" in check.summary()


def test_rewrite_check_undecided_over_bags():
    doubled = R.join(R.rename({"dst": "dst2"})).project("src")
    single = R.project("src")
    check = check_rewrite(doubled, single, N)
    assert check.equivalent is None
    assert "UNDECIDED" in check.summary()


def test_rewrite_check_schema_mismatch():
    with pytest.raises(ValueError):
        check_rewrite(R, R.project("src"), B)
