"""Caching and registry semantics of :class:`repro.api.ContainmentEngine`."""

from __future__ import annotations

import pytest

from repro.api import ContainmentEngine, ContainmentRequest
from repro.semirings import DEFAULT_REGISTRY, SemiringRegistry
from repro.semirings.boolean import BooleanSemiring

Q1 = "Q() :- R(u, v), R(u, w)"
Q2 = "Q() :- R(u, v), R(u, v)"


class RenamedBoolean(BooleanSemiring):
    name = "B2"


def test_classification_computed_once_per_semiring():
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "B")
    engine.decide(Q2, Q1, "B")
    engine.decide("Q() :- R(x, y)", "Q() :- R(x, x)", "B")
    assert engine.stats.classify_calls == 1
    assert engine.stats.classify_hits >= 2
    engine.decide(Q1, Q2, "N[X]")
    assert engine.stats.classify_calls == 2


def test_verdict_cache_hit_on_repeated_decide():
    engine = ContainmentEngine()
    first = engine.decide(Q1, Q2, "B")
    second = engine.decide(Q1, Q2, "B")
    assert engine.stats.verdict_hits == 1
    assert not first.cached and second.cached
    assert second.result is first.result
    # Per-request metadata is fresh on a hit.
    third = engine.decide(Q1, Q2, "B", request_id="r3")
    assert third.cached and third.request_id == "r3"


def test_hom_search_cache_shared_across_semirings():
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "B")       # needs the plain hom Q2 → Q1
    assert engine.stats.hom_calls >= 1
    before = engine.stats.hom_calls
    engine.decide(Q1, Q2, "N[X]")    # same plain hom, different semiring
    assert engine.stats.hom_hits >= 1
    # The bijective search is new, so at most one extra real search ran.
    assert engine.stats.hom_calls <= before + 1


def test_parse_interning_returns_same_object():
    engine = ContainmentEngine()
    assert engine.parse(Q1) is engine.parse(Q1)
    assert engine.stats.parse_calls == 1
    assert engine.stats.parse_hits == 1


def test_register_semiring_invalidates_semiring_caches():
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "B")
    assert engine.cache_info()["classification_entries"] == 1
    assert engine.cache_info()["verdict_entries"] == 1
    hom_entries = engine.cache_info()["hom_entries"]
    engine.register_semiring(RenamedBoolean(), aliases=("bool2",))
    info = engine.cache_info()
    assert info["classification_entries"] == 0
    assert info["verdict_entries"] == 0
    # The homomorphism cache is structural and survives.
    assert info["hom_entries"] == hom_entries
    # The next decide recomputes the classification.
    engine.decide(Q1, Q2, "B")
    assert engine.stats.classify_calls == 2
    # The new name and alias resolve on this engine...
    assert engine.semiring("B2").name == "B2"
    assert engine.semiring("bool2").name == "B2"
    assert engine.decide(Q1, Q2, "B2").result is True
    # ...but never leak into the process-wide default registry.
    assert "B2" not in DEFAULT_REGISTRY


def test_external_registry_mutation_detected():
    registry = DEFAULT_REGISTRY.copy()
    engine = ContainmentEngine(registry)
    engine.decide(Q1, Q2, "B")
    registry.register(RenamedBoolean())
    engine.decide(Q1, Q2, "B")
    assert engine.stats.classify_calls == 2  # cache was dropped


def test_registry_duplicate_rejected_unless_replace():
    registry = SemiringRegistry()
    registry.register(RenamedBoolean())
    with pytest.raises(ValueError):
        registry.register(RenamedBoolean())
    registry.register(RenamedBoolean(), replace=True)
    assert len(registry) == 1


def test_register_cannot_silently_shadow_alias():
    class BagNamedBoolean(BooleanSemiring):
        name = "bag"  # collides with the built-in alias for N

    engine = ContainmentEngine()
    assert engine.semiring("bag").name == "N"
    with pytest.raises(ValueError, match="alias"):
        engine.register_semiring(BagNamedBoolean())
    assert engine.semiring("bag").name == "N"  # binding untouched
    engine.register_semiring(BagNamedBoolean(), replace=True)
    assert engine.semiring("bag").name == "bag"  # explicit takeover


def test_alias_edits_do_not_flush_engine_caches():
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "B")
    engine.registry.alias("B", "mybool")
    repeat = engine.decide(Q1, Q2, "mybool")
    assert repeat.cached                       # verdict cache survived
    assert engine.stats.classify_calls == 1    # classification too


def test_batch_unknown_semiring_error_is_unquoted():
    from repro.api import process_lines

    engine = ContainmentEngine()
    line = '{"semiring": "nosuch", "q1": "Q() :- R(x)", "q2": "Q() :- R(x)"}'
    (out,) = list(process_lines(engine, [line]))
    assert not out["error"].startswith('"')    # no str(KeyError) repr quotes
    assert out["error"].startswith("unknown semiring")


def test_alias_rebinding_requires_replace():
    registry = DEFAULT_REGISTRY.copy()
    with pytest.raises(ValueError, match="already bound"):
        registry.alias("B", "bag")  # 'bag' belongs to N
    registry.alias("B", "bag", replace=True)
    assert registry.get("bag").name == "B"
    registry.alias("B", "bool")  # re-declaring the same binding is fine


def test_alias_over_canonical_name_always_rejected():
    registry = DEFAULT_REGISTRY.copy()
    # Canonical names win on lookup, so such an alias would be a dead
    # binding — rejected even with replace=True.
    with pytest.raises(ValueError, match="never take effect"):
        registry.alias("B", "N")
    with pytest.raises(ValueError, match="never take effect"):
        registry.alias("B", "N", replace=True)
    assert registry.get("N").name == "N"


def test_failed_register_is_a_noop():
    class Custom(BooleanSemiring):
        name = "Custom"

    engine = ContainmentEngine()
    version = engine.registry.version
    with pytest.raises(ValueError, match="already bound"):
        engine.register_semiring(Custom(), aliases=("bag",))
    assert "Custom" not in engine.registry       # nothing half-applied
    assert engine.registry.version == version    # caches not flushed
    engine.register_semiring(Custom())           # clean retry succeeds
    assert engine.semiring("Custom").name == "Custom"


def test_registry_lookup_alias_case_and_suggestion():
    engine = ContainmentEngine()
    assert engine.semiring("boolean").name == "B"
    assert engine.semiring("n[x]").name == "N[X]"
    assert engine.semiring("TROPICAL").name == "T+"
    with pytest.raises(KeyError, match="did you mean"):
        engine.semiring("N[Y]")
    with pytest.raises(KeyError, match="available"):
        engine.semiring("totally-bogus-name-zzz")


def test_verdict_cache_distinguishes_same_named_semirings():
    from repro.semirings import N

    class BagNamedBoolean(BooleanSemiring):
        name = "N"

    engine = ContainmentEngine()
    open_verdict = engine.decide(Q1, Q2, N)          # the real bag semiring
    assert open_verdict.result is None
    impostor = engine.decide(Q1, Q2, BagNamedBoolean())
    assert impostor.result is True                   # Boolean semantics
    assert not impostor.cached


def test_hom_lru_evicts_at_capacity():
    engine = ContainmentEngine(hom_cache_size=1)
    engine.decide(Q1, Q2, "B")
    engine.decide("Q() :- S(x)", "Q() :- S(y)", "B")
    assert engine.cache_info()["hom_entries"] == 1


def test_decide_many_preserves_order_and_ids():
    engine = ContainmentEngine()
    requests = [
        ContainmentRequest.make(Q1, Q2, "B", id="a"),
        {"semiring": "N", "q1": Q1, "q2": Q2, "id": "b"},
        ContainmentRequest.make(Q2, Q1, "B", id="c", equivalence=True),
    ]
    documents = engine.decide_many(requests)
    assert [doc.request_id for doc in documents] == ["a", "b", "c"]
    assert documents[0].result is True
    assert documents[1].result is None
    # Over B the Ex. 4.6 pair is equivalent (homomorphisms both ways).
    assert documents[2].result is True


def test_decide_accepts_objects_text_lists_and_dicts():
    from repro.queries import parse_cq, parse_ucq
    from repro.queries.serialize import query_to_dict

    engine = ContainmentEngine()
    cq1, cq2 = parse_cq(Q1), parse_cq(Q2)
    by_text = engine.decide(Q1, Q2, "B")
    by_object = engine.decide(cq1, cq2, "B")
    by_list = engine.decide([Q1], [Q2], "B")
    by_dict = engine.decide(query_to_dict(cq1), query_to_dict(cq2), "B")
    by_union = engine.decide(parse_ucq([Q1]), parse_ucq([Q2]), "B")
    assert {d.result for d in (by_text, by_object, by_list, by_dict,
                               by_union)} == {True}
    # All five were the same canonical question: four verdict-cache hits.
    assert engine.stats.verdict_hits == 4


def test_request_rejects_semiring_instances():
    from repro.semirings import B

    with pytest.raises(TypeError, match="semiring name"):
        ContainmentRequest.make(Q1, Q2, B)


def test_equivalence_goes_both_ways():
    engine = ContainmentEngine()
    same = engine.decide("Q() :- R(x, y)", "Q() :- R(a, b)", "B",
                         equivalence=True)
    assert same.result is True
    assert "+" in same.method
    different = engine.decide("Q() :- R(x, y)", "Q() :- R(x, x)", "B",
                              equivalence=True)
    assert different.result is False


def test_lru_stores_none_and_falsy_values():
    from repro.api.engine import _LRU

    lru = _LRU(4)
    sentinel = object()
    lru.put("none", None)
    lru.put("empty", ())
    assert lru.get("none", sentinel) is None       # stored, not missing
    assert lru.get("empty", sentinel) == ()
    assert lru.get("absent", sentinel) is sentinel


def test_cached_none_verdict_value_never_recomputed():
    # An undecided (result=None) verdict document must still be served
    # from the verdict cache on the second ask.
    engine = ContainmentEngine()
    first = engine.decide(Q1, Q2, "N")
    assert first.result is None and not first.cached
    second = engine.decide(Q1, Q2, "N")
    assert second.result is None and second.cached
    assert engine.stats.verdict_hits == 1


def test_covering_path_routes_through_hom_caches():
    # Lin[X] ∈ Chcov: the covers() call must hit the engine's caches.
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "Lin[X]")
    assert engine.stats.cover_calls > 0
    first_cover_calls = engine.stats.cover_calls
    engine.clear_caches()  # force recompute but keep counters
    engine.decide(Q1, Q2, "Lin[X]")
    assert engine.stats.cover_calls == first_cover_calls * 2


def test_bounds_path_records_hom_and_description_hits():
    # Bag semantics exercises _bounded_verdict: within ONE verdict the
    # necessary/sufficient sweeps reuse ⟨Q⟩, and across paths (the
    # Chcov covering decision vs the N bounds decision on the same
    # pair) the hom LRU is shared — both recorded zero hits before the
    # context was threaded through.
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "Lin[X]")      # covering path, fills hom LRU
    document = engine.decide([Q1], [Q2, "Q() :- S(x)"], "N")
    assert document.result is None
    assert engine.stats.description_hits > 0, \
        "complete_description must be memoized within a verdict"
    assert engine.stats.hom_hits > 0, \
        "covering/UCQ/bounds paths must route through the hom LRU"


def test_sur_infty_path_uses_description_cache():
    # Non-singleton unions reach the UCQ dispatch, where Ssur[X]
    # decides via ⟨Q2⟩ ։∞ ⟨Q1⟩ over complete descriptions.
    engine = ContainmentEngine()
    document = engine.decide(
        ["Q() :- R(u, u)", "Q() :- R(v, w), R(w, v)"],
        ["Q() :- R(a, b)", "Q() :- R(c, c), R(c, c)"], "Ssur[X]")
    assert document.method in ("sur-infty-matching", "local-surjective",
                               "no-local-homomorphism")
    info = engine.cache_info()
    assert info["description_entries"] > 0


def test_homomorphism_mappings_seeds_find_cache():
    from repro.homomorphisms import HomKind
    from repro.queries import parse_cq

    engine = ContainmentEngine()
    source, target = parse_cq(Q2), parse_cq(Q1)
    mappings = engine.homomorphism_mappings(source, target, HomKind.PLAIN)
    assert mappings
    before = engine.stats.hom_calls
    assert engine.find_homomorphism(source, target, HomKind.PLAIN) is not None
    assert engine.stats.hom_calls == before  # served from the enum seed
    assert engine.stats.hom_hits >= 1


def test_structural_caches_survive_registration():
    engine = ContainmentEngine()
    engine.decide(Q1, Q2, "Lin[X]")
    info = engine.cache_info()
    structural = {key: info[key] for key in
                  ("hom_entries", "cover_entries", "description_entries")}
    engine.register_semiring(RenamedBoolean(), replace=True)
    after = engine.cache_info()
    for key, value in structural.items():
        assert after[key] == value, key


def test_request_id_integer_is_coerced_to_string():
    request = ContainmentRequest.make(Q1, Q2, "B", id=7)
    assert request.id == "7"
    engine = ContainmentEngine()
    document = engine.decide_request(request)
    assert document.request_id == "7"
    assert isinstance(document.to_dict()["request_id"], str)


def test_request_id_non_string_non_int_rejected():
    for bad in (True, 1.5, ["x"], {"id": 1}):
        with pytest.raises(TypeError, match="request id"):
            ContainmentRequest.make(Q1, Q2, "B", id=bad)


def test_batch_numeric_id_echoed_as_string():
    from repro.api import process_lines

    engine = ContainmentEngine()
    line = ('{"semiring": "B", "q1": "Q() :- R(x, y)", '
            '"q2": "Q() :- R(x, x)", "id": 7}')
    (out,) = list(process_lines(engine, [line]))
    assert out["request_id"] == "7"


def test_batch_unusable_id_reported_in_band():
    from repro.api import process_lines

    engine = ContainmentEngine()
    line = ('{"semiring": "B", "q1": "Q() :- R(x, y)", '
            '"q2": "Q() :- R(x, x)", "id": [1, 2]}')
    (out,) = list(process_lines(engine, [line]))
    assert "error" in out and "request id" in out["error"]
    assert out.get("id") is None  # the unusable id is not echoed raw


def test_covered_atoms_and_enumeration_share_one_search():
    # ROADMAP item: coverage and enumeration share one search per pair.
    from repro.homomorphisms.covering import covered_atoms as plain_covered
    from repro.homomorphisms.search import HomKind

    # Covering failure exhausts the search, so the complete enumeration
    # it produced is cached: the later enumeration ask is a hit.
    engine = ContainmentEngine()
    source = engine.parse("Q() :- R(u, v)")
    target = engine.parse("Q() :- R(a, b), S(a)")
    result = engine.covered_atoms(source, target)
    assert result == plain_covered(source, target)
    assert engine.stats.hom_enum_calls == 1
    engine.homomorphism_mappings(source, target, HomKind.PLAIN)
    assert engine.stats.hom_enum_calls == 1
    assert engine.stats.hom_enum_hits == 1
    # The search also learned the existence answer.
    engine.find_homomorphism(source, target, HomKind.PLAIN)
    assert engine.stats.hom_calls == 0 and engine.stats.hom_hits == 1

    # In the other order a cached enumeration makes coverage search-free.
    other = ContainmentEngine()
    other.homomorphism_mappings(other.parse(Q1), other.parse(Q2),
                                HomKind.PLAIN)
    assert other.stats.hom_enum_calls == 1
    other.covered_atoms(other.parse(Q1), other.parse(Q2))
    assert other.stats.hom_enum_calls == 1
    assert other.stats.hom_enum_hits == 1
    assert other.stats.cover_calls == 1


def test_covered_atoms_stays_lazy_on_early_success():
    # A pair with combinatorially many homomorphisms where the first
    # few already cover the target: coverage must stop early rather
    # than materialize the full enumeration (which is exponential).
    from repro.homomorphisms.search import HomKind
    from repro.queries import CQ, Atom, Var

    source = CQ((), [Atom("R", (Var(f"x{i}"), Var(f"y{i}")))
                     for i in range(4)])
    target = CQ((), [Atom("R", (Var("a"), Var("b"))),
                     Atom("R", (Var("b"), Var("c"))),
                     Atom("R", (Var("c"), Var("d")))])
    engine = ContainmentEngine()
    result = engine.covered_atoms(source, target)
    assert result == frozenset(target.atoms)
    # The partial iteration must NOT be cached as a (wrong) complete
    # enumeration — asking for the enumeration runs the real search
    # (3^4 = 81 mappings: each independent atom picks a target atom).
    assert engine.stats.hom_enum_calls == 0
    mappings = engine.homomorphism_mappings(source, target, HomKind.PLAIN)
    assert engine.stats.hom_enum_calls == 1
    assert len(mappings) == 81
