"""The executable necessary-class axioms (Secs. 4.1–5.4).

For every semiring with a decidable polynomial order, each declared
classification flag is confronted with the bounded axiom search:
declared-False memberships must be *refutable* (a concrete violating
polynomial pair exists) and declared-True memberships must survive the
bounded probes.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (admissible_probe_polynomials, falsify_nhcov,
                        falsify_nin, falsify_nk_bi, falsify_nk_hcov,
                        falsify_nsur, probe_polynomials)
from repro.polynomials import Polynomial
from repro.semirings import (B, BX, FUZZY, LIN, N2X, N2_SATURATING, NX,
                             POSBOOL, SORP, TMINUS, TPLUS, VITERBI, WHY)


@pytest.fixture(scope="module")
def probes():
    return probe_polynomials(random.Random(11), 50)


@pytest.fixture(scope="module")
def admissible():
    return admissible_probe_polynomials(random.Random(12), 25)


# --- Nhcov ------------------------------------------------------------

def test_lattices_violate_nhcov():
    """For distributive lattices the product is below the sum, so
    covering is NOT necessary (consistent with Chom membership)."""
    for semiring in (B, POSBOOL, FUZZY):
        violation = falsify_nhcov(semiring)
        assert violation is not None, semiring.name
        assert violation.axiom == "Nhcov"


def test_tminus_survives_nhcov():
    """T− is claimed in Nhcov: the bounded search must stay silent."""
    assert falsify_nhcov(TMINUS) is None


def test_tplus_violates_nhcov():
    """min-plus: the k-fold sum stays below the long product."""
    assert falsify_nhcov(TPLUS) is not None


def test_saturating_violates_nhcov():
    """Saturation caps the sum side: N₂ falls out of Nhcov (the finding
    that moved the C2hcov representative to Lin[X]×N₂)."""
    assert falsify_nhcov(N2_SATURATING) is not None


def test_lineage_survives_nhcov():
    assert falsify_nhcov(LIN) is None


# --- Nin ----------------------------------------------------------------

def test_sorp_survives_nin(admissible):
    assert falsify_nin(SORP, admissible) is None


def test_tplus_violates_nin(admissible):
    """The Ex. 4.6 witness: x1x2 ≼T+ x1² + x2² with no square-free
    sub-monomial on the right."""
    violation = falsify_nin(TPLUS, admissible)
    assert violation is not None
    assert not any(
        mono.is_squarefree() and not mono.is_unit()
        for mono, _ in violation.right.items()
    )


def test_viterbi_violates_nin(admissible):
    """Ex. 4.6 transfers through the −log isomorphism."""
    assert falsify_nin(VITERBI, admissible) is not None


def test_why_violates_nin(admissible):
    assert falsify_nin(WHY, admissible) is not None


def test_nx_survives_nin(admissible):
    assert falsify_nin(NX, admissible) is None


# --- Nsur ----------------------------------------------------------------

def test_why_survives_nsur(admissible):
    assert falsify_nsur(WHY, admissible) is None


def test_lin_violates_nsur(admissible):
    """⊗-idempotence collapses exponents: surjectivity is unnecessary."""
    assert falsify_nsur(LIN, admissible) is not None


def test_nx_survives_nsur(admissible):
    assert falsify_nsur(NX, admissible) is None


def test_b_violates_nsur(admissible):
    assert falsify_nsur(B, admissible) is not None


# --- Nkhcov ----------------------------------------------------------------

def test_lin_survives_n1hcov(probes):
    assert falsify_nk_hcov(LIN, 1, probes) is None


def test_lin_violates_n2hcov(probes):
    """⊕-idempotence absorbs the multiplicity-2 requirement."""
    violation = falsify_nk_hcov(LIN, 2, probes)
    assert violation is not None
    assert "monomials" in violation.detail


def test_n2_violates_n1hcov(probes):
    """The automatic rediscovery of the N₂ finding: the cap bounds every
    value by 2·1, so a variable can be dropped from the right side."""
    violation = falsify_nk_hcov(N2_SATURATING, 1, probes)
    assert violation is not None
    assert "unused" in violation.detail


def test_tminus_survives_n1hcov(probes):
    assert falsify_nk_hcov(TMINUS, 1, probes) is None


def test_tminus_violates_n2hcov(probes):
    """Tropical addition absorbs coefficients: min(ℓ,2) = 2 copies can
    never be required."""
    assert falsify_nk_hcov(TMINUS, 2, probes) is not None


# --- Nkbi ----------------------------------------------------------------

def test_nx_survives_ninf_bi(probes):
    assert falsify_nk_bi(NX, float("inf"), probes) is None


def test_bx_violates_ninf_bi(probes):
    """Boolean coefficients collapse ℓ·M to M: the coefficient demand of
    C∞bi fails — B[X] sits in C1bi instead."""
    violation = falsify_nk_bi(BX, float("inf"), probes)
    assert violation is not None


def test_bx_survives_n1_bi(probes):
    assert falsify_nk_bi(BX, 1, probes) is None


def test_n2x_survives_n2_bi(probes):
    assert falsify_nk_bi(N2X, 2, probes) is None


def test_n2x_violates_ninf_bi(probes):
    assert falsify_nk_bi(N2X, float("inf"), probes) is not None


# --- reporting -------------------------------------------------------------

def test_violation_repr(probes):
    violation = falsify_nhcov(B)
    text = repr(violation)
    assert "Nhcov" in text and "≼" in text


def test_probe_pools_include_paper_polynomials(probes, admissible):
    ex46 = Polynomial.parse_terms([(1, ("z1", "z1")), (1, ("z2", "z2"))])
    assert ex46 in admissible
    assert Polynomial.parse_terms([(2, ("x1",))]) in probes
