"""Refinement-based canonical labeling vs the factorial reference.

Covers the PR-5 contract: the capture-free ``canonical_rename`` (the
``Q(e0) :- R(e0, x)`` regression), renaming invariance, idempotence,
key equivalence with the exhaustive permutation reference, automorphism
counts cross-checked against endomorphism enumeration on complete
CCQs, inequality/constant-bearing cases, scalability past the old
factorial wall, and the engine's observable, snapshot-persisted
``canonical`` cache layer.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.api import ContainmentEngine
from repro.homomorphisms import isomorphism
from repro.homomorphisms._reference_iso import (reference_automorphism_count,
                                                reference_canonical_key)
from repro.homomorphisms.canonical import (CanonicalForm,
                                           compute_canonical_form,
                                           fresh_existential_labels)
from repro.homomorphisms.isomorphism import (are_isomorphic,
                                             automorphism_count,
                                             canonical_key, canonical_rename,
                                             endomorphisms, is_automorphism,
                                             isomorphism_classes)
from repro.queries import CQWithInequalities, parse_cq
from repro.queries.atoms import Atom, Var
from repro.queries.ccq import complete_description
from repro.queries.generators import random_cq
from repro.service import load_snapshot, save_snapshot


def _rename_existentials(query, rng: random.Random):
    """Randomly rename only the existential variables (heads fixed)."""
    existential = query.existential_vars()
    fresh = [f"zz{rng.randrange(10 ** 9)}_{i}" for i in range(len(existential))]
    order = list(range(len(existential)))
    rng.shuffle(order)
    return query.substitute({
        var: Var(fresh[order[i]]) for i, var in enumerate(existential)
    })


def _complete_ccq(atoms, head=()):
    """All-pairs-unequal CCQ over the atoms' existential variables."""
    existential = sorted(
        {v for atom in atoms for v in atom.variables()} - set(head))
    pairs = [(x, y) for i, x in enumerate(existential)
             for y in existential[i + 1:]]
    return CQWithInequalities(head, atoms, pairs)


# --- the capture regression (ISSUE 5 satellite 1) ------------------------

def test_canonical_rename_never_captures_head_variables():
    """Q(e0) :- R(e0, x) must keep its existential: x renames to e1,
    never to the head variable's literal name e0."""
    query = parse_cq("Q(e0) :- R(e0, x)")
    renamed = canonical_rename(query)
    assert renamed.head == query.head
    assert len(renamed.existential_vars()) == 1
    assert renamed.existential_vars()[0] != Var("e0")
    assert renamed == parse_cq("Q(e0) :- R(e0, e1)")


def test_canonical_rename_capture_with_two_head_variables():
    query = parse_cq("Q(e0, e1) :- R(e0, x), S(e1, y), T(x, y)")
    renamed = canonical_rename(query)
    assert renamed.head == query.head
    assert len(renamed.existential_vars()) == 2
    assert not {Var("e0"), Var("e1")} & set(renamed.existential_vars())


def test_canonical_rename_preserves_existential_count_randomly():
    rng = random.Random(31)
    for _ in range(40):
        query = random_cq(rng, max_atoms=4, max_vars=4,
                          head_arity=rng.choice([0, 1, 2]))
        renamed = canonical_rename(query)
        assert renamed.head == query.head
        assert (len(renamed.existential_vars())
                == len(query.existential_vars())), query


def test_fresh_labels_skip_head_names_only():
    query = parse_cq("Q(e0, e2) :- R(e0, e2), S(e0)")
    assert fresh_existential_labels(query, 3) == ["e1", "e3", "e4"]


# --- idempotence and invariance ------------------------------------------

def test_canonical_rename_idempotent():
    rng = random.Random(77)
    queries = [random_cq(rng, max_atoms=4, max_vars=4,
                         head_arity=rng.choice([0, 1]))
               for _ in range(40)]
    queries.append(parse_cq("Q(e0) :- R(e0, x)"))
    queries.append(parse_cq("Q(e1, e0) :- R(e1, x), R(e0, y)"))
    for query in queries:
        once = canonical_rename(query)
        assert canonical_rename(once) == once, query


def test_canonical_rename_invariant_under_existential_renaming():
    rng = random.Random(5)
    for _ in range(40):
        query = random_cq(rng, max_atoms=4, max_vars=4,
                          head_arity=rng.choice([0, 1]))
        renamed = _rename_existentials(query, rng)
        assert are_isomorphic(query, renamed)
        assert canonical_rename(query) == canonical_rename(renamed), query


def test_canonical_key_invariant_on_ccqs():
    rng = random.Random(13)
    for _ in range(20):
        base = random_cq(rng, max_atoms=3, max_vars=3)
        for ccq in complete_description(base):
            assert canonical_key(ccq) == canonical_key(
                _rename_existentials(ccq, rng)), ccq


# --- equivalence with the exhaustive reference ---------------------------

def test_key_equivalence_matches_reference():
    """New and old keys induce the same isomorphism classes."""
    rng = random.Random(2024)
    queries = [random_cq(rng, max_atoms=4, max_vars=4,
                         head_arity=rng.choice([0, 1]))
               for _ in range(60)]
    queries += [_rename_existentials(query, rng) for query in queries[:20]]
    new_keys = [canonical_key(query) for query in queries]
    old_keys = [reference_canonical_key(query) for query in queries]
    for i in range(len(queries)):
        for j in range(i + 1, len(queries)):
            assert ((new_keys[i] == new_keys[j])
                    == (old_keys[i] == old_keys[j])), \
                (queries[i], queries[j])


def test_key_equivalence_reference_eight_existentials():
    """One ≤8-existential pair through the factorial reference."""
    atoms = [Atom("R", (Var(f"x{i}"), Var(f"x{(i + 1) % 4}")))
             for i in range(4)]
    atoms += [Atom("S", (Var(f"y{i}"),)) for i in range(4)]
    query = CQWithInequalities((), atoms, [])
    rng = random.Random(1)
    renamed = _rename_existentials(query, rng)
    assert len(query.existential_vars()) == 8
    assert canonical_key(query) == canonical_key(renamed)
    assert reference_canonical_key(query) == reference_canonical_key(renamed)


def test_automorphism_count_matches_reference():
    rng = random.Random(99)
    for _ in range(60):
        query = random_cq(rng, max_atoms=4, max_vars=4,
                          head_arity=rng.choice([0, 1]))
        assert (automorphism_count(query)
                == reference_automorphism_count(query)), query


def test_automorphism_count_matches_reference_on_ccqs():
    rng = random.Random(41)
    for _ in range(15):
        base = random_cq(rng, max_atoms=3, max_vars=3)
        for ccq in complete_description(base):
            assert (automorphism_count(ccq)
                    == reference_automorphism_count(ccq)), ccq


# --- automorphisms vs endomorphism enumeration ---------------------------

def test_automorphism_count_cross_checked_against_endomorphisms():
    """|Aut| equals the automorphisms found by independent endomorphism
    enumeration; on duplicate-free complete CCQs the Sec. 5.2 lemma
    upgrades that to *all* endomorphisms (plain homomorphisms are
    set-semantics, so a duplicated atom admits non-multiset-preserving
    endos, and a free head admits collapses onto head variables)."""
    rng = random.Random(17)
    checked = 0
    for _ in range(12):
        base = random_cq(rng, max_atoms=3, max_vars=3)
        for ccq in complete_description(base):
            endos = endomorphisms(ccq)
            automorphisms = [mapping for mapping in endos
                             if is_automorphism(ccq, mapping)]
            assert automorphism_count(ccq) == len(automorphisms), ccq
            if len(set(ccq.atoms)) == len(ccq.atoms):
                assert automorphism_count(ccq) == len(endos), ccq
            checked += 1
    assert checked > 20


# --- inequality- and constant-bearing cases ------------------------------

def test_inequalities_distinguish_keys():
    plain = parse_cq("Q() :- R(u, v)")
    ccq = parse_cq("Q() :- R(u, v), u != v")
    assert canonical_key(plain) != canonical_key(ccq)
    assert are_isomorphic(ccq, parse_cq("Q() :- R(s, t), s != t"))


def test_inequalities_interact_with_automorphisms():
    symmetric = parse_cq("Q() :- R(u, v), R(v, u)")
    assert automorphism_count(symmetric) == 2
    swap_atoms = [Atom("R", (Var("u"), Var("v"))),
                  Atom("R", (Var("v"), Var("u"))), Atom("S", (Var("w"),))]
    # a symmetric inequality keeps the u↔v swap an automorphism …
    kept = CQWithInequalities((), swap_atoms, [(Var("u"), Var("v"))])
    assert automorphism_count(kept) == 2
    assert reference_automorphism_count(kept) == 2
    # … an asymmetric one (u ≠ w only) destroys it
    broken = CQWithInequalities((), swap_atoms, [(Var("u"), Var("w"))])
    assert automorphism_count(broken) == 1
    assert reference_automorphism_count(broken) == 1


def test_constants_are_fixed_points():
    with_constant = parse_cq("Q() :- R(x, 'a'), R(y, 'b')")
    rng = random.Random(3)
    renamed = _rename_existentials(with_constant, rng)
    assert canonical_key(with_constant) == canonical_key(renamed)
    assert canonical_key(with_constant) != canonical_key(
        parse_cq("Q() :- R(x, 'a'), R(y, 'a')"))
    assert automorphism_count(with_constant) == \
        reference_automorphism_count(with_constant)
    assert automorphism_count(parse_cq("Q() :- R(x, 'a'), R(y, 'a')")) == 2


def test_integer_labels_beyond_ten_existentials():
    """Serializations must use integer label order, not string order
    ("e10" < "e2"): twelve interchangeable existentials canonicalize
    invariantly."""
    atoms = [Atom("S", (Var(f"w{i:03d}"),)) for i in range(12)]
    query = _complete_ccq(atoms)
    rng = random.Random(8)
    renamed = _rename_existentials(query, rng)
    assert canonical_key(query) == canonical_key(renamed)
    assert canonical_rename(query) == canonical_rename(renamed)
    assert automorphism_count(query) == math.factorial(12)


# --- scale: past the factorial wall --------------------------------------

def test_twenty_existential_symmetric_ccq():
    atoms = [Atom("S", (Var(f"x{i:02d}"),)) for i in range(20)]
    query = _complete_ccq(atoms)
    form = compute_canonical_form(query)
    assert form.automorphisms == math.factorial(20)
    assert len(form.renaming) == 20
    renamed = canonical_rename(query)
    assert len(renamed.existential_vars()) == 20
    assert canonical_rename(renamed) == renamed


def test_twenty_existential_chain_ccq():
    atoms = [Atom("R", (Var(f"x{i:02d}"), Var(f"x{i + 1:02d}")))
             for i in range(20)]
    query = _complete_ccq(atoms)
    form = compute_canonical_form(query)
    assert form.automorphisms == 1
    rng = random.Random(20)
    assert canonical_key(query) == canonical_key(
        _rename_existentials(query, rng))


# --- exports (ISSUE 5 satellite 3) ---------------------------------------

def test_isomorphism_module_exports_complete():
    for name in ("canonical_rename", "endomorphisms", "is_automorphism",
                 "canonical_key", "are_isomorphic", "automorphism_count",
                 "isomorphism_classes"):
        assert name in isomorphism.__all__, name
        assert hasattr(isomorphism, name), name


# --- engine cache layer and snapshots ------------------------------------

def test_engine_routes_canonical_forms_through_its_lru():
    engine = ContainmentEngine()
    query = parse_cq("Q() :- R(u, v), R(v, u)")
    context = engine._context
    first = context.canonical_form(query)
    second = context.canonical_form(query)
    assert isinstance(first, CanonicalForm)
    assert first == second
    assert engine.stats.canon_calls == 1
    assert engine.stats.canon_hits == 1
    report = engine.cache_stats()["layers"]["canonical"]
    assert report["entries"] == 1
    assert report["hit_ratio"] == 0.5


#: A UCQ pair whose ``N[X]`` verdict goes through ``→֒∞`` (Ex. 5.7),
#: exercising the canonical layer inside a real decision.
_COUNTING_REQUEST = (
    ["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"],
    ["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"],
    "N[X]",
)


def test_counting_conditions_populate_the_canonical_layer():
    engine = ContainmentEngine()
    verdict = engine.decide(*_COUNTING_REQUEST)
    assert verdict.result is True
    assert verdict.method == "bi-count-infty"
    assert engine.stats.canon_calls > 0
    assert engine.cache_info()["canon_entries"] > 0


def test_canonical_layer_survives_snapshot_round_trip(tmp_path):
    cold = ContainmentEngine()
    cold_doc = cold.decide(*_COUNTING_REQUEST)
    assert cold.cache_info()["canon_entries"] > 0
    path = tmp_path / "canon.snap"
    save_snapshot(cold, path, include_verdicts=False)

    warm = ContainmentEngine()
    counts = load_snapshot(warm, path)
    assert counts["canonical"] == cold.cache_info()["canon_entries"]
    warm_doc = warm.decide(*_COUNTING_REQUEST)
    assert warm_doc.to_dict() == cold_doc.to_dict()
    assert warm.stats.canon_calls == 0
    assert warm.stats.canon_hits > 0


def test_isomorphism_classes_with_context_matches_plain():
    engine = ContainmentEngine()
    queries = [
        parse_cq("Q() :- R(u, v), u != v"),
        parse_cq("Q() :- R(a, b), a != b"),
        parse_cq("Q() :- R(u, u)"),
    ]
    plain = isomorphism_classes(queries)
    routed = isomorphism_classes(queries, context=engine._context)
    assert ({key: len(members) for key, members in plain.items()}
            == {key: len(members) for key, members in routed.items()})
    assert engine.stats.canon_calls > 0
