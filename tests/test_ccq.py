"""CQs with inequalities, complete CQs and complete descriptions.

Pins the paper's Ex. 4.6 description (five CCQs, exact shapes), the
Bell-number growth of ``⟨Q⟩``, and — the key semantic fact — that
``⟨Q⟩ ≡K Q`` over every semiring.
"""

from __future__ import annotations

import random

import pytest

from repro.data import Instance
from repro.queries import (CQ, Atom, CQWithInequalities, UCQ, Var,
                           complete_description, complete_description_ucq,
                           evaluate, parse_cq)
from repro.queries.ccq import set_partitions
from repro.queries.generators import random_cq
from repro.semirings import ALL_SEMIRINGS, B, N, NX, TPLUS, WHY


# --- CQWithInequalities -----------------------------------------------

def test_inequality_validation():
    x, y = Var("x"), Var("y")
    with pytest.raises(ValueError):
        CQWithInequalities((), (Atom("R", (x, y)),), ((x, x),))
    with pytest.raises(ValueError):
        CQWithInequalities((), (Atom("R", (x, y)),), ((x, Var("w")),))


def test_respects():
    x, y = Var("x"), Var("y")
    ccq = CQWithInequalities((), (Atom("R", (x, y)),), ((x, y),))
    assert ccq.respects({x: 1, y: 2})
    assert not ccq.respects({x: 1, y: 1})
    assert ccq.respects({x: 1})  # unconstrained half


def test_is_complete():
    q = parse_cq("Q() :- R(u, v), R(u, w), u != v, u != w, v != w")
    assert q.is_complete()
    partial = parse_cq("Q() :- R(u, v), R(u, w), u != v")
    assert not partial.is_complete()


def test_substitute_collision_rejected():
    x, y = Var("x"), Var("y")
    ccq = CQWithInequalities((), (Atom("R", (x, y)),), ((x, y),))
    with pytest.raises(ValueError):
        ccq.substitute({x: y})


def test_drop_inequalities():
    ccq = parse_cq("Q() :- R(u, v), u != v")
    assert ccq.drop_inequalities() == parse_cq("Q() :- R(u, v)")


def test_ccq_equality_includes_inequalities():
    with_ineq = parse_cq("Q() :- R(u, v), u != v")
    without = CQWithInequalities((), with_ineq.atoms, ())
    assert with_ineq != without


# --- set partitions ----------------------------------------------------

BELL = {0: 1, 1: 1, 2: 2, 3: 5, 4: 15, 5: 52}


@pytest.mark.parametrize("n,count", sorted(BELL.items()))
def test_set_partitions_bell_numbers(n, count):
    items = tuple(range(n))
    partitions = list(set_partitions(items))
    assert len(partitions) == count
    # each partition covers the items exactly once
    for partition in partitions:
        flat = [item for block in partition for item in block]
        assert sorted(flat) == list(items)


# --- complete descriptions (Ex. 4.6) -----------------------------------

def test_example_4_6_description():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    description = complete_description(q1)
    assert len(description) == 5  # Bell(3)
    shapes = sorted(
        (len(ccq.existential_vars()), len(ccq.atoms), len(set(ccq.atoms)))
        for ccq in description
    )
    # Q15: 1 var, 2 copies of R(u,u); Q12: 2 vars, duplicated atom;
    # Q13/Q14: 2 vars, distinct atoms; Q11: 3 vars, distinct atoms.
    assert shapes == [(1, 2, 1), (2, 2, 1), (2, 2, 2), (2, 2, 2), (3, 2, 2)]
    for ccq in description:
        assert ccq.is_complete()


def test_description_of_ccq_is_itself():
    ccq = parse_cq("Q() :- R(u, v), u != v")
    assert complete_description(ccq) == (ccq,)
    partial = parse_cq("Q() :- R(u, v), R(u, w), u != v")
    with pytest.raises(ValueError):
        complete_description(partial)


def test_description_ucq_is_disjoint_union():
    q1 = parse_cq("Q() :- R(u, v)")
    q2 = parse_cq("Q() :- R(u, u)")
    combined = complete_description_ucq((q1, q2))
    assert len(combined) == len(complete_description(q1)) + len(
        complete_description(q2))


def test_free_variables_not_partitioned():
    q = parse_cq("Q(x) :- R(x, y)")
    description = complete_description(q)
    assert len(description) == 1  # only the existential y is partitioned
    assert description[0].head == (Var("x"),)


# --- the equivalence ⟨Q⟩ ≡K Q ------------------------------------------

def _instances_for(semiring, rng):
    """A few small instances over domain {0, 1, 2}."""
    out = []
    for _ in range(4):
        relations = {"R": {}, "S": {}}
        for a in range(3):
            for b in range(3):
                if rng.random() < 0.5:
                    relations["R"][(a, b)] = semiring.sample(rng)
            if rng.random() < 0.5:
                relations["S"][(a,)] = semiring.sample(rng)
        out.append(Instance(semiring, relations))
    return out


@pytest.mark.parametrize("semiring", [B, N, NX, TPLUS, WHY],
                         ids=lambda s: s.name)
def test_complete_description_equivalent(semiring):
    rng = random.Random(77)
    for _ in range(6):
        query = random_cq(rng, max_atoms=3, max_vars=3, head_arity=1)
        description = UCQ(complete_description(query))
        for instance in _instances_for(semiring, rng):
            for target in [(0,), (1,), (2,)]:
                direct = evaluate(query, instance, target)
                split = evaluate(description, instance, target)
                assert semiring.eq(direct, split), (
                    query, instance, target, direct, split)
