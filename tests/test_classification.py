"""The classification of every registered semiring (Table 1 + Secs. 3–5).

This is the paper's central artifact pinned as assertions: which class
each named semiring belongs to, and therefore which decision procedure
answers containment for it.
"""

from __future__ import annotations

import math

import pytest

from repro.core import classify
from repro.semirings import (ACCESS, ALL_SEMIRINGS, B, BX, EVENTS, FUZZY,
                             LIN, LIN_X_N2, LUKASIEWICZ, N, N2X,
                             N2_SATURATING, N3X, N3_SATURATING, NX,
                             POSBOOL, RPLUS, SORP, TMINUS, TPLUS, TRIO,
                             VITERBI, WHY)


def test_chom_members():
    """B, PosBool[X], P[Ω], fuzzy, access control: distributive lattices."""
    for semiring in (B, POSBOOL, EVENTS, FUZZY, ACCESS):
        cls = classify(semiring)
        assert cls.c_hom, semiring.name
        assert cls.cq_exact_class() == "Chom"
        assert cls.ucq_exact_class() == "Chom"


def test_lineage_is_c1hcov():
    cls = classify(LIN)
    assert cls.s_hcov and not cls.s_in
    assert cls.cq_exact_class() == "Chcov"
    assert cls.ucq_exact_class() == "C1hcov"


def test_product_is_c2hcov():
    cls = classify(LIN_X_N2)
    assert cls.s_hcov
    assert cls.offset == 2
    assert not cls.s1
    assert cls.ucq_exact_class() == "C2hcov"


def test_sorp_is_cin():
    cls = classify(SORP)
    assert cls.s_in and not cls.s_hcov and not cls.s_sur
    assert cls.cq_exact_class() == "Cin"
    assert cls.ucq_exact_class() == "C1in"


def test_tropical_plus_has_no_hom_class():
    """T+ ∈ Sin \\ (Chom ∪ Cin): small-model only (Sec. 4.2, 4.6)."""
    cls = classify(TPLUS)
    assert cls.s_in
    assert cls.cq_exact_class() is None
    assert cls.ucq_exact_class() is None
    assert cls.small_model


def test_viterbi_lukasiewicz_like_tplus():
    for semiring in (VITERBI, LUKASIEWICZ):
        cls = classify(semiring)
        assert cls.s_in and cls.cq_exact_class() is None, semiring.name
    # Viterbi inherits T+'s decidable polynomial order via −log;
    # Łukasiewicz has no implemented order decision and stays bounded.
    assert classify(VITERBI).small_model
    assert not classify(LUKASIEWICZ).small_model


def test_why_is_c1sur():
    cls = classify(WHY)
    assert cls.s_sur and not cls.s_hcov and not cls.s_in
    assert cls.cq_exact_class() == "Csur"
    assert cls.ucq_exact_class() == "C1sur"


def test_trio_cq_only():
    """Trio ∉ N1sur (Sec. 5.3) and N∞sur ⊆ N1sur, so Trio has a CQ
    procedure but only bounds at the UCQ level."""
    cls = classify(TRIO)
    assert cls.s_sur
    assert math.isinf(cls.offset)
    assert cls.cq_exact_class() == "Csur"
    assert cls.ucq_exact_class() is None


def test_ssur_free_is_cinf_sur():
    """The free ordered Ssur semiring is the C∞sur representative."""
    from repro.semirings import SSUR
    cls = classify(SSUR)
    assert cls.s_sur and not cls.s1
    assert math.isinf(cls.offset)
    assert cls.cq_exact_class() == "Csur"
    assert cls.ucq_exact_class() == "C∞sur"


def test_tminus_is_ssur_only():
    """T− ∈ Ssur \\ Nsur: surjective sufficient, small model decides."""
    cls = classify(TMINUS)
    assert cls.s_sur and not cls.c_sur
    assert cls.cq_exact_class() is None
    assert cls.small_model


def test_provenance_polynomials_cbi_family():
    assert classify(NX).cq_exact_class() == "Cbi"
    assert classify(NX).ucq_exact_class() == "C∞bi"
    assert classify(BX).cq_exact_class() == "Cbi"
    assert classify(BX).ucq_exact_class() == "C1bi"
    assert classify(N2X).ucq_exact_class() == "Ckbi"
    assert classify(N2X).offset == 2
    assert classify(N3X).ucq_exact_class() == "Ckbi"
    assert classify(N3X).offset == 3


def test_bag_semantics_undecided():
    """N: in Ssur ∩ Nhcov ∩ N²hcov but no decidable class (open/undec.)."""
    cls = classify(N)
    assert cls.s_sur and not cls.c_sur
    assert cls.cq_exact_class() is None
    assert cls.ucq_exact_class() is None
    assert not cls.small_model


def test_saturating_bags_undecided():
    for semiring in (N2_SATURATING, N3_SATURATING):
        cls = classify(semiring)
        assert cls.ucq_exact_class() is None, semiring.name
    assert classify(N2_SATURATING).s_hcov
    assert not classify(N3_SATURATING).s_hcov


def test_rplus_plain_class():
    cls = classify(RPLUS)
    assert not (cls.s_hcov or cls.s_in or cls.s_sur)
    assert cls.cq_exact_class() is None


def test_shcov_members_have_offset_at_most_2():
    """Prop. 5.19: Shcov ⊆ S²."""
    for semiring in ALL_SEMIRINGS:
        cls = classify(semiring)
        if cls.s_hcov:
            assert cls.offset <= 2, semiring.name


def test_sin_members_are_add_idempotent():
    """Sin ⊆ S¹: 1-annihilation implies ⊕-idempotence."""
    for semiring in ALL_SEMIRINGS:
        cls = classify(semiring)
        if cls.s_in:
            assert cls.s1, semiring.name


def test_mul_idempotent_implies_semi_idempotent():
    """Shcov ⊆ Ssur (partial relaxation, Sec. 4.4)."""
    for semiring in ALL_SEMIRINGS:
        cls = classify(semiring)
        if cls.s_hcov:
            assert cls.s_sur, semiring.name


def test_cbi_equals_nin_intersect_nsur():
    """Remark at the end of Sec. 4.4."""
    for semiring in ALL_SEMIRINGS:
        props = semiring.properties
        assert classify(semiring).c_bi == (props.in_nin and props.in_nsur)


def test_memberships_report():
    memberships = classify(B).memberships()
    assert memberships["Chom"] is True
    assert memberships["C∞bi"] is False
    assert len(memberships) == 18


def test_classify_accepts_properties_record():
    cls = classify(B.properties, name="custom")
    assert cls.name == "custom"
    assert cls.c_hom
