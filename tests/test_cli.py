"""The command-line interface."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_semirings_listing(capsys):
    code, out, _ = run_cli(capsys, "semirings")
    assert code == 0
    assert "N[X]" in out
    assert "Chom" in out


def test_classify(capsys):
    code, out, _ = run_cli(capsys, "classify", "Ssur[X]")
    assert code == 0
    assert "✓ C∞sur" in out
    assert "offset = ∞" in out
    # Trio, in contrast, has no UCQ class (∉ N1sur ⊇ N∞sur):
    code, out, _ = run_cli(capsys, "classify", "Trio[X]")
    assert code == 0
    assert "· C∞sur" in out


def test_classify_unknown_semiring(capsys):
    code, _, err = run_cli(capsys, "classify", "K9")
    assert code == 1
    assert "error" in err


def test_contain_cq(capsys):
    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "B",
        "--q1", "Q() :- R(u, v), R(u, w)",
        "--q2", "Q() :- R(u, v), R(u, v)")
    assert code == 0
    assert "CONTAINED" in out
    assert "homomorphism" in out


def test_contain_ucq(capsys):
    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "T+",
        "--q1", "Q() :- R(v), S(v)",
        "--q2", "Q() :- R(v), R(v)", "--q2", "Q() :- S(v), S(v)")
    assert code == 0
    assert "CONTAINED" in out and "small-model" in out


def test_contain_undecided_exit_code(capsys):
    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "N",
        "--q1", "Q() :- R(u, v), R(u, w)",
        "--q2", "Q() :- R(u, v), R(u, v)")
    assert code == 2
    assert "UNDECIDED" in out
    assert "necessary conditions hold" in out


def test_contain_missing_queries(capsys):
    # argparse enforces --q1/--q2 (exit code 2, usage on stderr).
    code, _, err = run_cli(capsys, "contain", "--semiring", "B")
    assert code == 2
    assert "required" in err and "--q1" in err


def test_contain_json_flag(capsys):
    import json

    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "B", "--json",
        "--q1", "Q() :- R(u, v), R(u, w)",
        "--q2", "Q() :- R(u, v), R(u, v)")
    assert code == 0
    document = json.loads(out)
    assert document["result"] is True
    assert document["method"] == "homomorphism"
    assert document["answer"] == "CONTAINED"
    from repro.api import VerdictDocument
    assert VerdictDocument.from_dict(document).result is True


def test_contain_json_explain_combined(capsys):
    import json

    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "N[X]", "--json", "--explain",
        "--q1", "Q() :- R(u, v), R(u, w)",
        "--q2", "Q() :- R(u, v), R(u, v)")
    assert code == 0
    document = json.loads(out)
    assert document["result"] is False
    assert "summary" in document["explain"]
    assert "instance" in document["explain"]["witness"]


def test_contain_semiring_alias(capsys):
    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "boolean",
        "--q1", "Q() :- R(u, v)", "--q2", "Q() :- R(u, u)")
    assert code == 0
    assert "CONTAINED" in out


def test_unknown_semiring_suggestion(capsys):
    code, _, err = run_cli(capsys, "classify", "N[x")
    assert code == 1
    assert "did you mean" in err


def test_batch_subcommand(tmp_path, capsys):
    import json

    requests = tmp_path / "requests.jsonl"
    requests.write_text("\n".join([
        '{"semiring": "B", "q1": "Q() :- R(u, v), R(u, w)", '
        '"q2": "Q() :- R(u, v), R(u, v)", "id": "r1"}',
        "# a comment line",
        '{"semiring": "N", "q1": "Q() :- R(u, v), R(u, w)", '
        '"q2": "Q() :- R(u, v), R(u, v)", "id": "r2"}',
    ]) + "\n")
    code, out, _ = run_cli(capsys, "batch", "--input", str(requests))
    assert code == 0
    lines = [json.loads(line) for line in out.splitlines() if line]
    assert [doc["request_id"] for doc in lines] == ["r1", "r2"]
    assert lines[0]["result"] is True
    assert lines[1]["result"] is None and lines[1]["necessary"] is True


def test_batch_reports_bad_lines_in_band(tmp_path, capsys):
    import json

    requests = tmp_path / "requests.jsonl"
    requests.write_text("\n".join([
        "this is not json",
        '{"semiring": "B", "q1": "Q() :- R(x)", "q2": "Q() :- R(x)"}',
    ]) + "\n")
    code, out, _ = run_cli(capsys, "batch", "--input", str(requests))
    assert code == 1  # at least one error line
    lines = [json.loads(line) for line in out.splitlines() if line]
    assert "error" in lines[0] and lines[0]["line"] == 1
    assert lines[1]["result"] is True


def test_minimize(capsys):
    code, out, _ = run_cli(
        capsys, "minimize", "--semiring", "B", "Q(x) :- R(x, y), R(x, z)")
    assert code == 0
    assert "removed 1 atom(s)" in out


def test_evaluate_with_counts(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--semiring", "N",
        "--fact", "R('a', 'b') = 2", "--fact", "S('b') = 3",
        "Q(x) :- R(x, y), S(y)")
    assert code == 0
    assert "6" in out


def test_evaluate_with_provenance_tokens(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--semiring", "N[X]",
        "--fact", "R('a', 'b') = t1", "--fact", "S('b') = t2",
        "Q(x) :- R(x, y), S(y)")
    assert code == 0
    assert "t1·t2" in out


def test_evaluate_empty_answers(capsys):
    code, out, _ = run_cli(
        capsys, "evaluate", "--semiring", "N",
        "--fact", "R('a', 'b') = 1",
        "Q(x) :- S(x)")
    assert code == 0
    assert "no answers" in out


def test_evaluate_rejects_nonground_fact(capsys):
    code, _, err = run_cli(
        capsys, "evaluate", "--semiring", "N",
        "--fact", "R(x, 'b') = 1", "Q(x) :- R(x, y)")
    assert code == 1
    assert "ground" in err


def test_evaluate_rejects_bad_annotation(capsys):
    code, _, err = run_cli(
        capsys, "evaluate", "--semiring", "N",
        "--fact", "R('a') = banana", "Q(x) :- R(x)")
    assert code == 1


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "semirings"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "B[X]" in result.stdout


def test_falsify_all_axioms(capsys):
    code, out, _ = run_cli(capsys, "falsify", "N_2")
    assert code == 0
    assert "nhcov" in out and "VIOLATED" in out


def test_falsify_single_axiom_silent(capsys):
    code, out, _ = run_cli(capsys, "falsify", "T-", "--axiom", "nhcov")
    assert code == 0
    assert "no violation" in out


def test_falsify_unknown_axiom(capsys):
    code, _, err = run_cli(capsys, "falsify", "B", "--axiom", "bogus")
    assert code == 1
    assert "unknown axiom" in err


def test_falsify_requires_poly_order(capsys):
    code, _, err = run_cli(capsys, "falsify", "L")
    assert code == 1
    assert "polynomial order" in err


def test_contain_explain_flag(capsys):
    code, out, _ = run_cli(
        capsys, "contain", "--semiring", "N[X]", "--explain",
        "--q1", "Q() :- R(u, v), R(u, w)",
        "--q2", "Q() :- R(u, v), R(u, v)")
    assert code == 0
    assert "witness instance" in out


def test_evaluate_rejects_malformed_numeric_annotation(capsys):
    # "--5" used to slip past the digit guard and crash int() with a
    # bare "invalid literal" message.
    code, _, err = run_cli(
        capsys, "evaluate", "--semiring", "N",
        "--fact", "R('a') = --5", "Q(x) :- R(x)")
    assert code == 1
    assert "cannot parse annotation" in err


def test_evaluate_rejects_malformed_token_for_provenance(capsys):
    # Even with a var-capable semiring, "--5" is not a token name.
    code, _, err = run_cli(
        capsys, "evaluate", "--semiring", "N[X]",
        "--fact", "R('a') = --5", "Q(x) :- R(x)")
    assert code == 1
    assert "cannot parse annotation" in err


def test_evaluate_accepts_negative_annotation_where_lawful(capsys):
    # Plain integers (including signed forms) still parse.
    code, out, _ = run_cli(
        capsys, "evaluate", "--semiring", "N",
        "--fact", "R('a') = +2", "Q(x) :- R(x)")
    assert code == 0
    assert "2" in out


def test_batch_numeric_request_id(tmp_path, capsys):
    import json

    requests = tmp_path / "requests.jsonl"
    requests.write_text(
        '{"semiring": "B", "q1": "Q() :- R(x, y)", '
        '"q2": "Q() :- R(x, x)", "id": 7}\n')
    code, out, _ = run_cli(capsys, "batch", "--input", str(requests))
    assert code == 0
    (doc,) = [json.loads(line) for line in out.splitlines() if line]
    assert doc["request_id"] == "7"
