"""Prop. 3.1: positive semirings give containments satisfying (C1)–(C4).

The paper derives the positivity axioms *from* four requirements on the
containment relation.  Here we verify the requirements empirically —
at the semantic level, by evaluation over random instances, not through
the deciders (which test_cross_validation covers)."""

from __future__ import annotations

import random

import pytest

from repro.data import Instance
from repro.queries import UCQ, evaluate
from repro.queries.generators import random_cq, random_ucq
from repro.semirings import B, LIN, N, NX, TPLUS, TRIO, WHY

SEMIRINGS = [B, LIN, N, NX, TPLUS, TRIO, WHY]


def _instances(semiring, rng, count=3):
    out = []
    for _ in range(count):
        relations = {"R": {}, "S": {}}
        for a in range(2):
            for b in range(2):
                if rng.random() < 0.6:
                    relations["R"][(a, b)] = semiring.sample(rng)
            if rng.random() < 0.6:
                relations["S"][(a,)] = semiring.sample(rng)
        out.append(Instance(semiring, relations))
    return out


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_c1_semantic_preorder(semiring):
    """Pointwise ≼ between query values is reflexive and transitive
    because ≼K is a partial order."""
    rng = random.Random(21)
    queries = [random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
               for _ in range(4)]
    for instance in _instances(semiring, rng):
        values = [evaluate(query, instance, ()) for query in queries]
        for v in values:
            assert semiring.leq(v, v)
        for a in values:
            for b in values:
                for c in values:
                    if semiring.leq(a, b) and semiring.leq(b, c):
                        assert semiring.leq(a, c)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_c2_equivalence_iff_mutual_order(semiring):
    """Antisymmetry: equal evaluations iff ≼ holds both ways."""
    rng = random.Random(22)
    q1 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
    q2 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
    for instance in _instances(semiring, rng):
        a = evaluate(q1, instance, ())
        b = evaluate(q2, instance, ())
        both = semiring.leq(a, b) and semiring.leq(b, a)
        assert both == semiring.eq(a, b)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_c3_empty_union_is_bottom(semiring):
    """∅ evaluates to 0 and 0 ≼ everything."""
    rng = random.Random(23)
    query = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
    for instance in _instances(semiring, rng):
        empty_value = evaluate(UCQ(()), instance, ())
        assert semiring.eq(empty_value, semiring.zero)
        assert semiring.leq(empty_value, evaluate(query, instance, ()))


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_c4_union_compatible(semiring):
    """a ≼ b implies a ⊕ c ≼ b ⊕ c, instantiated with query values:
    whenever Q1's value is below Q2's, adding Q3 preserves it."""
    rng = random.Random(24)
    q1 = random_ucq(rng, max_members=1, max_atoms=2, max_vars=2)
    q2 = random_ucq(rng, max_members=1, max_atoms=2, max_vars=2)
    q3 = random_ucq(rng, max_members=1, max_atoms=2, max_vars=2)
    for instance in _instances(semiring, rng):
        a = evaluate(q1, instance, ())
        b = evaluate(q2, instance, ())
        if semiring.leq(a, b):
            left = evaluate(q1.union(q3), instance, ())
            right = evaluate(q2.union(q3), instance, ())
            assert semiring.leq(left, right)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: s.name)
def test_union_evaluation_is_sum(semiring):
    """Q1 ∪ Q3 evaluates to Q1 ⊕ Q3 — the identity behind (C4)."""
    rng = random.Random(25)
    q1 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
    q3 = random_ucq(rng, max_members=1, max_atoms=2, max_vars=2)
    for instance in _instances(semiring, rng):
        assert semiring.eq(
            evaluate(q1.union(q3), instance, ()),
            semiring.add(evaluate(q1, instance, ()),
                         evaluate(q3, instance, ())))
