"""CQ containment decision procedures (Table 1, left column).

One block per class, each pinning the paper's characterization on
hand-picked query pairs, plus the universal facts (homomorphism
necessity, bijective sufficiency) and the honest bounds for bag
semantics.
"""

from __future__ import annotations

import pytest

from repro.core import Undecided, decide_cq_containment, k_equivalent
from repro.queries import parse_cq, parse_ucq
from repro.semirings import (B, LIN, N, NX, POSBOOL, RPLUS, SORP, TMINUS,
                             TPLUS, TRIO, WHY)

Q_COLLAPSE = parse_cq("Q() :- R(u, v), R(u, w)")   # Ex. 4.6 Q1
Q_DOUBLE = parse_cq("Q() :- R(u, v), R(u, v)")     # Ex. 4.6 Q2
Q_SINGLE = parse_cq("Q() :- R(u, v)")
Q_RS = parse_cq("Q() :- R(u, v), S(u)")


# --- universal facts -----------------------------------------------------

@pytest.mark.parametrize("semiring", [B, LIN, SORP, WHY, TRIO, NX, TPLUS,
                                      TMINUS, N, RPLUS],
                         ids=lambda s: s.name)
def test_no_homomorphism_refutes_everywhere(semiring):
    """Sec. 3.3: a homomorphism Q2 → Q1 is necessary over every K."""
    q1 = parse_cq("Q() :- R(u, v)")
    q2 = parse_cq("Q() :- R(u, u)")   # strictly more constrained
    verdict = decide_cq_containment(q1, q2, semiring)
    assert verdict.result is False


@pytest.mark.parametrize("semiring", [B, LIN, SORP, WHY, TRIO, NX, TPLUS,
                                      TMINUS, N, RPLUS],
                         ids=lambda s: s.name)
def test_identity_containment_everywhere(semiring):
    verdict = decide_cq_containment(Q_DOUBLE, Q_DOUBLE, semiring)
    assert verdict.result is True


def test_reflexivity_requires_equal_arity():
    with pytest.raises(ValueError):
        decide_cq_containment(parse_cq("Q(x) :- R(x, x)"),
                              parse_cq("Q() :- R(u, u)"), B)


def test_cq_entry_rejects_ucqs():
    u = parse_ucq(["Q() :- R(x, x)"])
    with pytest.raises(TypeError):
        decide_cq_containment(u, u, B)


# --- Chom (Thm. 3.3): homomorphism ---------------------------------------

def test_chom_set_semantics():
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, B)
    assert verdict.result is True
    assert verdict.method == "homomorphism"
    assert verdict.certificate is not None


def test_chom_classical_minimization_pair():
    """R(u,v),R(u,w) ≡B R(u,v): the classical redundancy."""
    assert decide_cq_containment(Q_COLLAPSE, Q_SINGLE, B).result is True
    assert decide_cq_containment(Q_SINGLE, Q_COLLAPSE, B).result is True
    assert k_equivalent(Q_SINGLE, Q_COLLAPSE, POSBOOL).result is True


# --- Chcov (Thm. 4.3): homomorphic covering -------------------------------

def test_chcov_lineage():
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, LIN)
    assert verdict.result is True
    assert verdict.method == "homomorphic-covering"


def test_chcov_refutes_uncovered():
    verdict = decide_cq_containment(Q_RS, Q_SINGLE, LIN)
    assert verdict.result is False   # S-atom never covered
    # but under B it holds (hom exists):
    assert decide_cq_containment(Q_RS, Q_SINGLE, B).result is True


# --- Cin (Thm. 4.9): injective homomorphism -------------------------------

def test_cin_sorp():
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, SORP)
    assert verdict.result is False
    assert verdict.method == "injective-homomorphism"
    # single-atom query injects:
    verdict = decide_cq_containment(Q_COLLAPSE, Q_SINGLE, SORP)
    assert verdict.result is True


def test_cin_differs_from_tplus():
    """Ex. 4.6: containment holds over T+ but fails over Sorp[X] —
    Sin members genuinely differ once outside Chom."""
    assert decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, TPLUS).result is True
    assert decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, SORP).result is False


# --- Csur (Thm. 4.14): surjective homomorphism ----------------------------

def test_csur_why():
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, WHY)
    assert verdict.result is False
    assert verdict.method == "surjective-homomorphism"
    verdict = decide_cq_containment(Q_SINGLE, Q_DOUBLE, WHY)
    assert verdict.result is True   # both copies map onto the one atom


def test_csur_trio_agrees_with_why_on_cqs():
    for q1, q2 in [(Q_COLLAPSE, Q_DOUBLE), (Q_SINGLE, Q_DOUBLE),
                   (Q_COLLAPSE, Q_SINGLE), (Q_RS, Q_SINGLE)]:
        assert (decide_cq_containment(q1, q2, WHY).result
                == decide_cq_containment(q1, q2, TRIO).result)


# --- Cbi (Thm. 4.10): bijective homomorphism ------------------------------

def test_cbi_provenance_polynomials():
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, NX)
    assert verdict.result is False
    assert verdict.method == "bijective-homomorphism"
    # NX containment needs exact multiset match:
    assert decide_cq_containment(Q_SINGLE, Q_DOUBLE, NX).result is False
    assert decide_cq_containment(Q_DOUBLE, Q_DOUBLE, NX).result is True


def test_cbi_isomorphic_queries_only():
    q1 = parse_cq("Q() :- R(x, y), R(y, z)")
    q2 = parse_cq("Q() :- R(a, b), R(b, c)")
    assert decide_cq_containment(q1, q2, NX).result is True


# --- small model (Thm. 4.17): T+, T− ---------------------------------------

def test_small_model_tropical_example():
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, TPLUS)
    assert verdict.result is True
    assert verdict.method == "small-model"


def test_small_model_tminus():
    """Under max-plus 2·max(r) equals max over pairs of r+r', so the
    Ex. 4.6 pair is contained although no surjective hom exists —
    the small model decides where Ssur-sufficiency is silent."""
    verdict = decide_cq_containment(Q_COLLAPSE, Q_DOUBLE, TMINUS)
    assert verdict.result is True
    assert verdict.method == "small-model"
    # The reverse direction genuinely fails (2·max ≤ max is false):
    verdict = decide_cq_containment(Q_DOUBLE, Q_SINGLE, TMINUS)
    assert verdict.result is False


# --- bag semantics: honest bounds ------------------------------------------

def test_bag_sufficient_condition_decides():
    """Surjective homomorphism is sufficient for N (Sec. 4.4)."""
    verdict = decide_cq_containment(Q_SINGLE, Q_DOUBLE, N)
    assert verdict.result is True
    assert verdict.method == "sufficient-condition"


def test_bag_necessary_condition_refutes():
    """Covering is necessary for N (Sec. 4.1): the S-atom kills it."""
    verdict = decide_cq_containment(Q_RS, Q_SINGLE, N)
    assert verdict.result is False


def test_bag_gap_is_undecided():
    """Between the bounds the verdict must stay honest: Q1 ⊆N Q2 with a
    covering but no surjective hom — the open problem territory."""
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(x, y), R(x, y)")
    verdict = decide_cq_containment(q1, q2, N)
    assert verdict.result is None
    assert verdict.method == "bounds-only"
    with pytest.raises(Undecided):
        verdict.unwrap()


def test_rplus_undecided_gap():
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(x, y), R(x, y)")
    verdict = decide_cq_containment(q1, q2, RPLUS)
    assert verdict.result is None


# --- k_equivalent -----------------------------------------------------------

def test_k_equivalent_directions():
    assert k_equivalent(Q_COLLAPSE, Q_SINGLE, B).result is True
    assert k_equivalent(Q_COLLAPSE, Q_SINGLE, NX).result is False
    assert k_equivalent(Q_COLLAPSE, Q_DOUBLE, TPLUS).result is True
