"""UCQ containment decision procedures (Table 1, right column).

Each block reproduces one of the paper's Sec. 5 results, including all
worked examples (5.4, 5.7 with continuations, 5.20) and the honest
undecidability frontier for bag semantics.
"""

from __future__ import annotations

import pytest

from repro.core import decide_ucq_containment
from repro.queries import UCQ, parse_cq, parse_ucq
from repro.semirings import (B, BX, LIN, LIN_X_N2, N, N2X, N3X,
                             N2_SATURATING, NX, SORP, TPLUS, TRIO, WHY)


# --- requirement (C3): the empty union ------------------------------------

@pytest.mark.parametrize("semiring", [B, LIN, NX, N, TPLUS],
                         ids=lambda s: s.name)
def test_empty_union_contained_everywhere(semiring):
    q2 = parse_ucq(["Q() :- R(x, x)"])
    verdict = decide_ucq_containment(UCQ(()), q2, semiring)
    assert verdict.result is True
    assert verdict.method == "empty-union"


def test_nonempty_not_contained_in_empty():
    q1 = parse_ucq(["Q() :- R(x, x)"])
    verdict = decide_ucq_containment(q1, UCQ(()), B)
    assert verdict.result is False


# --- Chom (Thm. 5.2): local homomorphism check -----------------------------

def test_chom_local_check():
    q1 = parse_ucq(["Q() :- R(x, x)", "Q() :- R(x, y), R(y, x)"])
    q2 = parse_ucq(["Q() :- R(u, v)"])
    verdict = decide_ucq_containment(q1, q2, B)
    assert verdict.result is True
    assert verdict.method == "local-homomorphism"
    # reverse fails: R(u,v) has no hom from either member
    assert decide_ucq_containment(q2, q1, B).result is False


# --- C1in (Thm. 5.6): local injective --------------------------------------

def test_c1in_sorp():
    q1 = parse_ucq(["Q() :- R(x, y), S(y)"])
    q2 = parse_ucq(["Q() :- R(u, v)", "Q() :- S(w), S(w)"])
    verdict = decide_ucq_containment(q1, q2, SORP)
    assert verdict.result is True
    assert verdict.method == "local-injective"
    q2_bad = parse_ucq(["Q() :- R(u, v), R(u, v)"])
    assert decide_ucq_containment(q1, q2_bad, SORP).result is False


# --- Example 5.4: T+ needs non-local reasoning ------------------------------

def test_example_5_4():
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v), R(v)", "Q() :- S(v), S(v)"])
    verdict = decide_ucq_containment(q1, q2, TPLUS)
    assert verdict.result is True
    assert verdict.method == "small-model"
    # …although no member alone contains Q11 (shown in the CQ tests) and
    # the local injective condition fails:
    from repro.homomorphisms import HomKind, local_condition
    assert not local_condition(q2, q1, HomKind.INJECTIVE)


# --- C1hcov (Thm. 5.24, k = 1): Ex. 5.20 ------------------------------------

def test_example_5_20_lineage():
    q1 = parse_ucq(["Q() :- R(v), S(v)"])
    q2 = parse_ucq(["Q() :- R(v)", "Q() :- S(v)"])
    verdict = decide_ucq_containment(q1, q2, LIN)
    assert verdict.result is True
    assert verdict.method == "union-covering"
    assert decide_ucq_containment(q2, q1, LIN).result is False


# --- C2hcov (Thm. 5.24, k = 2): the product semiring ------------------------

def test_c2hcov_product():
    q1 = parse_ucq(["Q() :- S(v)", "Q() :- S(v), S(v)"])
    q2_two = parse_ucq(["Q() :- S(v)", "Q() :- S(v)"])
    q2_one = parse_ucq(["Q() :- S(v)"])
    verdict = decide_ucq_containment(q1, q2_two, LIN_X_N2)
    assert verdict.result is True
    assert verdict.method == "union-covering-2"
    assert decide_ucq_containment(q1, q2_one, LIN_X_N2).result is False


def test_n2_saturating_stays_honest():
    """Bare N₂ has no necessity class: sufficient ⇉2 may decide True,
    but a failing ⇉2 must NOT be reported as False."""
    q1 = parse_ucq(["Q() :- R(v1, v0), S(v1)"])
    q2 = parse_ucq(["Q() :- R(v0, v1)", "Q() :- R(v0, v1)"])
    verdict = decide_ucq_containment(q1, q2, N2_SATURATING)
    assert verdict.result is None  # genuinely contained, but unprovable here


# --- C1sur (Cor. 5.18): Why[X] ----------------------------------------------

def test_c1sur_why():
    q1 = parse_ucq(["Q() :- R(x, y)"])
    q2 = parse_ucq(["Q() :- R(u, v), R(u, v)", "Q() :- S(w)"])
    verdict = decide_ucq_containment(q1, q2, WHY)
    assert verdict.result is True
    assert verdict.method == "local-surjective"
    q1_two = parse_ucq(["Q() :- R(x, y), R(x, z)"])
    q2_collapsing = parse_ucq(["Q() :- R(u, v), R(u, v)"])
    assert decide_ucq_containment(q1_two, q2_collapsing, WHY).result is False


# --- C∞sur (Thm. 5.17): Trio[X] and the Hall matching ------------------------

def test_cinf_sur_ssur_counts_copies():
    from repro.semirings import SSUR
    q = parse_cq("Q() :- R(u, u)")
    q1 = UCQ((q, q))
    verdict = decide_ucq_containment(q1, UCQ((q, q)), SSUR)
    assert verdict.result is True
    assert verdict.method == "sur-infty-matching"
    # one copy cannot uniquely serve two:
    assert decide_ucq_containment(q1, UCQ((q,)), SSUR).result is False
    # Why[X] (offset 1) differs: one copy suffices there.
    assert decide_ucq_containment(q1, UCQ((q,)), WHY).result is True


def test_trio_ucq_bounds_only():
    """Trio ∉ N1sur/N∞sur: the ⊕-side is honest about the gap — a
    sufficient ։∞ still certifies, but failures stay undecided unless a
    necessary condition refutes."""
    q = parse_cq("Q() :- R(u, u)")
    q1 = UCQ((q, q))
    certified = decide_ucq_containment(q1, UCQ((q, q)), TRIO)
    assert certified.result is True
    assert certified.method == "sufficient-condition"
    gap = decide_ucq_containment(q1, UCQ((q,)), TRIO)
    assert gap.result in (None, False)  # never a bare guess of True


# --- C1bi / Ckbi / C∞bi (Thm. 5.13, Prop. 5.9): Ex. 5.7 ----------------------

EX57_Q1 = ["Q() :- R(u, v), R(u, u)", "Q() :- R(u, v), R(v, v)"]
EX57_Q2 = ["Q() :- R(u, v), R(w, w)", "Q() :- R(u, u), R(u, u)"]


def test_example_5_7_nx():
    q1, q2 = parse_ucq(EX57_Q1), parse_ucq(EX57_Q2)
    verdict = decide_ucq_containment(q1, q2, NX)
    assert verdict.result is True
    assert verdict.method == "bi-count-infty"


def test_example_5_7_continued_offsets():
    q1_plus = parse_ucq(EX57_Q1).with_member(
        parse_cq("Q() :- R(u, u), R(u, u)"))
    q2 = parse_ucq(EX57_Q2)
    assert decide_ucq_containment(q1_plus, q2, NX).result is False
    verdict = decide_ucq_containment(q1_plus, q2, N2X)
    assert verdict.result is True
    assert verdict.method == "bi-count-k"
    assert decide_ucq_containment(q1_plus, q2, N3X).result is False


def test_c1bi_bx_local_bijective():
    q = parse_cq("Q() :- R(u, u)")
    q1 = UCQ((q, q))
    verdict = decide_ucq_containment(q1, UCQ((q,)), BX)
    assert verdict.result is True
    assert verdict.method == "local-bijective"
    assert decide_ucq_containment(q1, UCQ((q,)), NX).result is False


# --- bag semantics: the undecidability frontier ------------------------------

def test_bag_ucq_sufficient_cor_5_16():
    """⟨Q2⟩ ։∞ ⟨Q1⟩ implies Q1 ⊆N Q2 (Cor. 5.16)."""
    q = parse_cq("Q() :- R(u, u)")
    verdict = decide_ucq_containment(UCQ((q,)), UCQ((q, q)), N)
    assert verdict.result is True
    assert verdict.method == "sufficient-condition"


def test_bag_ucq_necessary_cor_5_23():
    """failing ⟨Q2⟩ ⇉2 ⟨Q1⟩ refutes Q1 ⊆N Q2 (Cor. 5.23)."""
    q = parse_cq("Q() :- R(u, u)")
    verdict = decide_ucq_containment(UCQ((q, q)), UCQ((q,)), N)
    assert verdict.result is False
    assert verdict.method == "necessary-condition"


def test_bag_ucq_gap_undecided():
    q1 = parse_ucq(["Q() :- R(u, v), R(u, w)"])
    q2 = parse_ucq(["Q() :- R(x, y), R(x, y)"])
    verdict = decide_ucq_containment(q1, q2, N)
    assert verdict.result is None
    assert verdict.sufficient is False
    assert verdict.necessary is True


# --- Prop. 5.1: locality characterizes ⊕-idempotence --------------------------

def test_prop_5_1_locality_holds_in_s1():
    """For ⊕-idempotent semirings, member-wise containment lifts."""
    from repro.semirings import LIN, SORP
    q = parse_cq("Q() :- R(u, u)")
    bigger = parse_cq("Q() :- R(u, v)")
    q1 = UCQ((q, q))
    q2 = UCQ((bigger, bigger))
    for semiring in (B, LIN, SORP, TPLUS):
        assert decide_ucq_containment(q1, q2, semiring).result is True


def test_prop_5_1_locality_fails_outside_s1():
    """Over N[X] each member of {Q, Q} is contained in {Q}, yet the
    union is not — the 'only if' side of Prop. 5.1."""
    q = parse_cq("Q() :- R(u, u)")
    q1 = UCQ((q, q))
    q2 = UCQ((q,))
    from repro.core import decide_cq_containment
    assert all(
        decide_cq_containment(member, q, NX).result for member in q1)
    assert decide_ucq_containment(q1, q2, NX).result is False
