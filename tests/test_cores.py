"""CQ cores and their relationship to semiring-aware minimization."""

from __future__ import annotations

import random

import pytest

from repro.core import k_equivalent
from repro.homomorphisms import are_isomorphic
from repro.homomorphisms.cores import core_of, is_core, retracts
from repro.optimize import minimize_cq
from repro.queries import parse_cq
from repro.queries.generators import random_cq
from repro.semirings import B, NX


def test_collapse_pair_core():
    q = parse_cq("Q() :- R(u, v), R(u, w)")
    core = core_of(q)
    assert len(core.atoms) == 1
    assert is_core(core)


def test_path_into_loop_core():
    """A path alongside a loop folds onto the loop."""
    q = parse_cq("Q() :- E(x, y), E(y, z), E(w, w)")
    core = core_of(q)
    assert core == parse_cq("Q() :- E(w, w)")


def test_rigid_query_is_its_own_core():
    q = parse_cq("Q() :- E(x, y), F(y, x)")
    assert core_of(q) == q
    assert is_core(q)


def test_head_variables_pin_the_core():
    """Free variables cannot be folded away — but existentials can fold
    onto them: z ↦ y retracts E(x,z) onto E(x,y)."""
    q = parse_cq("Q(x, y) :- E(x, y), E(x, z)")
    core = core_of(q)
    assert core == parse_cq("Q(x, y) :- E(x, y)")
    assert k_equivalent(q, core, B).result is True
    # whereas a head variable pair cannot fold onto each other:
    rigid = parse_cq("Q(x, y) :- E(x, y), E(y, x)")
    assert core_of(rigid) == rigid


def test_duplicates_removed():
    q = parse_cq("Q() :- R(u, u), R(u, u)")
    assert core_of(q) == parse_cq("Q() :- R(u, u)")
    assert not is_core(q)


def test_retracts_are_proper():
    q = parse_cq("Q() :- R(u, v), R(u, w)")
    for retract in retracts(q):
        assert len(set(retract.atoms)) < len(set(q.atoms))


@pytest.mark.parametrize("seed", range(10))
def test_core_equivalent_under_b(seed):
    """The core is B-equivalent to the original query."""
    query = random_cq(random.Random(seed), max_atoms=3, max_vars=3,
                      head_arity=1)
    core = core_of(query)
    assert k_equivalent(query, core, B).result is True


@pytest.mark.parametrize("seed", range(10))
def test_core_matches_greedy_b_minimization(seed):
    """Greedy equivalence-preserving deletion reaches a query of the
    same size as the core (both are minimum under B)."""
    query = random_cq(random.Random(100 + seed), max_atoms=3, max_vars=3)
    core = core_of(query)
    greedy = minimize_cq(query, B).query
    assert len(set(greedy.atoms)) == len(core.atoms), (query, core, greedy)


def test_core_unsound_over_provenance():
    """The paper's warning: coring breaks N[X]-equivalence."""
    q = parse_cq("Q() :- R(u, v), R(u, w)")
    core = core_of(q)
    assert k_equivalent(q, core, NX).result is False
