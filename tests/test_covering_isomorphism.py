"""Homomorphic covering (Sec. 4.1) and CCQ isomorphism machinery."""

from __future__ import annotations

import random

import pytest

from repro.homomorphisms import (are_isomorphic, automorphism_count,
                                 canonical_key, covered_atoms, covers,
                                 isomorphism_classes)
from repro.queries import parse_cq
from repro.queries.generators import random_cq


# --- covering -----------------------------------------------------------

def test_covering_example_4_6():
    """R(u,v),R(u,v) ⇉ R(u,v),R(u,w): two homs cover both atoms."""
    q1 = parse_cq("Q() :- R(u, v), R(u, w)")
    q2 = parse_cq("Q() :- R(u, v), R(u, v)")
    assert covers(q2, q1)


def test_covering_fails_on_unreachable_atom():
    """A relation absent from the source can never be covered."""
    target = parse_cq("Q() :- R(x, y), S(x)")
    source = parse_cq("Q() :- R(u, v)")
    assert not covers(source, target)
    assert covered_atoms(source, target) == frozenset(
        {parse_cq("Q() :- R(x, y), S(x)").atoms[0]})


def test_covering_not_implied_by_single_hom():
    """A hom exists but covers only part of the target."""
    target = parse_cq("Q() :- E(x, y), E(y, z)")
    source = parse_cq("Q() :- E(u, v)")
    assert covers(source, target)   # two homs cover both atoms
    source_rigid = parse_cq("Q() :- E(u, u)")
    assert not covers(source_rigid, target)


def test_surjective_implies_covering():
    rng = random.Random(5)
    from repro.homomorphisms import HomKind, has_homomorphism
    for _ in range(15):
        q1 = random_cq(rng, max_atoms=3, max_vars=3)
        q2 = random_cq(rng, max_atoms=3, max_vars=3)
        if has_homomorphism(q2, q1, HomKind.SURJECTIVE):
            assert covers(q2, q1), (q1, q2)


def test_covering_judges_atom_values_not_occurrences():
    target = parse_cq("Q() :- R(x, x), R(x, x)")
    source = parse_cq("Q() :- R(u, u)")
    assert covers(source, target)


# --- isomorphism ---------------------------------------------------------

def test_isomorphic_renaming():
    a = parse_cq("Q() :- R(u, v), u != v")
    b = parse_cq("Q() :- R(s, t), s != t")
    assert are_isomorphic(a, b)
    assert canonical_key(a) == canonical_key(b)


def test_not_isomorphic_different_structure():
    a = parse_cq("Q() :- R(u, v), u != v")
    b = parse_cq("Q() :- R(u, u)")
    assert not are_isomorphic(a, b)


def test_isomorphism_respects_head():
    a = parse_cq("Q(x) :- R(x, y)")
    b = parse_cq("Q(x) :- R(y, x)")
    assert not are_isomorphic(a, b)
    c = parse_cq("Q(z) :- R(z, w)")
    assert are_isomorphic(a, c)


def test_isomorphism_distinguishes_cq_from_ccq():
    plain = parse_cq("Q() :- R(u, v)")
    ccq = parse_cq("Q() :- R(u, v), u != v")
    assert not are_isomorphic(plain, ccq)


def test_isomorphism_random_renaming_invariance():
    rng = random.Random(9)
    for _ in range(20):
        query = random_cq(rng, max_atoms=3, max_vars=3, head_arity=1)
        renamed = query.rename_apart("_r")
        assert are_isomorphic(query, renamed)


# --- automorphisms -------------------------------------------------------

def test_automorphism_counts():
    assert automorphism_count(parse_cq("Q() :- R(u, v)")) == 1
    # swapping u,v maps {R(u,v),R(v,u)} to itself
    assert automorphism_count(parse_cq("Q() :- R(u, v), R(v, u)")) == 2
    # a 3-clique of undirected-ish edges: all 3! permutations fix it
    triangle = parse_cq(
        "Q() :- E(a, b), E(b, a), E(b, c), E(c, b), E(a, c), E(c, a)")
    assert automorphism_count(triangle) == 6
    # head variables are fixed: no swap allowed
    assert automorphism_count(parse_cq("Q(u) :- R(u, v), R(v, u)")) == 1


def test_automorphism_single_variable():
    assert automorphism_count(parse_cq("Q() :- R(u, u), R(u, u)")) == 1


# --- isomorphism classes -------------------------------------------------

def test_isomorphism_classes_grouping():
    queries = [
        parse_cq("Q() :- R(u, v), u != v"),
        parse_cq("Q() :- R(a, b), a != b"),
        parse_cq("Q() :- R(u, u)"),
    ]
    classes = isomorphism_classes(queries)
    sizes = sorted(len(members) for members in classes.values())
    assert sizes == [1, 2]
