"""Tests for the cross-validation oracle mode and schema hardening."""

from __future__ import annotations

import random

import pytest

from repro.oracle import (combined_schema, cross_validate,
                          hunt_counterexample, random_annotated_instance)
from repro.oracle.brute_force import find_counterexample
from repro.queries.parser import parse_cq
from repro.queries.ucq import UCQ, as_ucq
from repro.semirings import B, N, TPLUS, WHY

PROJ = parse_cq("Q(x) :- R(x, y)")
DIAG = parse_cq("Q(x) :- R(x, x)")


def test_cross_validate_agrees_numeric_and_symbolic():
    query = parse_cq("Q(x, y) :- R(x, z), R(z, y)")
    for semiring in (N, TPLUS, WHY):
        report = cross_validate(query, semiring, trials=10)
        assert report.agreed, report.mismatches
        assert report.trials == 10
        assert report.facts > 0


def test_cross_validate_is_seeded():
    query = parse_cq("Q(x) :- R(x, y)")
    a = cross_validate(query, N, trials=5, seed=99)
    b = cross_validate(query, N, trials=5, seed=99)
    assert a.facts == b.facts


def test_hunt_finds_witness_for_non_containment():
    # Q(x):-R(x,y) ⊄ Q(x):-R(x,x) in any naturally ordered semiring:
    # a single off-diagonal fact gives lhs > 0 = rhs.
    witness = hunt_counterexample(PROJ, DIAG, N, rounds=5,
                                  domain_size=4, facts_per_relation=12)
    assert witness is not None
    assert witness.source == "columnar-hunt"
    # The witness is re-verified tuple-at-a-time before being returned,
    # so its recorded values must genuinely violate the order.
    assert not N.leq(witness.lhs, witness.rhs)


def test_hunt_respects_containment():
    # Q(x):-R(x,x) ⊆ Q(x):-R(x,y) holds over B (hom exists).
    assert hunt_counterexample(DIAG, PROJ, B, rounds=3,
                               domain_size=3,
                               facts_per_relation=10) is None


def test_hunt_empty_lhs():
    empty = UCQ(())
    assert hunt_counterexample(empty, PROJ, N, rounds=1) is None


def test_hunt_agrees_with_brute_force_direction():
    """When brute force refutes, the scaled hunt refutes too."""
    brute = find_counterexample(PROJ, DIAG, N)
    assert brute is not None
    hunted = hunt_counterexample(PROJ, DIAG, N, rounds=5,
                                 domain_size=3, facts_per_relation=6)
    assert hunted is not None


# -- combined_schema (regression for the oracle schema derivation) ------


def test_combined_schema_merges_both_queries():
    q1 = as_ucq(parse_cq("Q(x) :- R(x, y)"))
    q2 = as_ucq(parse_cq("Q(x) :- R(x, y), S(y, y, x)"))
    schema = combined_schema(q1, q2)
    assert schema == {"R": 2, "S": 3}
    # The regression scenario: random instances must populate
    # relations that only Q2 mentions, otherwise Q2 always evaluates
    # to zero and refutation search is vacuous.
    rng = random.Random(3)
    instance = random_annotated_instance(schema, N, rng,
                                         facts_per_relation=6)
    assert "S" in instance.relations() or instance.fact_count() == 0


def test_combined_schema_rejects_arity_conflicts():
    q1 = as_ucq(parse_cq("Q(x) :- R(x, y)"))
    q2 = as_ucq(parse_cq("Q(x) :- R(x, y, z)"))
    with pytest.raises(ValueError, match="arity"):
        combined_schema(q1, q2)


def test_random_instances_cover_q2_only_relations():
    """find_counterexample must exercise Q2-only relations.

    Q1's schema alone would leave T unpopulated, making
    ``Q(x):-R(x,y)`` look contained in ``Q(x):-R(x,y),T(x)`` refutable
    only through the merged schema.
    """
    q1 = parse_cq("Q(x) :- R(x, y)")
    q2 = parse_cq("Q(x) :- R(x, y), T(x)")
    witness = find_counterexample(q1, q2, B)
    assert witness is not None
