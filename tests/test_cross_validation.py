"""The oracle surface's single home: cross-validation of every
decision procedure against the semantic oracle, plus the oracle's own
API (``cross_validate``, ``hunt_counterexample``, ``combined_schema``).

Part 1 (randomized cross-validation) is the reproduction's strongest
evidence: for each semiring with an exact Table-1 characterization,
the syntactic decision must never be refuted semantically (soundness),
and every refusal must be witnessed by a concrete annotated instance
(completeness — the witnesses live on canonical instances, as the
paper's proofs construct them).  Part 2 exercises the oracle entry
points themselves: the numeric-vs-symbolic agreement report, the
columnar counterexample hunt, and the merged-schema derivation that
keeps refutation search non-vacuous.  (Formerly split across
``test_cross_validation.py`` and ``test_cross_validate.py``.)
"""

from __future__ import annotations

import random

import pytest

from repro.core import classify, decide_cq_containment, decide_ucq_containment
from repro.oracle import (combined_schema, cross_validate,
                          find_counterexample, hunt_counterexample,
                          random_annotated_instance)
from repro.queries.generators import random_cq, random_ucq
from repro.queries.parser import parse_cq
from repro.queries.ucq import UCQ, as_ucq
from repro.semirings import (B, BX, LIN, LIN_X_N2, N, N2X, N3X, NX, POSBOOL,
                             SORP, SSUR, TMINUS, TPLUS, TRIO, WHY)

# -- Part 1: randomized decision-vs-oracle cross-validation -------------

CQ_SEMIRINGS = [B, POSBOOL, LIN, SORP, WHY, TRIO, SSUR, NX, BX, N2X, TPLUS,
                TMINUS]
UCQ_SEMIRINGS = [B, LIN, LIN_X_N2, SORP, WHY, SSUR, NX, BX, N2X, N3X, TPLUS]


def _cq_problems(seed: int, count: int):
    rng = random.Random(seed)
    return [
        (random_cq(rng, max_atoms=3, max_vars=3),
         random_cq(rng, max_atoms=3, max_vars=3))
        for _ in range(count)
    ]


def _ucq_problems(seed: int, count: int):
    rng = random.Random(seed)
    return [
        (random_ucq(rng, max_members=2, max_atoms=2, max_vars=2),
         random_ucq(rng, max_members=2, max_atoms=2, max_vars=2))
        for _ in range(count)
    ]


@pytest.mark.parametrize("semiring", CQ_SEMIRINGS, ids=lambda s: s.name)
def test_cq_decisions_match_oracle(semiring):
    for q1, q2 in _cq_problems(1234, 25):
        verdict = decide_cq_containment(q1, q2, semiring)
        assert verdict.decided, (semiring.name, q1, q2)
        witness = find_counterexample(q1, q2, semiring,
                                      rng=random.Random(5), budget=700,
                                      random_rounds=6)
        if verdict.result:
            assert witness is None, (semiring.name, q1, q2, witness)
        else:
            assert witness is not None, (semiring.name, q1, q2)


@pytest.mark.parametrize("semiring", UCQ_SEMIRINGS, ids=lambda s: s.name)
def test_ucq_decisions_match_oracle(semiring):
    for q1, q2 in _ucq_problems(4321, 15):
        verdict = decide_ucq_containment(q1, q2, semiring)
        assert verdict.decided, (semiring.name, q1, q2)
        witness = find_counterexample(q1, q2, semiring,
                                      rng=random.Random(5), budget=600,
                                      random_rounds=6)
        if verdict.result:
            assert witness is None, (semiring.name, q1, q2, witness)
        else:
            assert witness is not None, (semiring.name, q1, q2)


def test_chom_members_agree_with_each_other():
    """All Chom semirings share one containment relation (Thm. 3.3)."""
    from repro.semirings import ACCESS, EVENTS, FUZZY
    for q1, q2 in _cq_problems(77, 20):
        answers = {
            decide_cq_containment(q1, q2, K).result
            for K in (B, POSBOOL, EVENTS, FUZZY, ACCESS)
        }
        assert len(answers) == 1, (q1, q2, answers)


def test_small_model_agrees_with_hom_procedures_on_chom():
    """B has both a hom characterization and a decidable poly order: the
    two procedures must agree."""
    from repro.core import small_model_contained
    for q1, q2 in _cq_problems(55, 15):
        by_hom = decide_cq_containment(q1, q2, B).result
        by_model = small_model_contained(q1, q2, B)
        assert by_hom == by_model, (q1, q2)


def test_containment_transitive_where_decided():
    """(C1): ⊆K is a preorder — check transitivity of positive verdicts."""
    rng = random.Random(66)
    queries = [random_cq(rng, max_atoms=2, max_vars=2) for _ in range(6)]
    for K in (B, LIN, WHY, NX, TPLUS):
        for qa in queries:
            for qb in queries:
                if not decide_cq_containment(qa, qb, K).result:
                    continue
                for qc in queries:
                    if decide_cq_containment(qb, qc, K).result:
                        assert decide_cq_containment(qa, qc, K).result, (
                            K.name, qa, qb, qc)


def test_union_monotonicity_c4():
    """(C4): Q1 ⊆K Q2 implies Q1 ∪ Q3 ⊆K Q2 ∪ Q3."""
    rng = random.Random(88)
    for K in (B, LIN, NX, WHY):
        for _ in range(10):
            q1 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
            q2 = random_ucq(rng, max_members=2, max_atoms=2, max_vars=2)
            q3 = random_ucq(rng, max_members=1, max_atoms=2, max_vars=2)
            if decide_ucq_containment(q1, q2, K).result:
                extended = decide_ucq_containment(
                    q1.union(q3), q2.union(q3), K)
                assert extended.result, (K.name, q1, q2, q3)


def test_cq_and_singleton_ucq_agree():
    for K in (B, LIN, SORP, WHY, NX, TPLUS):
        for q1, q2 in _cq_problems(99, 12):
            cq_verdict = decide_cq_containment(q1, q2, K)
            ucq_verdict = decide_ucq_containment(UCQ((q1,)), UCQ((q2,)), K)
            assert cq_verdict.result == ucq_verdict.result, (K.name, q1, q2)


# -- Part 2: the oracle API (cross_validate / hunt / schema) ------------


PROJ = parse_cq("Q(x) :- R(x, y)")
DIAG = parse_cq("Q(x) :- R(x, x)")


def test_cross_validate_agrees_numeric_and_symbolic():
    query = parse_cq("Q(x, y) :- R(x, z), R(z, y)")
    for semiring in (N, TPLUS, WHY):
        report = cross_validate(query, semiring, trials=10)
        assert report.agreed, report.mismatches
        assert report.trials == 10
        assert report.facts > 0


def test_cross_validate_is_seeded():
    query = parse_cq("Q(x) :- R(x, y)")
    a = cross_validate(query, N, trials=5, seed=99)
    b = cross_validate(query, N, trials=5, seed=99)
    assert a.facts == b.facts


def test_hunt_finds_witness_for_non_containment():
    # Q(x):-R(x,y) ⊄ Q(x):-R(x,x) in any naturally ordered semiring:
    # a single off-diagonal fact gives lhs > 0 = rhs.
    witness = hunt_counterexample(PROJ, DIAG, N, rounds=5,
                                  domain_size=4, facts_per_relation=12)
    assert witness is not None
    assert witness.source == "columnar-hunt"
    # The witness is re-verified tuple-at-a-time before being returned,
    # so its recorded values must genuinely violate the order.
    assert not N.leq(witness.lhs, witness.rhs)


def test_hunt_respects_containment():
    # Q(x):-R(x,x) ⊆ Q(x):-R(x,y) holds over B (hom exists).
    assert hunt_counterexample(DIAG, PROJ, B, rounds=3,
                               domain_size=3,
                               facts_per_relation=10) is None


def test_hunt_empty_lhs():
    empty = UCQ(())
    assert hunt_counterexample(empty, PROJ, N, rounds=1) is None


def test_hunt_agrees_with_brute_force_direction():
    """When brute force refutes, the scaled hunt refutes too."""
    brute = find_counterexample(PROJ, DIAG, N)
    assert brute is not None
    hunted = hunt_counterexample(PROJ, DIAG, N, rounds=5,
                                 domain_size=3, facts_per_relation=6)
    assert hunted is not None


def test_combined_schema_merges_both_queries():
    q1 = as_ucq(parse_cq("Q(x) :- R(x, y)"))
    q2 = as_ucq(parse_cq("Q(x) :- R(x, y), S(y, y, x)"))
    schema = combined_schema(q1, q2)
    assert schema == {"R": 2, "S": 3}
    # The regression scenario: random instances must populate
    # relations that only Q2 mentions, otherwise Q2 always evaluates
    # to zero and refutation search is vacuous.
    rng = random.Random(3)
    instance = random_annotated_instance(schema, N, rng,
                                         facts_per_relation=6)
    assert "S" in instance.relations() or instance.fact_count() == 0


def test_combined_schema_rejects_arity_conflicts():
    q1 = as_ucq(parse_cq("Q(x) :- R(x, y)"))
    q2 = as_ucq(parse_cq("Q(x) :- R(x, y, z)"))
    with pytest.raises(ValueError, match="arity"):
        combined_schema(q1, q2)


def test_random_instances_cover_q2_only_relations():
    """find_counterexample must exercise Q2-only relations.

    Q1's schema alone would leave T unpopulated, making
    ``Q(x):-R(x,y)`` look contained in ``Q(x):-R(x,y),T(x)`` refutable
    only through the merged schema.
    """
    q1 = parse_cq("Q(x) :- R(x, y)")
    q2 = parse_cq("Q(x) :- R(x, y), T(x)")
    witness = find_counterexample(q1, q2, B)
    assert witness is not None
